#include "insitu/codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace edgetrain::insitu {

namespace {

constexpr int kBlock = 8;
constexpr std::uint8_t kMagic0 = 'E';
constexpr std::uint8_t kMagic1 = 'P';

/// Upper bound on decoded pixels (16M, comfortably past 4096x4096). A
/// malformed header can claim up to 65535x65535 (17 GB of floats); the
/// decoder must reject that before allocating, not crash trying.
constexpr std::int64_t kMaxPixels = std::int64_t{1} << 24;

/// JPEG Annex K luminance quantisation matrix (quality 50 reference).
constexpr std::array<int, 64> kBaseQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

/// Zigzag scan order of an 8x8 block.
constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

std::array<int, 64> scaled_quant(int quality) {
  quality = std::clamp(quality, 1, 100);
  // libjpeg scaling: 50 -> 1x, 100 -> ~0x, 1 -> 50x.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> result{};
  for (int i = 0; i < 64; ++i) {
    result[static_cast<std::size_t>(i)] = std::clamp(
        (kBaseQuant[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
  return result;
}

/// DCT-II basis factor c(k) * cos((2n+1) k pi / 16), precomputed.
const std::array<std::array<float, kBlock>, kBlock>& dct_basis() {
  static const auto basis = [] {
    std::array<std::array<float, kBlock>, kBlock> table{};
    for (int k = 0; k < kBlock; ++k) {
      const float ck = k == 0 ? std::sqrt(1.0F / kBlock)
                              : std::sqrt(2.0F / kBlock);
      for (int n = 0; n < kBlock; ++n) {
        table[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] =
            ck * std::cos(static_cast<float>(std::numbers::pi) *
                          (2.0F * static_cast<float>(n) + 1.0F) *
                          static_cast<float>(k) / (2.0F * kBlock));
      }
    }
    return table;
  }();
  return basis;
}

void fdct8x8(const float* in, float* out) {
  const auto& basis = dct_basis();
  float tmp[kBlock][kBlock];
  for (int u = 0; u < kBlock; ++u) {  // rows
    for (int y = 0; y < kBlock; ++y) {
      float acc = 0.0F;
      for (int x = 0; x < kBlock; ++x) {
        acc += in[y * kBlock + x] *
               basis[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[y][u] = acc;
    }
  }
  for (int v = 0; v < kBlock; ++v) {  // columns
    for (int u = 0; u < kBlock; ++u) {
      float acc = 0.0F;
      for (int y = 0; y < kBlock; ++y) {
        acc += tmp[y][u] *
               basis[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      out[v * kBlock + u] = acc;
    }
  }
}

void idct8x8(const float* in, float* out) {
  const auto& basis = dct_basis();
  float tmp[kBlock][kBlock];
  for (int y = 0; y < kBlock; ++y) {
    for (int u = 0; u < kBlock; ++u) {
      float acc = 0.0F;
      for (int v = 0; v < kBlock; ++v) {
        acc += in[v * kBlock + u] *
               basis[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      tmp[y][u] = acc;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      float acc = 0.0F;
      for (int u = 0; u < kBlock; ++u) {
        acc += tmp[y][u] *
               basis[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      out[y * kBlock + x] = acc;
    }
  }
}

/// Zigzag-encoded signed integer -> unsigned (0,-1,1,-2,... -> 0,1,2,3,...).
std::uint32_t to_unsigned(std::int32_t value) {
  return (static_cast<std::uint32_t>(value) << 1) ^
         static_cast<std::uint32_t>(value >> 31);
}

std::int32_t to_signed(std::uint32_t value) {
  return static_cast<std::int32_t>(value >> 1) ^
         -static_cast<std::int32_t>(value & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) throw std::runtime_error("codec: truncated");
    return bytes_[pos_++];
  }

  std::uint32_t varint() {
    std::uint32_t value = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = u8();
      value |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
      if (shift > 28) throw std::runtime_error("codec: varint overflow");
    }
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_image(const GrayImage& image,
                                       int quality) {
  if (image.height < 1 || image.width < 1) {
    throw std::invalid_argument("codec: empty image");
  }
  if (image.height > 0xFFFF || image.width > 0xFFFF ||
      static_cast<std::int64_t>(image.height) * image.width > kMaxPixels) {
    throw std::invalid_argument("codec: image too large");
  }
  const std::array<int, 64> quant = scaled_quant(quality);

  std::vector<std::uint8_t> out;
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::uint8_t>(image.height >> 8));
  out.push_back(static_cast<std::uint8_t>(image.height & 0xFF));
  out.push_back(static_cast<std::uint8_t>(image.width >> 8));
  out.push_back(static_cast<std::uint8_t>(image.width & 0xFF));
  out.push_back(static_cast<std::uint8_t>(std::clamp(quality, 1, 100)));

  const int blocks_y = (image.height + kBlock - 1) / kBlock;
  const int blocks_x = (image.width + kBlock - 1) / kBlock;
  std::int32_t prev_dc = 0;

  float pixels[kBlock * kBlock];
  float coeffs[kBlock * kBlock];
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      // Gather with edge replication; centre to [-128, 127]-like range.
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const int sy = std::min(by * kBlock + y, image.height - 1);
          const int sx = std::min(bx * kBlock + x, image.width - 1);
          pixels[y * kBlock + x] = image.at(sy, sx) * 255.0F - 128.0F;
        }
      }
      fdct8x8(pixels, coeffs);

      std::int32_t quantised[64];
      for (int i = 0; i < 64; ++i) {
        quantised[i] = static_cast<std::int32_t>(std::lround(
            coeffs[kZigzag[static_cast<std::size_t>(i)]] /
            static_cast<float>(quant[static_cast<std::size_t>(i)])));
      }

      // DC delta, then AC as (zero-run, value) pairs + end marker (run=63
      // never valid mid-stream... we use value 0 run 0 as EOB).
      put_varint(out, to_unsigned(quantised[0] - prev_dc));
      prev_dc = quantised[0];
      int i = 1;
      while (i < 64) {
        int run = 0;
        while (i + run < 64 && quantised[i + run] == 0) ++run;
        if (i + run >= 64) break;  // only zeros remain: EOB
        put_varint(out, static_cast<std::uint32_t>(run));
        put_varint(out, to_unsigned(quantised[i + run]));
        i += run + 1;
      }
      put_varint(out, 63);  // EOB: an impossible run length
    }
  }
  return out;
}

GrayImage decode_image(const std::vector<std::uint8_t>& bytes) {
  ByteReader reader(bytes);
  if (reader.u8() != kMagic0 || reader.u8() != kMagic1) {
    throw std::runtime_error("codec: bad magic");
  }
  const int height = (reader.u8() << 8) | reader.u8();
  const int width = (reader.u8() << 8) | reader.u8();
  const int quality = reader.u8();
  if (height < 1 || width < 1) throw std::runtime_error("codec: bad dims");
  if (static_cast<std::int64_t>(height) * width > kMaxPixels) {
    throw std::runtime_error("codec: declared image too large");
  }
  // A valid stream carries at least 2 bytes per block (DC varint + EOB);
  // reject headers whose block count cannot possibly fit the payload
  // before allocating the output image.
  const std::int64_t declared_blocks =
      (static_cast<std::int64_t>(height) + kBlock - 1) / kBlock *
      ((static_cast<std::int64_t>(width) + kBlock - 1) / kBlock);
  if (static_cast<std::int64_t>(bytes.size()) < 7 + 2 * declared_blocks) {
    throw std::runtime_error("codec: payload too short for declared size");
  }
  const std::array<int, 64> quant = scaled_quant(quality);

  GrayImage image(height, width);
  const int blocks_y = (height + kBlock - 1) / kBlock;
  const int blocks_x = (width + kBlock - 1) / kBlock;
  std::int32_t prev_dc = 0;

  float coeffs[kBlock * kBlock];
  float pixels[kBlock * kBlock];
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      std::int32_t quantised[64] = {0};
      prev_dc += to_signed(reader.varint());
      quantised[0] = prev_dc;
      int i = 1;
      for (;;) {
        const std::uint32_t run = reader.varint();
        if (run == 63) break;  // EOB
        // Reject before the cast: a huge varint cast to int can go negative
        // and index quantised[] out of bounds.
        if (run > 63) throw std::runtime_error("codec: bad run length");
        i += static_cast<int>(run);
        if (i >= 64) throw std::runtime_error("codec: run overflow");
        quantised[i] = to_signed(reader.varint());
        ++i;
        if (i > 64) throw std::runtime_error("codec: block overflow");
      }

      for (int k = 0; k < 64; ++k) {
        coeffs[kZigzag[static_cast<std::size_t>(k)]] =
            static_cast<float>(quantised[k]) *
            static_cast<float>(quant[static_cast<std::size_t>(k)]);
      }
      idct8x8(coeffs, pixels);
      for (int y = 0; y < kBlock; ++y) {
        const int sy = by * kBlock + y;
        if (sy >= height) break;
        for (int x = 0; x < kBlock; ++x) {
          const int sx = bx * kBlock + x;
          if (sx >= width) break;
          image.at(sy, sx) =
              std::clamp((pixels[y * kBlock + x] + 128.0F) / 255.0F, 0.0F,
                         1.0F);
        }
      }
    }
  }
  if (!reader.exhausted()) throw std::runtime_error("codec: trailing bytes");
  return image;
}

double psnr(const GrayImage& a, const GrayImage& b) {
  if (a.height != b.height || a.width != b.width) {
    throw std::invalid_argument("psnr: size mismatch");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d = static_cast<double>(a.pixels[i]) - b.pixels[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

}  // namespace edgetrain::insitu
