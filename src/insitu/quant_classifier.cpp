#include "insitu/quant_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "nn/layers.hpp"
#include "tensor/convert.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain::insitu {

namespace {

void check(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

/// fp32 max pooling over one plane set (same -inf padding semantics as
/// ops::maxpool2d_forward, without the Tensor/argmax machinery).
void maxpool2d_f32(const float* x, std::int64_t channels, std::int64_t h,
                   std::int64_t w, std::int64_t k, const ops::ConvParams& p,
                   float* y) {
  const std::int64_t ho = ops::conv_out_size(h, k, p.stride, p.pad);
  const std::int64_t wo = ops::conv_out_size(w, k, p.stride, p.pad);
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* plane = x + c * h * w;
    float* out = y + c * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        const std::int64_t iy0 = oy * p.stride - p.pad;
        const std::int64_t ix0 = ox * p.stride - p.pad;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            best = std::max(best, plane[iy * w + ix]);
          }
        }
        out[oy * wo + ox] = best;
      }
    }
  }
}

/// u8 quantization params covering the requested central mass of the
/// samples (1.0 = exact min/max). Mutates @p samples (nth_element).
quant::QuantParams params_from_samples(std::vector<float>& samples,
                                       float percentile) {
  if (samples.empty()) return quant::QuantParams{};
  if (percentile >= 1.0F) {
    const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
    return quant::choose_u8_params(*lo, *hi);
  }
  const auto n = static_cast<double>(samples.size() - 1);
  const double tail = (1.0 - static_cast<double>(percentile)) / 2.0;
  const auto lo_idx = static_cast<std::ptrdiff_t>(std::floor(tail * n));
  const auto hi_idx = static_cast<std::ptrdiff_t>(std::ceil((1.0 - tail) * n));
  std::nth_element(samples.begin(), samples.begin() + lo_idx, samples.end());
  const float lo = samples[static_cast<std::size_t>(lo_idx)];
  std::nth_element(samples.begin(), samples.begin() + hi_idx, samples.end());
  const float hi = samples[static_cast<std::size_t>(hi_idx)];
  return quant::choose_u8_params(lo, hi);
}

void validate_batch(const Tensor& batch, int patch, const char* what) {
  check(batch.defined() && batch.shape().rank() == 4 &&
            batch.shape()[1] == 1 && batch.shape()[2] == patch &&
            batch.shape()[3] == patch,
        what);
}

}  // namespace

const char* to_string(TeacherPrecision precision) noexcept {
  switch (precision) {
    case TeacherPrecision::Fp32: return "fp32";
    case TeacherPrecision::Bf16: return "bf16";
    case TeacherPrecision::Int8: return "int8";
  }
  return "?";
}

QuantizedPatchClassifier::QuantizedPatchClassifier(
    PatchClassifier& teacher, const Tensor& calibration_batch,
    TeacherPrecision precision, const QuantOptions& options)
    : precision_(precision),
      patch_(teacher.patch()),
      num_classes_(teacher.num_classes()) {
  check(options.percentile > 0.0F && options.percentile <= 1.0F,
        "QuantizedPatchClassifier: percentile must be in (0, 1]");
  validate_batch(calibration_batch, patch_,
                 "QuantizedPatchClassifier: calibration batch must be "
                 "[N,1,patch,patch]");
  parse_chain(teacher);
  if (precision_ == TeacherPrecision::Int8) {
    calibrate(calibration_batch, options.percentile);
    quantize_weights();
  } else if (precision_ == TeacherPrecision::Bf16) {
    for (Stage& s : stages_) {
      const std::int64_t count = s.w2d.numel();
      s.w_bf16.resize(static_cast<std::size_t>(count));
      convert::fp32_to_bf16(s.w2d.data(), s.w_bf16.data(), count,
                            convert::Threading::Serial);
    }
  }
}

void QuantizedPatchClassifier::parse_chain(PatchClassifier& teacher) {
  nn::LayerChain& chain = teacher.chain();
  const int layers = chain.size();
  std::int64_t c = 1;
  std::int64_t h = patch_;
  std::int64_t w = patch_;
  int i = 0;
  while (i < layers) {
    auto* conv = dynamic_cast<nn::Conv2d*>(&chain.layer(i));
    if (conv == nullptr) break;
    ++i;
    Stage s;
    s.in_c = c;
    s.in_h = h;
    s.in_w = w;
    const Tensor& cw = conv->weight();  // [out_c, in_c, k, k]
    check(cw.shape().rank() == 4 && cw.shape()[1] == c,
          "QuantizedPatchClassifier: conv weight shape mismatch");
    s.out_c = cw.shape()[0];
    s.kernel = conv->kernel();
    s.conv_params = conv->conv_params();
    s.conv_h = ops::conv_out_size(h, s.kernel, s.conv_params.stride,
                                  s.conv_params.pad);
    s.conv_w = ops::conv_out_size(w, s.kernel, s.conv_params.stride,
                                  s.conv_params.pad);

    const nn::BatchNorm2d* bn = nullptr;
    if (i < layers) {
      bn = dynamic_cast<const nn::BatchNorm2d*>(&chain.layer(i));
      if (bn != nullptr) ++i;
    }
    if (i < layers && dynamic_cast<const nn::ReLU*>(&chain.layer(i))) {
      s.has_relu = true;
      ++i;
    }
    if (i < layers) {
      if (const auto* pool =
              dynamic_cast<const nn::MaxPool2d*>(&chain.layer(i))) {
        s.has_pool = true;
        s.pool_kernel = pool->kernel();
        s.pool_params = pool->pool_params();
        ++i;
      }
    }
    s.out_h = s.conv_h;
    s.out_w = s.conv_w;
    if (s.has_pool) {
      s.out_h = ops::conv_out_size(s.conv_h, s.pool_kernel,
                                   s.pool_params.stride, s.pool_params.pad);
      s.out_w = ops::conv_out_size(s.conv_w, s.pool_kernel,
                                   s.pool_params.stride, s.pool_params.pad);
    }

    // Fold batch norm (running statistics -- the fp32 eval path's numbers)
    // and any conv bias into per-channel scale/shift:
    //   y = (conv(x) + b - mean) * gamma/sqrt(var+eps) + beta
    //     = conv(x) * g  +  ((b - mean) * g + beta),  g = gamma/sqrt(var+eps)
    const std::int64_t kk = s.in_c * s.kernel * s.kernel;
    std::vector<float> scale_ch(static_cast<std::size_t>(s.out_c), 1.0F);
    s.bias.assign(static_cast<std::size_t>(s.out_c), 0.0F);
    for (std::int64_t o = 0; o < s.out_c; ++o) {
      const auto oi = static_cast<std::size_t>(o);
      float b = conv->has_bias() ? conv->bias().data()[o] : 0.0F;
      if (bn != nullptr) {
        const float g =
            bn->gamma().data()[o] /
            std::sqrt(bn->running_var().data()[o] + bn->eps());
        scale_ch[oi] = g;
        b = (b - bn->running_mean().data()[o]) * g + bn->beta().data()[o];
      }
      s.bias[oi] = b;
    }
    s.w2d = Tensor::empty(Shape{s.out_c, kk});
    for (std::int64_t o = 0; o < s.out_c; ++o) {
      const float* src = cw.data() + o * kk;
      float* dst = s.w2d.data() + o * kk;
      const float g = scale_ch[static_cast<std::size_t>(o)];
      for (std::int64_t j = 0; j < kk; ++j) dst[j] = src[j] * g;
    }

    max_col_ = std::max(max_col_, kk * s.conv_h * s.conv_w);
    max_acc_ = std::max(max_acc_, s.out_c * s.conv_h * s.conv_w);
    max_act_ = std::max(max_act_, s.out_c * s.conv_h * s.conv_w);

    c = s.out_c;
    h = s.out_h;
    w = s.out_w;
    stages_.push_back(std::move(s));
  }
  check(!stages_.empty(),
        "QuantizedPatchClassifier: chain has no leading conv stage");
  check(i + 2 == layers &&
            dynamic_cast<const nn::GlobalAvgPool*>(&chain.layer(i)) != nullptr,
        "QuantizedPatchClassifier: expected [conv stages] + GlobalAvgPool + "
        "Linear chain");
  const auto* lin = dynamic_cast<const nn::Linear*>(&chain.layer(i + 1));
  check(lin != nullptr && lin->weight().shape()[1] == c,
        "QuantizedPatchClassifier: Linear head mismatch");
  linear_w_ = lin->weight().clone();
  if (lin->has_bias()) linear_b_ = lin->bias().clone();
  check(linear_w_.shape()[0] == num_classes_,
        "QuantizedPatchClassifier: class count mismatch");
}

void QuantizedPatchClassifier::calibrate(const Tensor& calibration_batch,
                                         float percentile) {
  // Stage-boundary activation samples from the BN-folded fp32 pipeline --
  // the same arithmetic the Fp32 path runs, so the ranges are exactly what
  // the quantized path will see at each boundary.
  const std::int64_t n = calibration_batch.shape()[0];
  const std::int64_t pixels = static_cast<std::int64_t>(patch_) * patch_;
  std::vector<std::vector<float>> samples(stages_.size() + 1);
  samples[0].assign(calibration_batch.data(),
                    calibration_batch.data() + n * pixels);

  Workspace& ws = Workspace::tls();
  const WorkspaceScope scope(ws);
  float* col = ws.alloc(max_col_);
  float* buf_a = ws.alloc(max_act_);
  float* buf_b = ws.alloc(max_act_);
  for (std::int64_t img = 0; img < n; ++img) {
    const float* cur = calibration_batch.data() + img * pixels;
    float* bufs[2] = {buf_a, buf_b};
    int which = 0;
    for (std::size_t si = 0; si < stages_.size(); ++si) {
      const Stage& s = stages_[si];
      const std::int64_t kk = s.in_c * s.kernel * s.kernel;
      const std::int64_t area = s.conv_h * s.conv_w;
      ops::im2col(cur, s.in_c, s.in_h, s.in_w, s.kernel, s.kernel,
                  s.conv_params, col);
      float* conv_out = bufs[which];
      which ^= 1;
      ops::gemm(false, false, s.out_c, area, kk, 1.0F, s.w2d.data(), col,
                0.0F, conv_out);
      for (std::int64_t o = 0; o < s.out_c; ++o) {
        const float b = s.bias[static_cast<std::size_t>(o)];
        float* row = conv_out + o * area;
        for (std::int64_t j = 0; j < area; ++j) {
          const float v = row[j] + b;
          row[j] = s.has_relu ? std::max(v, 0.0F) : v;
        }
      }
      samples[si + 1].insert(samples[si + 1].end(), conv_out,
                             conv_out + s.out_c * area);
      if (s.has_pool) {
        float* pooled = bufs[which];
        which ^= 1;
        maxpool2d_f32(conv_out, s.out_c, s.conv_h, s.conv_w, s.pool_kernel,
                      s.pool_params, pooled);
        cur = pooled;
      } else {
        cur = conv_out;
      }
    }
  }
  // Boundary i feeds stage i's input; boundary i+1 is its requantization
  // target. Max pooling preserves the range (monotonic), so post-conv
  // samples stand in for post-pool ones.
  std::vector<quant::QuantParams> params(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    params[i] = params_from_samples(samples[i], percentile);
  }
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    stages_[si].in_q = params[si];
    stages_[si].out_q = params[si + 1];
  }
}

void QuantizedPatchClassifier::quantize_weights() {
  for (Stage& s : stages_) {
    const std::int64_t kk = s.in_c * s.kernel * s.kernel;
    const auto oc = static_cast<std::size_t>(s.out_c);
    s.w_s8.resize(static_cast<std::size_t>(s.out_c * kk));
    s.w_scales.resize(oc);
    s.requant_mult.resize(oc);
    s.requant_bias.resize(oc);
    for (std::int64_t o = 0; o < s.out_c; ++o) {
      const auto oi = static_cast<std::size_t>(o);
      const float* row = s.w2d.data() + o * kk;
      float max_abs = 0.0F;
      for (std::int64_t j = 0; j < kk; ++j) {
        max_abs = std::max(max_abs, std::fabs(row[j]));
      }
      const float scale = quant::choose_s8_scale(max_abs);
      s.w_scales[oi] = scale;
      quant::quantize_s8(row, s.w_s8.data() + o * kk, kk, scale,
                         convert::Threading::Serial);
      s.requant_mult[oi] = s.in_q.scale * scale / s.out_q.scale;
      s.requant_bias[oi] = s.bias[oi] / s.out_q.scale;
    }
  }
}

Tensor QuantizedPatchClassifier::logits(const Tensor& batch) {
  validate_batch(batch, patch_,
                 "QuantizedPatchClassifier::logits: batch must be "
                 "[N,1,patch,patch]");
  switch (precision_) {
    case TeacherPrecision::Int8: return logits_int8(batch);
    case TeacherPrecision::Bf16: return logits_fp32_like(batch, true);
    case TeacherPrecision::Fp32: return logits_fp32_like(batch, false);
  }
  throw std::logic_error("QuantizedPatchClassifier: bad precision");
}

Tensor QuantizedPatchClassifier::logits_fp32_like(const Tensor& batch,
                                                  bool bf16) {
  const std::int64_t n = batch.shape()[0];
  const std::int64_t pixels = static_cast<std::int64_t>(patch_) * patch_;
  const Stage& last = stages_.back();
  Tensor gap = Tensor::empty(Shape{n, last.out_c});

  Workspace& ws = Workspace::tls();
  const WorkspaceScope scope(ws);
  float* col = ws.alloc(max_col_);
  std::uint16_t* col_bf16 =
      bf16 ? reinterpret_cast<std::uint16_t*>(ws.alloc((max_col_ + 1) / 2))
           : nullptr;
  float* buf_a = ws.alloc(max_act_);
  float* buf_b = ws.alloc(max_act_);
  // Per-image loop stays serial: the GEMM inside already parallelises over
  // the pool (which is not reentrant), same structure as conv2d_forward.
  for (std::int64_t img = 0; img < n; ++img) {
    const float* cur = batch.data() + img * pixels;
    float* bufs[2] = {buf_a, buf_b};
    int which = 0;
    for (const Stage& s : stages_) {
      const std::int64_t kk = s.in_c * s.kernel * s.kernel;
      const std::int64_t area = s.conv_h * s.conv_w;
      ops::im2col(cur, s.in_c, s.in_h, s.in_w, s.kernel, s.kernel,
                  s.conv_params, col);
      float* conv_out = bufs[which];
      which ^= 1;
      if (bf16) {
        convert::fp32_to_bf16(col, col_bf16, kk * area);
        ops::gemm_bf16(false, false, s.out_c, area, kk, 1.0F,
                       s.w_bf16.data(), col_bf16, 0.0F, conv_out);
      } else {
        ops::gemm(false, false, s.out_c, area, kk, 1.0F, s.w2d.data(), col,
                  0.0F, conv_out);
      }
      for (std::int64_t o = 0; o < s.out_c; ++o) {
        const float b = s.bias[static_cast<std::size_t>(o)];
        float* row = conv_out + o * area;
        for (std::int64_t j = 0; j < area; ++j) {
          const float v = row[j] + b;
          row[j] = s.has_relu ? std::max(v, 0.0F) : v;
        }
      }
      if (s.has_pool) {
        float* pooled = bufs[which];
        which ^= 1;
        maxpool2d_f32(conv_out, s.out_c, s.conv_h, s.conv_w, s.pool_kernel,
                      s.pool_params, pooled);
        cur = pooled;
      } else {
        cur = conv_out;
      }
    }
    // Global average pool (double accumulation, like ops::global_avgpool).
    const std::int64_t area = last.out_h * last.out_w;
    for (std::int64_t c = 0; c < last.out_c; ++c) {
      double sum = 0.0;
      const float* plane = cur + c * area;
      for (std::int64_t j = 0; j < area; ++j) sum += plane[j];
      gap.data()[img * last.out_c + c] =
          static_cast<float>(sum / static_cast<double>(area));
    }
  }
  return ops::linear_forward(gap, linear_w_, linear_b_);
}

Tensor QuantizedPatchClassifier::logits_int8(const Tensor& batch) {
  const std::int64_t n = batch.shape()[0];
  const std::int64_t pixels = static_cast<std::int64_t>(patch_) * patch_;
  const Stage& last = stages_.back();
  Tensor gap = Tensor::empty(Shape{n, last.out_c});

  Workspace& ws = Workspace::tls();
  const WorkspaceScope scope(ws);
  // The arena hands out float spans; u8/s32 views are reinterpreted (s32
  // has the same width, u8 packs 4 per float).
  auto* qin =
      reinterpret_cast<std::uint8_t*>(ws.alloc((n * pixels + 3) / 4));
  quant::quantize_u8(batch.data(), qin, n * pixels, stages_.front().in_q);
  auto* col = reinterpret_cast<std::uint8_t*>(ws.alloc((max_col_ + 3) / 4));
  auto* acc = reinterpret_cast<std::int32_t*>(ws.alloc(max_acc_));
  auto* buf_a = reinterpret_cast<std::uint8_t*>(ws.alloc((max_act_ + 3) / 4));
  auto* buf_b = reinterpret_cast<std::uint8_t*>(ws.alloc((max_act_ + 3) / 4));
  for (std::int64_t img = 0; img < n; ++img) {
    const std::uint8_t* cur = qin + img * pixels;
    std::uint8_t* bufs[2] = {buf_a, buf_b};
    int which = 0;
    for (const Stage& s : stages_) {
      const std::int64_t kk = s.in_c * s.kernel * s.kernel;
      const std::int64_t area = s.conv_h * s.conv_w;
      const auto zp_in = static_cast<std::uint8_t>(s.in_q.zero_point);
      quant::im2col_u8(cur, s.in_c, s.in_h, s.in_w, s.kernel, s.kernel,
                       s.conv_params, zp_in, col);
      quant::gemm_s8u8(s.out_c, area, kk, s.w_s8.data(), col,
                       s.in_q.zero_point, acc);
      std::uint8_t* conv_out = bufs[which];
      which ^= 1;
      quant::requantize_s32_u8(acc, conv_out, s.out_c, area,
                               s.requant_mult.data(), s.requant_bias.data(),
                               s.out_q.zero_point, s.has_relu);
      if (s.has_pool) {
        std::uint8_t* pooled = bufs[which];
        which ^= 1;
        quant::maxpool2d_u8(conv_out, s.out_c, s.conv_h, s.conv_w,
                            s.pool_kernel, s.pool_params,
                            static_cast<std::uint8_t>(s.out_q.zero_point),
                            pooled);
        cur = pooled;
      } else {
        cur = conv_out;
      }
    }
    // Dequantizing global average pool: mean of the integer codes, then one
    // affine map back to real units.
    const std::int64_t area = last.out_h * last.out_w;
    for (std::int64_t c = 0; c < last.out_c; ++c) {
      std::int64_t sum = 0;
      const std::uint8_t* plane = cur + c * area;
      for (std::int64_t j = 0; j < area; ++j) sum += plane[j];
      const double mean = static_cast<double>(sum) / static_cast<double>(area);
      gap.data()[img * last.out_c + c] = static_cast<float>(
          static_cast<double>(last.out_q.scale) *
          (mean - static_cast<double>(last.out_q.zero_point)));
    }
  }
  return ops::linear_forward(gap, linear_w_, linear_b_);
}

std::vector<std::pair<std::int32_t, float>>
QuantizedPatchClassifier::predict_batch(const Tensor& batch) {
  return predictions_from_logits(logits(batch));
}

std::pair<std::int32_t, float> QuantizedPatchClassifier::predict(
    const std::vector<float>& pixels) {
  check(pixels.size() == static_cast<std::size_t>(patch_) *
                             static_cast<std::size_t>(patch_),
        "QuantizedPatchClassifier::predict: pixel count mismatch");
  Tensor x = Tensor::empty(Shape{1, 1, patch_, patch_});
  std::copy(pixels.begin(), pixels.end(), x.data());
  return predict_batch(x)[0];
}

}  // namespace edgetrain::insitu
