// edgetrain: the auto-labelling pipeline of Section III.
//
// detect -> track -> (teacher gates on a confident sighting) -> back-label
// the whole track -> store the patches within the SD-card budget. "Every
// such instance of the teacher model identifying a subject contributes tens
// of images to this new dataset."
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "edge/storage.hpp"
#include "insitu/quant_classifier.hpp"
#include "insitu/scene.hpp"
#include "insitu/teacher.hpp"
#include "insitu/tracker.hpp"

namespace edgetrain::insitu {

struct HarvestConfig {
  int patch = 24;                      ///< stored patch resolution
  float detect_threshold = 0.22F;      ///< blob threshold on raw intensity
  int min_blob_area = 24;
  float min_track_iou = 0.25F;
  std::int64_t max_track_gap = 2;
  float teacher_confidence = 0.85F;    ///< gate for back-labelling
  std::size_t min_track_length = 3;    ///< shorter tracks are discarded
  /// Teacher queries are restricted to sightings in the canonical region
  /// (box centre beyond this fraction of the frame width): the paper's
  /// teacher "may still work at angles that are closer to the original
  /// training angle", i.e. identification happens near the canonical edge.
  float query_min_x_fraction = 0.65F;
  /// Reject degenerate (clipped/merged) boxes from teacher queries.
  float query_min_aspect = 0.6F;
  float query_max_aspect = 1.7F;
  std::uint64_t storage_capacity_bytes = 1ULL << 30;  ///< 1 GB SD budget
  std::uint32_t bytes_per_image = 10 * 1024;          ///< paper: <10 kB/image
  /// Store patches through the lossy DCT codec: the byte accounting uses
  /// each patch's true encoded size (validating the 10 kB/image claim) and
  /// the student trains on the decoded pixels, compression artefacts
  /// included. When false, bytes_per_image is charged per patch.
  bool lossy_storage = false;
  int codec_quality = 50;
  /// Numeric precision of teacher labeling. Bf16/Int8 run the queries
  /// through a QuantizedPatchClassifier built lazily from the harvest
  /// itself: the first quant_calibration_patches queryable sightings are
  /// labelled fp32 *and* buffered as the calibration batch, so ranges come
  /// from the node's real data distribution with no extra provisioning.
  TeacherPrecision teacher_precision = TeacherPrecision::Fp32;
  /// Queryable patches buffered (and labelled fp32) before the quantized
  /// teacher is calibrated and swapped in.
  int quant_calibration_patches = 64;
  /// Activation-range percentile for int8 calibration (1.0 = min/max).
  float quant_percentile = 1.0F;
};

struct HarvestStats {
  std::int64_t frames = 0;
  std::int64_t detections = 0;
  std::int64_t tracks_finished = 0;
  std::int64_t tracks_labelled = 0;
  std::int64_t tracks_rejected_confidence = 0;
  std::int64_t tracks_rejected_short = 0;
  std::int64_t images_harvested = 0;
  std::int64_t images_dropped_storage = 0;
  std::int64_t teacher_queries = 0;
  /// Of teacher_queries, how many ran through the quantized path (the rest
  /// ran fp32: precision is Fp32, or the calibration buffer was filling).
  std::int64_t quantized_queries = 0;
  /// Mean encoded bytes per stored image (== bytes_per_image when the
  /// codec is off).
  double mean_image_bytes = 0.0;
  /// Mean codec PSNR of stored patches (dB; 0 when the codec is off).
  double mean_psnr_db = 0.0;
  /// Fraction of harvested patches whose back-propagated label matches the
  /// simulator's ground truth (label purity; measurable only in simulation).
  double label_purity = 0.0;
};

class Harvester {
 public:
  Harvester(PatchClassifier& teacher, const HarvestConfig& config);

  /// Processes one camera frame (detection, tracking, crop buffering).
  void consume(const Frame& frame);

  /// Flushes the tracker and labels all remaining tracks.
  void finish();

  [[nodiscard]] const PatchDataset& dataset() const noexcept {
    return dataset_;
  }
  [[nodiscard]] HarvestStats stats() const;
  [[nodiscard]] const edge::ImageStore& store() const noexcept {
    return store_;
  }

 private:
  struct BufferedSighting {
    std::vector<float> pixels;
    BBox box;
    std::int32_t truth_label = -1;  // simulator ground truth, stats only
  };

  [[nodiscard]] bool queryable(const BufferedSighting& sighting) const;

  void label_finished_tracks();

  /// Feeds queryable patches into the calibration buffer and, once full,
  /// builds the quantized teacher. Returns true when it is ready to serve.
  bool maybe_build_quant_teacher(
      const std::vector<const BufferedSighting*>& queryable_sightings);

  PatchClassifier& teacher_;
  std::unique_ptr<QuantizedPatchClassifier> quant_teacher_;
  std::vector<std::vector<float>> calibration_buffer_;
  HarvestConfig config_;
  IoUTracker tracker_;
  edge::ImageStore store_;
  PatchDataset dataset_;
  std::unordered_map<std::int64_t, std::vector<BufferedSighting>> buffers_;
  int frame_width_ = 0;
  HarvestStats stats_;
  std::int64_t pure_labels_ = 0;
  std::int64_t judged_labels_ = 0;
  std::uint64_t stored_bytes_total_ = 0;
  double psnr_total_ = 0.0;
};

}  // namespace edgetrain::insitu
