#include "insitu/harvester.hpp"

#include <algorithm>

#include "insitu/codec.hpp"

namespace edgetrain::insitu {

Harvester::Harvester(PatchClassifier& teacher, const HarvestConfig& config)
    : teacher_(teacher),
      config_(config),
      tracker_(config.min_track_iou, config.max_track_gap),
      store_(config.storage_capacity_bytes, /*evict_oldest=*/false),
      dataset_(config.patch) {}

void Harvester::consume(const Frame& frame) {
  ++stats_.frames;
  frame_width_ = frame.image.width;
  const std::vector<BBox> detections =
      detect_blobs(frame.image, config_.detect_threshold, config_.min_blob_area);
  stats_.detections += static_cast<std::int64_t>(detections.size());

  const std::vector<std::int64_t> track_ids =
      tracker_.update(frame.index, detections);

  for (std::size_t d = 0; d < detections.size(); ++d) {
    BufferedSighting sighting;
    const BBox padded = expand(detections[d], kPatchMargin,
                               frame.image.width, frame.image.height);
    sighting.pixels = crop_resize(frame.image, padded, config_.patch);
    sighting.box = detections[d];
    // Ground truth by best IoU against the simulator's annotations
    // (statistics only; the pipeline never uses it for labelling).
    float best = 0.0F;
    for (const GroundTruth& truth : frame.truths) {
      const float score = iou(detections[d], truth.box);
      if (score > best) {
        best = score;
        sighting.truth_label = truth.label;
      }
    }
    buffers_[track_ids[d]].push_back(std::move(sighting));
  }
  label_finished_tracks();
}

void Harvester::finish() {
  tracker_.flush();
  label_finished_tracks();
}

void Harvester::label_finished_tracks() {
  for (Track& track : tracker_.take_finished()) {
    ++stats_.tracks_finished;
    auto it = buffers_.find(track.id);
    if (it == buffers_.end()) continue;
    std::vector<BufferedSighting> sightings = std::move(it->second);
    buffers_.erase(it);

    if (sightings.size() < config_.min_track_length) {
      ++stats_.tracks_rejected_short;
      continue;
    }

    // Query the teacher on the track's canonical-region sightings only
    // (that is where the cloud model is trustworthy); a confidence-weighted
    // vote across those sightings decides the track label. All queryable
    // sightings go through ONE batched forward -- per row the labels are
    // bit-identical to per-patch predict(), but layer dispatch and GEMM
    // setup amortize across the track.
    std::vector<const BufferedSighting*> queryable_sightings;
    for (const BufferedSighting& sighting : sightings) {
      if (queryable(sighting)) queryable_sightings.push_back(&sighting);
    }
    std::vector<double> votes(
        static_cast<std::size_t>(teacher_.num_classes()), 0.0);
    float best_confidence = 0.0F;
    if (!queryable_sightings.empty()) {
      const bool quantized = maybe_build_quant_teacher(queryable_sightings);
      const auto count = static_cast<std::int64_t>(queryable_sightings.size());
      Tensor batch = Tensor::empty(
          Shape{count, 1, config_.patch, config_.patch});
      const std::size_t per =
          static_cast<std::size_t>(config_.patch) *
          static_cast<std::size_t>(config_.patch);
      for (std::size_t q = 0; q < queryable_sightings.size(); ++q) {
        std::copy(queryable_sightings[q]->pixels.begin(),
                  queryable_sightings[q]->pixels.end(),
                  batch.data() + q * per);
      }
      const std::vector<std::pair<std::int32_t, float>> predictions =
          quantized ? quant_teacher_->predict_batch(batch)
                    : teacher_.predict_batch(batch);
      stats_.teacher_queries += count;
      if (quantized) stats_.quantized_queries += count;
      for (const auto& [label, confidence] : predictions) {
        votes[static_cast<std::size_t>(label)] += confidence;
        best_confidence = std::max(best_confidence, confidence);
      }
    }
    std::int32_t best_label = -1;
    double best_vote = 0.0;
    for (std::size_t k = 0; k < votes.size(); ++k) {
      if (votes[k] > best_vote) {
        best_vote = votes[k];
        best_label = static_cast<std::int32_t>(k);
      }
    }
    if (best_label < 0 || best_confidence < config_.teacher_confidence) {
      ++stats_.tracks_rejected_confidence;
      continue;
    }

    ++stats_.tracks_labelled;
    for (BufferedSighting& sighting : sightings) {
      std::uint32_t image_bytes = config_.bytes_per_image;
      std::vector<float> stored_pixels;
      double patch_psnr = 0.0;
      if (config_.lossy_storage) {
        // Round-trip through the SD codec: charge the true encoded size
        // and keep the decoded pixels (what the student will really see).
        GrayImage patch(config_.patch, config_.patch);
        patch.pixels = sighting.pixels;
        const std::vector<std::uint8_t> encoded =
            encode_image(patch, config_.codec_quality);
        const GrayImage decoded = decode_image(encoded);
        patch_psnr = std::min(psnr(patch, decoded), 99.0);  // cap lossless
        image_bytes = static_cast<std::uint32_t>(encoded.size());
        stored_pixels = decoded.pixels;
      } else {
        stored_pixels = std::move(sighting.pixels);
      }
      if (!store_.add(best_label, image_bytes).has_value()) {
        ++stats_.images_dropped_storage;
        continue;
      }
      stored_bytes_total_ += image_bytes;
      psnr_total_ += patch_psnr;
      if (sighting.truth_label >= 0) {
        ++judged_labels_;
        if (sighting.truth_label == best_label) ++pure_labels_;
      }
      dataset_.add(std::move(stored_pixels), best_label);
      ++stats_.images_harvested;
    }
  }
}

bool Harvester::maybe_build_quant_teacher(
    const std::vector<const BufferedSighting*>& queryable_sightings) {
  if (config_.teacher_precision == TeacherPrecision::Fp32) return false;
  if (quant_teacher_ != nullptr) return true;
  // Self-calibration: buffer this track's queryable patches (they get
  // labelled fp32 below) until the calibration batch is full.
  for (const BufferedSighting* sighting : queryable_sightings) {
    calibration_buffer_.push_back(sighting->pixels);
  }
  if (calibration_buffer_.size() <
      static_cast<std::size_t>(std::max(1, config_.quant_calibration_patches))) {
    return false;
  }
  const auto count = static_cast<std::int64_t>(calibration_buffer_.size());
  Tensor batch =
      Tensor::empty(Shape{count, 1, config_.patch, config_.patch});
  const std::size_t per = static_cast<std::size_t>(config_.patch) *
                          static_cast<std::size_t>(config_.patch);
  for (std::size_t i = 0; i < calibration_buffer_.size(); ++i) {
    std::copy(calibration_buffer_[i].begin(), calibration_buffer_[i].end(),
              batch.data() + i * per);
  }
  QuantOptions options;
  options.percentile = config_.quant_percentile;
  quant_teacher_ = std::make_unique<QuantizedPatchClassifier>(
      teacher_, batch, config_.teacher_precision, options);
  calibration_buffer_.clear();
  calibration_buffer_.shrink_to_fit();
  return true;
}

bool Harvester::queryable(const BufferedSighting& sighting) const {
  if (frame_width_ <= 0) return true;
  const float min_x =
      config_.query_min_x_fraction * static_cast<float>(frame_width_);
  if (sighting.box.center_x() < min_x) return false;
  const float aspect = static_cast<float>(sighting.box.w) /
                       static_cast<float>(std::max(sighting.box.h, 1));
  return aspect >= config_.query_min_aspect &&
         aspect <= config_.query_max_aspect;
}

HarvestStats Harvester::stats() const {
  HarvestStats out = stats_;
  out.label_purity = judged_labels_ > 0
                         ? static_cast<double>(pure_labels_) /
                               static_cast<double>(judged_labels_)
                         : 0.0;
  if (stats_.images_harvested > 0) {
    out.mean_image_bytes = static_cast<double>(stored_bytes_total_) /
                           static_cast<double>(stats_.images_harvested);
    if (config_.lossy_storage) {
      out.mean_psnr_db =
          psnr_total_ / static_cast<double>(stats_.images_harvested);
    }
  }
  return out;
}

}  // namespace edgetrain::insitu
