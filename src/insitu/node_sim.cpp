#include "insitu/node_sim.hpp"

#include <algorithm>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "nn/chain_runner.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::insitu {

namespace {

/// Mean accuracy of @p model over viewpoint bins of the frame.
double eval_over_bins(PatchClassifier& model, SceneSimulator& sim,
                      const NodeSimConfig& config) {
  double total = 0.0;
  const float width = static_cast<float>(config.scene.frame_width);
  for (int bin = 0; bin < config.eval_bins; ++bin) {
    const float x = width * (static_cast<float>(bin) + 0.5F) /
                    static_cast<float>(config.eval_bins);
    PatchDataset eval_data(config.harvest.patch);
    for (std::int32_t label = 0; label < config.scene.num_classes; ++label) {
      for (int i = 0; i < config.eval_per_class_per_bin; ++i) {
        eval_data.add(sim.skewed_patch(label, x, config.harvest.patch), label);
      }
    }
    total += model.evaluate(eval_data);
  }
  return total / config.eval_bins;
}

}  // namespace

NodeSimResult run_node_simulation(const NodeSimConfig& config) {
  NodeSimResult result;

  // Cloud-side teacher, delivered to the node once.
  SceneSimulator sim(config.scene);
  PatchDataset teacher_data(config.harvest.patch);
  for (std::int32_t label = 0; label < config.scene.num_classes; ++label) {
    for (int i = 0; i < config.teacher_examples_per_class; ++i) {
      teacher_data.add(sim.canonical_patch(label, config.harvest.patch),
                       label);
    }
  }
  PatchClassifier teacher(config.harvest.patch, config.scene.num_classes,
                          config.classifier_channels, config.seed);
  (void)teacher.train(teacher_data, config.teacher_train);

  PatchClassifier student(config.harvest.patch, config.scene.num_classes,
                          config.classifier_channels, config.seed + 1);
  Harvester harvester(teacher, config.harvest);
  std::mt19937 rng(config.seed + 2);

  // One shared evaluation of the (static) teacher.
  result.teacher_accuracy = eval_over_bins(teacher, sim, config);

  // Hourly foreground duty cycle.
  constexpr double kHour = 3600.0;
  for (int hour = 0; hour < config.hours; ++hour) {
    HourReport report;
    report.hour = hour;

    // 1. Capture + harvest.
    for (int f = 0; f < config.frames_per_hour; ++f) {
      harvester.consume(sim.next_frame());
    }
    report.frames = config.frames_per_hour;
    report.dataset_images =
        static_cast<std::int64_t>(harvester.dataset().size());
    report.storage_used_bytes = harvester.store().used_bytes();

    // 2. Idle-time training budget from the scheduler.
    edge::IdleScheduler scheduler(config.step_seconds);
    for (const auto& task : edge::periodic_tasks(
             "inference", config.inference_period_seconds,
             config.inference_duration_seconds, 8, kHour)) {
      scheduler.add_task(task);
    }
    for (const auto& task : edge::periodic_tasks(
             "sensing", config.sensing_period_seconds,
             config.sensing_duration_seconds, 5, kHour)) {
      scheduler.add_task(task);
    }
    const edge::ScheduleReport schedule_report = scheduler.run(kHour);
    report.idle_fraction = schedule_report.idle_fraction;
    report.step_budget = schedule_report.training_steps;

    // 3. Spend the budget on real checkpointed training steps.
    const PatchDataset& data = harvester.dataset();
    if (!data.empty()) {
      const int steps = static_cast<int>(std::min<std::int64_t>(
          report.step_budget, config.max_real_steps_per_hour));
      nn::SGD optimizer(student.chain().params(), config.student_train.lr,
                        config.student_train.momentum);
      nn::LayerChainRunner runner(student.chain(), nn::Phase::Train);
      core::ScheduleExecutor executor;
      const core::Schedule schedule =
          config.student_train.checkpoint_free_slots >= 0
              ? core::revolve::make_schedule(
                    student.chain().size(),
                    config.student_train.checkpoint_free_slots)
              : core::full_storage_schedule(student.chain().size());

      const std::size_t batch = std::min<std::size_t>(
          static_cast<std::size_t>(config.student_train.batch_size),
          data.size());
      std::uniform_int_distribution<std::size_t> index_dist(0,
                                                            data.size() - 1);
      for (int step = 0; step < steps; ++step) {
        if (batch < 2) break;
        // Random minibatch: the harvested dataset is ordered by track, so
        // contiguous slices would be nearly single-class.
        std::vector<std::size_t> indices;
        indices.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i) {
          indices.push_back(index_dist(rng));
        }
        Tensor x = data.gather(indices);
        const std::vector<std::int32_t> labels = data.gather_labels(indices);
        optimizer.zero_grad();
        runner.begin_pass();
        const core::LossGradFn loss_grad = [&](const Tensor& logits) {
          const ops::SoftmaxXentResult r =
              ops::softmax_xent_forward(logits, labels);
          return ops::softmax_xent_backward(r.probs, labels);
        };
        (void)executor.run(runner, schedule, x, loss_grad);
        optimizer.step();
        ++report.steps_run;
      }
    }

    // 4. Hourly evaluation.
    report.student_accuracy =
        data.empty() ? 0.0 : eval_over_bins(student, sim, config);
    report.teacher_accuracy = result.teacher_accuracy;
    result.hours.push_back(report);
  }

  harvester.finish();
  result.harvest = harvester.stats();
  result.final_student_accuracy =
      result.hours.empty() ? 0.0 : result.hours.back().student_accuracy;
  return result;
}

}  // namespace edgetrain::insitu
