// edgetrain: the end-to-end viewpoint experiment (paper Section III).
//
// 1. Train a teacher on canonical-viewpoint patches (the cloud model).
// 2. Stream simulated camera frames through the harvester: the teacher
//    confidently recognises objects only near the canonical (right) edge;
//    the tracker back-labels their skewed earlier sightings.
// 3. Train a student on the harvested dataset *on the node*, through a
//    Revolve checkpointing schedule (the Section VI machinery).
// 4. Evaluate both models across viewpoint-skew bins: the student should
//    match the teacher at the canonical edge and beat it off-angle.
#pragma once

#include <cstdint>
#include <vector>

#include "insitu/harvester.hpp"
#include "insitu/scene.hpp"
#include "insitu/teacher.hpp"

namespace edgetrain::insitu {

struct ViewpointExperimentConfig {
  SceneConfig scene;
  HarvestConfig harvest;
  TrainOptions teacher_train{.epochs = 10, .batch_size = 16, .lr = 0.05F,
                             .momentum = 0.9F, .checkpoint_free_slots = -1};
  TrainOptions student_train{.epochs = 10, .batch_size = 16, .lr = 0.05F,
                             .momentum = 0.9F, .checkpoint_free_slots = 2};
  int teacher_examples_per_class = 150;
  std::int64_t stream_frames = 1500;
  int eval_bins = 6;             ///< viewpoint bins across the frame width
  int eval_per_class_per_bin = 25;
  std::int64_t classifier_channels = 8;
  /// Student width; 0 = same as the teacher. A narrower student plus
  /// distillation reproduces the Moonshine-style compression the paper
  /// cites ([7]).
  std::int64_t student_channels = 0;
  /// Mix the teacher's soft predictions into the student loss.
  bool distill_student = false;
  std::uint32_t seed = 7;
};

struct BinAccuracy {
  float x_center = 0.0F;   ///< horizontal position of the bin
  float skew = 0.0F;       ///< viewpoint skew at that position
  double teacher_accuracy = 0.0;
  double student_accuracy = 0.0;
};

struct ViewpointExperimentResult {
  HarvestStats harvest;
  std::vector<BinAccuracy> bins;
  double teacher_overall = 0.0;
  double student_overall = 0.0;
  TrainStats teacher_train;
  TrainStats student_train;
  std::size_t dataset_size = 0;
};

/// Runs the full pipeline; deterministic for a fixed config.
[[nodiscard]] ViewpointExperimentResult run_viewpoint_experiment(
    const ViewpointExperimentConfig& config);

/// Compact saturating-accuracy proxy for a node's student, for fleet-scale
/// simulation (NeuroFlux, PAPERS.md: per-node student convergence is the
/// fleet-level metric).
///
/// Running run_viewpoint_experiment for 10^5 nodes is out of the question;
/// what a fleet simulator needs is the *shape* of its training curve: the
/// student starts at the teacher's off-angle accuracy, rises roughly
/// exponentially as harvested local data accumulates, and saturates at a
/// ceiling set by label purity and model capacity. That is the standard
/// three-parameter saturating exponential:
///
///   accuracy(s) = ceiling - (ceiling - baseline) * exp(-s / tau_steps)
///
/// The defaults are eyeballed from the aot_fleet_sim trajectories (student
/// 0.55 -> ~0.9 of its ceiling inside a few hundred checkpointed steps);
/// a fleet config can re-fit them per deployment.
struct StudentConvergenceModel {
  double baseline = 0.55;   ///< accuracy before any in-situ training
  double ceiling = 0.92;    ///< asymptote (label purity + capacity bound)
  double tau_steps = 400.0; ///< steps to close ~63% of the remaining gap

  /// Predicted accuracy after @p steps optimisation steps (monotone,
  /// baseline at 0, asymptotically ceiling).
  [[nodiscard]] double accuracy(double steps) const;

  /// Inverse: steps needed to reach @p target accuracy. Returns infinity
  /// for targets at or above the ceiling, 0 below the baseline.
  [[nodiscard]] double steps_to_reach(double target) const;

  /// True once @p steps has closed @p fraction of the baseline->ceiling
  /// gap (the fleet's "node converged" predicate).
  [[nodiscard]] bool converged(double steps, double fraction = 0.95) const;
};

}  // namespace edgetrain::insitu
