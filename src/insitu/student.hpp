// edgetrain: the end-to-end viewpoint experiment (paper Section III).
//
// 1. Train a teacher on canonical-viewpoint patches (the cloud model).
// 2. Stream simulated camera frames through the harvester: the teacher
//    confidently recognises objects only near the canonical (right) edge;
//    the tracker back-labels their skewed earlier sightings.
// 3. Train a student on the harvested dataset *on the node*, through a
//    Revolve checkpointing schedule (the Section VI machinery).
// 4. Evaluate both models across viewpoint-skew bins: the student should
//    match the teacher at the canonical edge and beat it off-angle.
#pragma once

#include <cstdint>
#include <vector>

#include "insitu/harvester.hpp"
#include "insitu/scene.hpp"
#include "insitu/teacher.hpp"

namespace edgetrain::insitu {

struct ViewpointExperimentConfig {
  SceneConfig scene;
  HarvestConfig harvest;
  TrainOptions teacher_train{.epochs = 10, .batch_size = 16, .lr = 0.05F,
                             .momentum = 0.9F, .checkpoint_free_slots = -1};
  TrainOptions student_train{.epochs = 10, .batch_size = 16, .lr = 0.05F,
                             .momentum = 0.9F, .checkpoint_free_slots = 2};
  int teacher_examples_per_class = 150;
  std::int64_t stream_frames = 1500;
  int eval_bins = 6;             ///< viewpoint bins across the frame width
  int eval_per_class_per_bin = 25;
  std::int64_t classifier_channels = 8;
  /// Student width; 0 = same as the teacher. A narrower student plus
  /// distillation reproduces the Moonshine-style compression the paper
  /// cites ([7]).
  std::int64_t student_channels = 0;
  /// Mix the teacher's soft predictions into the student loss.
  bool distill_student = false;
  std::uint32_t seed = 7;
};

struct BinAccuracy {
  float x_center = 0.0F;   ///< horizontal position of the bin
  float skew = 0.0F;       ///< viewpoint skew at that position
  double teacher_accuracy = 0.0;
  double student_accuracy = 0.0;
};

struct ViewpointExperimentResult {
  HarvestStats harvest;
  std::vector<BinAccuracy> bins;
  double teacher_overall = 0.0;
  double student_overall = 0.0;
  TrainStats teacher_train;
  TrainStats student_train;
  std::size_t dataset_size = 0;
};

/// Runs the full pipeline; deterministic for a fixed config.
[[nodiscard]] ViewpointExperimentResult run_viewpoint_experiment(
    const ViewpointExperimentConfig& config);

}  // namespace edgetrain::insitu
