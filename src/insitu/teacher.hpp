// edgetrain: patch classifier used for both the teacher and the student.
//
// A small CNN over grayscale patches. Training runs through the schedule
// executor, so the student can be trained under a Waggle-style memory cap
// with a Revolve schedule while the (cloud-side) teacher trains with full
// storage -- the paper's Section III + Section VI combination in one class.
#pragma once

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "nn/chain.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::insitu {

/// Labelled patch dataset (patches are patch*patch grayscale vectors).
class PatchDataset {
 public:
  explicit PatchDataset(int patch) : patch_(patch) {}

  void add(std::vector<float> pixels, std::int32_t label);
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] int patch() const noexcept { return patch_; }
  [[nodiscard]] const std::vector<std::int32_t>& labels() const noexcept {
    return labels_;
  }

  void shuffle(std::mt19937& rng);

  /// NCHW tensor of examples [begin, begin+count) and their labels.
  [[nodiscard]] Tensor batch(std::size_t begin, std::size_t count) const;
  [[nodiscard]] std::vector<std::int32_t> label_slice(std::size_t begin,
                                                      std::size_t count) const;

  /// NCHW tensor of arbitrary examples (for random minibatch sampling from
  /// datasets whose storage order is correlated, e.g. by track).
  [[nodiscard]] Tensor gather(const std::vector<std::size_t>& indices) const;
  [[nodiscard]] std::vector<std::int32_t> gather_labels(
      const std::vector<std::size_t>& indices) const;

 private:
  int patch_;
  std::vector<std::vector<float>> patches_;
  std::vector<std::int32_t> labels_;
};

struct TrainOptions {
  int epochs = 8;
  int batch_size = 16;
  float lr = 0.05F;
  float momentum = 0.9F;
  /// Train through a Revolve schedule with this many free checkpoint slots
  /// (-1 = full storage, the rho = 1 baseline).
  int checkpoint_free_slots = -1;
  /// Knowledge distillation (used when train() is given a teacher):
  /// loss = alpha * CE(hard labels) + (1-alpha) * T^2 * KL(teacher, student).
  float distill_alpha = 0.3F;
  float distill_temperature = 2.0F;
  /// Mixed-precision training: forward/backward GEMMs round their operands
  /// to bfloat16 (fp32 accumulate) while weights, gradients and optimizer
  /// state stay fp32 masters (ops::ScopedGemmPrecision around the executor
  /// run, so checkpointed recompute passes use the same precision and
  /// schedules remain bit-deterministic).
  bool bf16_compute = false;
};

struct TrainStats {
  std::vector<float> epoch_losses;
  std::size_t peak_step_bytes = 0;     ///< max executor footprint over steps
  std::int64_t total_advances = 0;     ///< recomputation forwards executed
  std::int64_t total_forward_saves = 0;
  [[nodiscard]] float final_loss() const {
    return epoch_losses.empty() ? 0.0F : epoch_losses.back();
  }
};

/// Row-wise argmax label + softmax confidence of that label, one pair per
/// row of logits[N,K]; the numeric recipe (max-subtracted double-precision
/// denominator) matches PatchClassifier::predict exactly, so fp32 batched,
/// fp32 per-patch and quantized teachers all score confidence identically.
[[nodiscard]] std::vector<std::pair<std::int32_t, float>>
predictions_from_logits(const Tensor& logits);

class PatchClassifier {
 public:
  PatchClassifier(int patch, int num_classes, std::int64_t base_channels,
                  std::uint32_t seed);

  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] int patch() const noexcept { return patch_; }
  [[nodiscard]] nn::LayerChain& chain() noexcept { return chain_; }

  /// SGD training over the dataset; see TrainOptions for checkpointing.
  /// When @p distill_from is non-null its temperature-softened predictions
  /// are mixed into the loss (Hinton distillation; paper citation [7]).
  TrainStats train(const PatchDataset& data, const TrainOptions& options,
                   PatchClassifier* distill_from = nullptr);

  /// Predicted label and softmax confidence for one patch.
  [[nodiscard]] std::pair<std::int32_t, float> predict(
      const std::vector<float>& pixels);

  /// Batched predict: one chain forward for all rows of @p batch
  /// ([N,1,p,p]), amortizing per-call layer overhead across patches. Per
  /// row the result is bit-identical to predict() on that patch alone
  /// (every kernel in the eval chain computes each image independently;
  /// asserted by tests/insitu/quant_classifier_test.cpp).
  [[nodiscard]] std::vector<std::pair<std::int32_t, float>> predict_batch(
      const Tensor& batch);

  /// Eval-mode logits for a batch tensor [N,1,p,p].
  [[nodiscard]] Tensor logits(const Tensor& batch);

  /// Accuracy over a dataset (eval mode, batched).
  [[nodiscard]] double evaluate(const PatchDataset& data);

 private:
  int patch_;
  int num_classes_;
  std::mt19937 rng_;
  nn::LayerChain chain_;
};

}  // namespace edgetrain::insitu
