#include "insitu/scene.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgetrain::insitu {

namespace {

/// Canonical glyph intensity at normalised coords (u, v) in [0,1)^2.
float glyph_value(std::int32_t label, float u, float v) {
  const float cu = u - 0.5F;
  const float cv = v - 0.5F;
  switch (label) {
    case 0: {  // filled disk
      return (cu * cu + cv * cv) <= 0.16F ? 1.0F : 0.0F;
    }
    case 1: {  // plus sign
      const bool horizontal = std::fabs(cv) <= 0.12F && std::fabs(cu) <= 0.42F;
      const bool vertical = std::fabs(cu) <= 0.12F && std::fabs(cv) <= 0.42F;
      return (horizontal || vertical) ? 1.0F : 0.0F;
    }
    case 2: {  // hollow square
      const float m = std::max(std::fabs(cu), std::fabs(cv));
      return (m <= 0.42F && m >= 0.24F) ? 1.0F : 0.0F;
    }
    case 3: {  // filled upward triangle
      if (v < 0.1F || v > 0.9F) return 0.0F;
      const float half_width = 0.45F * (v - 0.1F) / 0.8F;
      return std::fabs(cu) <= half_width ? 1.0F : 0.0F;
    }
    case 4: {  // diagonal stripes in a disk
      if ((cu * cu + cv * cv) > 0.18F) return 0.0F;
      const float phase = (u + v) * 6.0F;
      return (static_cast<int>(std::floor(phase)) % 2 == 0) ? 1.0F : 0.3F;
    }
    default:
      throw std::invalid_argument("glyph_value: label out of range");
  }
}

}  // namespace

SceneSimulator::SceneSimulator(const SceneConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.num_classes < 1 || config_.num_classes > 5) {
    throw std::invalid_argument("SceneSimulator: num_classes must be 1..5");
  }
}

float SceneSimulator::skew_at(float x) const {
  const float span = static_cast<float>(config_.frame_width -
                                        config_.object_size);
  const float t =
      1.0F - std::clamp(x / std::max(span, 1.0F), 0.0F, 1.0F);
  return config_.max_skew * t;
}

void SceneSimulator::draw_glyph(GrayImage& canvas, std::int32_t label,
                                float skew, int left, int top, int size,
                                float jitter_angle) {
  // Inverse warp: canvas pixel -> canonical glyph coordinate.
  const float shear = 0.8F * skew;
  const float squash = 1.0F / (1.0F - 0.45F * skew);
  const float brightness = 1.0F - 0.45F * skew;
  const float cos_a = std::cos(jitter_angle);
  const float sin_a = std::sin(jitter_angle);

  for (int py = 0; py < size; ++py) {
    for (int px = 0; px < size; ++px) {
      const int cy = top + py;
      const int cx = left + px;
      if (!canvas.in_bounds(cy, cx)) continue;
      float u = (static_cast<float>(px) + 0.5F) / static_cast<float>(size);
      float v = (static_cast<float>(py) + 0.5F) / static_cast<float>(size);
      // shear (viewpoint) then squash then rotation jitter.
      u = u + shear * (v - 0.5F);
      v = 0.5F + (v - 0.5F) * squash;
      const float ru = 0.5F + cos_a * (u - 0.5F) - sin_a * (v - 0.5F);
      const float rv = 0.5F + sin_a * (u - 0.5F) + cos_a * (v - 0.5F);
      if (ru < 0.0F || ru >= 1.0F || rv < 0.0F || rv >= 1.0F) continue;
      const float value = glyph_value(label, ru, rv) * brightness;
      if (value > 0.0F) {
        canvas.at(cy, cx) = std::min(1.0F, canvas.at(cy, cx) + value);
      }
    }
  }
}

Frame SceneSimulator::next_frame(float spawn_prob, int max_objects) {
  std::uniform_real_distribution<float> unit(0.0F, 1.0F);
  std::uniform_int_distribution<std::int32_t> label_dist(
      0, config_.num_classes - 1);
  std::uniform_real_distribution<float> y_dist(
      0.0F, static_cast<float>(
                std::max(1, config_.frame_height - config_.object_size)));

  // Advance and cull.
  for (ActiveObject& object : objects_) object.x += config_.speed;
  std::erase_if(objects_, [&](const ActiveObject& object) {
    return object.x >= static_cast<float>(config_.frame_width);
  });

  // Spawn.
  if (static_cast<int>(objects_.size()) < max_objects &&
      unit(rng_) < spawn_prob) {
    ActiveObject object;
    object.id = next_object_id_++;
    object.label = label_dist(rng_);
    object.x = 0.0F;
    object.y = y_dist(rng_);
    objects_.push_back(object);
  }

  // Render.
  Frame frame;
  frame.index = frame_index_++;
  frame.image = GrayImage(config_.frame_height, config_.frame_width);
  std::normal_distribution<float> noise(0.0F, config_.noise);
  for (float& p : frame.image.pixels) {
    p = std::clamp(noise(rng_), 0.0F, 1.0F);
  }

  std::uniform_real_distribution<float> angle_dist(-0.12F, 0.12F);
  for (const ActiveObject& object : objects_) {
    const float skew = skew_at(object.x);
    const int left = static_cast<int>(object.x);
    const int top = static_cast<int>(object.y);
    draw_glyph(frame.image, object.label, skew, left, top,
               config_.object_size, angle_dist(rng_));
    BBox box{left, top, config_.object_size, config_.object_size};
    // Clip to the frame for ground truth.
    const int x1 = std::clamp(box.x, 0, config_.frame_width - 1);
    const int y1 = std::clamp(box.y, 0, config_.frame_height - 1);
    const int x2 = std::clamp(box.x2(), x1 + 1, config_.frame_width);
    const int y2 = std::clamp(box.y2(), y1 + 1, config_.frame_height);
    frame.truths.push_back(
        {{x1, y1, x2 - x1, y2 - y1}, object.label, object.id});
  }
  return frame;
}

std::vector<float> SceneSimulator::canonical_patch(std::int32_t label,
                                                   int patch) {
  return skewed_patch(label,
                      static_cast<float>(config_.frame_width), patch);
}

std::vector<float> SceneSimulator::skewed_patch(std::int32_t label, float x,
                                                int patch) {
  // Render the glyph and tight-crop it exactly the way the harvesting
  // pipeline crops detections (detected bounding box + fixed margin), so
  // classifier training, harvesting and evaluation share one patch layout.
  const float skew = skew_at(x);
  const int cell = 2 * patch;
  GrayImage canvas(cell + cell / 2, cell + cell / 2);
  std::uniform_real_distribution<float> angle_dist(-0.12F, 0.12F);
  draw_glyph(canvas, label, skew, cell / 4, cell / 4, cell, angle_dist(rng_));

  const std::vector<BBox> blobs = detect_blobs(canvas, 0.12F, 4);
  BBox box{cell / 4, cell / 4, cell, cell};
  int best_area = 0;
  for (const BBox& blob : blobs) {
    if (blob.area() > best_area) {
      best_area = blob.area();
      box = blob;
    }
  }
  box = expand(box, kPatchMargin, canvas.width, canvas.height);
  std::vector<float> pixels = crop_resize(canvas, box, patch);
  std::normal_distribution<float> noise(0.0F, config_.noise);
  for (float& p : pixels) p = std::clamp(p + noise(rng_), 0.0F, 1.0F);
  return pixels;
}

}  // namespace edgetrain::insitu
