// edgetrain: minimal computer-vision substrate for the in-situ pipeline.
//
// The Section III pipeline needs only what a Waggle node's lightweight
// pre-processing does: frame differencing, thresholded connected-component
// blob detection, IoU box matching, and crop-and-resize to classifier
// patches. Everything operates on small grayscale frames.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgetrain::insitu {

/// Grayscale image, row-major floats in [0, 1].
struct GrayImage {
  int height = 0;
  int width = 0;
  std::vector<float> pixels;

  GrayImage() = default;
  GrayImage(int h, int w) : height(h), width(w) {
    pixels.assign(static_cast<std::size_t>(h) * static_cast<std::size_t>(w),
                  0.0F);
  }
  [[nodiscard]] float at(int y, int x) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
  [[nodiscard]] float& at(int y, int x) {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
  [[nodiscard]] bool in_bounds(int y, int x) const {
    return y >= 0 && y < height && x >= 0 && x < width;
  }
};

/// Axis-aligned box (pixel coordinates, half-open).
struct BBox {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] int area() const { return w * h; }
  [[nodiscard]] int x2() const { return x + w; }
  [[nodiscard]] int y2() const { return y + h; }
  [[nodiscard]] float center_x() const { return static_cast<float>(x) + static_cast<float>(w) / 2.0F; }
};

/// Intersection-over-union of two boxes; 0 when disjoint.
[[nodiscard]] float iou(const BBox& a, const BBox& b);

/// |a - b| per pixel (frames must have identical dims).
[[nodiscard]] GrayImage abs_diff(const GrayImage& a, const GrayImage& b);

/// Connected components (8-neighbourhood) of pixels > threshold; returns
/// bounding boxes of components with at least @p min_area pixels.
[[nodiscard]] std::vector<BBox> detect_blobs(const GrayImage& image,
                                             float threshold, int min_area);

/// Grows @p box by @p fraction of its size on every side, clamped to the
/// frame. Used to add a consistent margin around tight detection boxes so
/// classifier crops match the training patch layout.
[[nodiscard]] BBox expand(const BBox& box, float fraction, int frame_width,
                          int frame_height);

/// Crops @p box (clamped to the frame) and bilinearly resizes to
/// @p patch x @p patch, returned as a [1, patch, patch] slice of pixels.
[[nodiscard]] std::vector<float> crop_resize(const GrayImage& image,
                                             const BBox& box, int patch);

/// Packs patches (each patch*patch floats) into an NCHW tensor [N,1,p,p].
[[nodiscard]] Tensor patches_to_tensor(const std::vector<std::vector<float>>& patches,
                                       int patch);

}  // namespace edgetrain::insitu
