// edgetrain: post-training-quantized inference path for the patch teacher.
//
// The harvester's teacher (insitu::PatchClassifier) is pure inference and
// dominates the node's harvest duty cycle; this module rebuilds its eval
// forward as a fused, preallocated pipeline at a chosen precision:
//
//   * Int8  -- u8 affine activations (ranges harvested from a calibration
//     batch, min/max or central-percentile), s8 symmetric per-channel
//     weights, exact s32 GEMM accumulation, fused requantize+ReLU, u8 max
//     pooling (monotonic, so it commutes with quantization). Activations
//     move at 1/4 the fp32 byte traffic and no intermediate tensors are
//     allocated.
//   * Bf16  -- fp32 activations, persistent bf16 folded weights, bf16 GEMM
//     with fp32 accumulation, fused bias+ReLU.
//   * Fp32  -- the same fused pipeline without narrowing: the BN-folded
//     baseline that isolates quantization error from fusion effects (and
//     the oracle the guardrail tests compare against).
//
// All precisions fold batch norm into the conv weights/bias using the
// *running* statistics -- exactly what the fp32 eval-mode chain uses -- so
// the Fp32 path matches PatchClassifier::logits to rounding error, and the
// quantized paths' label-flip rate and logit drift are bounded by tests
// (tests/insitu/quant_classifier_test.cpp) and gated by bench_quant.
//
// The classifier recognises the build_patch_cnn structure generically:
// repeated [Conv2d (+BatchNorm2d) (+ReLU) (+MaxPool2d)] stages followed by
// GlobalAvgPool + Linear; anything else is rejected at construction.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "insitu/teacher.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::insitu {

/// Numeric precision of the teacher labeling path.
enum class TeacherPrecision : std::uint8_t { Fp32, Bf16, Int8 };

[[nodiscard]] const char* to_string(TeacherPrecision precision) noexcept;

struct QuantOptions {
  /// Central mass of calibration activations covered by the u8 range:
  /// 1.0 uses exact min/max; e.g. 0.999 clips the extreme 0.1% tails,
  /// trading saturation of outliers for finer resolution of the bulk.
  float percentile = 1.0F;
};

class QuantizedPatchClassifier {
 public:
  /// Builds the quantized path from @p teacher's current weights.
  /// @p calibration_batch ([N,1,p,p], N >= 1) supplies the activation
  /// ranges for Int8; Bf16/Fp32 ignore its values but still validate shape.
  /// The teacher is only read during construction -- no aliasing afterwards
  /// (retraining the teacher requires rebuilding this object).
  QuantizedPatchClassifier(PatchClassifier& teacher,
                           const Tensor& calibration_batch,
                           TeacherPrecision precision,
                           const QuantOptions& options = {});

  [[nodiscard]] TeacherPrecision precision() const noexcept {
    return precision_;
  }
  [[nodiscard]] int patch() const noexcept { return patch_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

  /// Eval logits for a batch [N,1,p,p] at the configured precision.
  [[nodiscard]] Tensor logits(const Tensor& batch);

  /// Batched (label, softmax confidence) -- same scoring recipe as
  /// PatchClassifier::predict (see predictions_from_logits).
  [[nodiscard]] std::vector<std::pair<std::int32_t, float>> predict_batch(
      const Tensor& batch);

  /// Single-patch convenience wrapper over predict_batch.
  [[nodiscard]] std::pair<std::int32_t, float> predict(
      const std::vector<float>& pixels);

 private:
  /// One fused [conv (+bn) (+relu) (+pool)] stage with folded parameters.
  struct Stage {
    // Geometry.
    std::int64_t in_c = 0, in_h = 0, in_w = 0;
    std::int64_t out_c = 0, conv_h = 0, conv_w = 0;  // post-conv
    std::int64_t out_h = 0, out_w = 0;               // post-pool
    std::int64_t kernel = 0;
    ops::ConvParams conv_params;
    bool has_relu = false;
    bool has_pool = false;
    std::int64_t pool_kernel = 0;
    ops::ConvParams pool_params;

    // BN-folded fp32 parameters: w2d[out_c, in_c*k*k], bias[out_c].
    Tensor w2d;
    std::vector<float> bias;

    // Int8: symmetric per-channel s8 weights + activation quantization.
    std::vector<std::int8_t> w_s8;
    std::vector<float> w_scales;        // [out_c]
    quant::QuantParams in_q, out_q;
    std::vector<float> requant_mult;    // [out_c] s_in*s_w[o]/s_out
    std::vector<float> requant_bias;    // [out_c] bias[o]/s_out

    // Bf16: persistent bf16 folded weights.
    std::vector<std::uint16_t> w_bf16;
  };

  void parse_chain(PatchClassifier& teacher);
  void calibrate(const Tensor& calibration_batch, float percentile);
  void quantize_weights();

  [[nodiscard]] Tensor logits_fp32_like(const Tensor& batch, bool bf16);
  [[nodiscard]] Tensor logits_int8(const Tensor& batch);

  TeacherPrecision precision_;
  int patch_ = 0;
  int num_classes_ = 0;
  std::vector<Stage> stages_;
  Tensor linear_w_;   // [classes, features] fp32 (the head stays fp32: it
  Tensor linear_b_;   // is ~1% of the MACs and feeds softmax directly)
  std::int64_t max_col_ = 0;   // per-image scratch high-water marks
  std::int64_t max_acc_ = 0;
  std::int64_t max_act_ = 0;
};

}  // namespace edgetrain::insitu
