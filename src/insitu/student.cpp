#include "insitu/student.hpp"

#include <cmath>
#include <limits>

namespace edgetrain::insitu {

ViewpointExperimentResult run_viewpoint_experiment(
    const ViewpointExperimentConfig& config) {
  ViewpointExperimentResult result;

  // 1. Cloud-side teacher: canonical-viewpoint training set.
  SceneSimulator sim(config.scene);
  PatchDataset teacher_data(config.harvest.patch);
  for (std::int32_t label = 0; label < config.scene.num_classes; ++label) {
    for (int i = 0; i < config.teacher_examples_per_class; ++i) {
      teacher_data.add(sim.canonical_patch(label, config.harvest.patch),
                       label);
    }
  }
  PatchClassifier teacher(config.harvest.patch, config.scene.num_classes,
                          config.classifier_channels, config.seed);
  result.teacher_train = teacher.train(teacher_data, config.teacher_train);

  // 2. In-situ harvesting from the simulated camera stream.
  Harvester harvester(teacher, config.harvest);
  for (std::int64_t f = 0; f < config.stream_frames; ++f) {
    harvester.consume(sim.next_frame());
  }
  harvester.finish();
  result.harvest = harvester.stats();
  result.dataset_size = harvester.dataset().size();

  // 3. On-node student training (checkpointed; Section VI machinery).
  const std::int64_t student_channels = config.student_channels > 0
                                            ? config.student_channels
                                            : config.classifier_channels;
  PatchClassifier student(config.harvest.patch, config.scene.num_classes,
                          student_channels, config.seed + 1);
  if (!harvester.dataset().empty()) {
    result.student_train =
        student.train(harvester.dataset(), config.student_train,
                      config.distill_student ? &teacher : nullptr);
  }

  // 4. Accuracy across viewpoint bins.
  const float width = static_cast<float>(config.scene.frame_width);
  double teacher_sum = 0.0;
  double student_sum = 0.0;
  for (int bin = 0; bin < config.eval_bins; ++bin) {
    const float x =
        width * (static_cast<float>(bin) + 0.5F) /
        static_cast<float>(config.eval_bins);
    PatchDataset eval_data(config.harvest.patch);
    for (std::int32_t label = 0; label < config.scene.num_classes; ++label) {
      for (int i = 0; i < config.eval_per_class_per_bin; ++i) {
        eval_data.add(sim.skewed_patch(label, x, config.harvest.patch), label);
      }
    }
    BinAccuracy accuracy;
    accuracy.x_center = x;
    accuracy.skew = sim.skew_at(x);
    accuracy.teacher_accuracy = teacher.evaluate(eval_data);
    accuracy.student_accuracy =
        harvester.dataset().empty() ? 0.0 : student.evaluate(eval_data);
    teacher_sum += accuracy.teacher_accuracy;
    student_sum += accuracy.student_accuracy;
    result.bins.push_back(accuracy);
  }
  result.teacher_overall = teacher_sum / config.eval_bins;
  result.student_overall = student_sum / config.eval_bins;
  return result;
}

double StudentConvergenceModel::accuracy(double steps) const {
  if (steps <= 0.0 || tau_steps <= 0.0) return baseline;
  return ceiling - (ceiling - baseline) * std::exp(-steps / tau_steps);
}

double StudentConvergenceModel::steps_to_reach(double target) const {
  if (target <= baseline) return 0.0;
  if (target >= ceiling) return std::numeric_limits<double>::infinity();
  return -tau_steps * std::log((ceiling - target) / (ceiling - baseline));
}

bool StudentConvergenceModel::converged(double steps, double fraction) const {
  return accuracy(steps) >= baseline + fraction * (ceiling - baseline);
}

}  // namespace edgetrain::insitu
