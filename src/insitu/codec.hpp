// edgetrain: lossy grayscale image codec for on-node dataset storage.
//
// The paper's storage argument rests on "less than 10kb per image" at
// 224x224. This codec makes that claim testable: JPEG-style 8x8 DCT,
// quality-scaled quantisation, zigzag + zero-run-length coding with
// variable-length integers. No external dependencies; tuned for the
// grayscale training patches the in-situ pipeline stores (the harvester
// can round-trip every stored patch through it, so the student trains on
// exactly what the SD card holds -- compression artefacts included).
#pragma once

#include <cstdint>
#include <vector>

#include "insitu/vision.hpp"

namespace edgetrain::insitu {

/// Encodes a [0,1] grayscale image. @p quality in [1, 100]; higher keeps
/// more coefficients (50 is the JPEG-reference quantisation).
[[nodiscard]] std::vector<std::uint8_t> encode_image(
    const GrayImage& image, int quality = 50);

/// Decodes a payload produced by encode_image.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] GrayImage decode_image(
    const std::vector<std::uint8_t>& bytes);

/// Peak signal-to-noise ratio (dB) between two equal-sized images, with
/// signal range 1.0. Returns +inf for identical images.
[[nodiscard]] double psnr(const GrayImage& a,
                          const GrayImage& b);

}  // namespace edgetrain::insitu
