// Tests for the shadow-memory guards (tensor/guards.hpp).
//
// The detection tests inject real bugs -- a write past the end of a scratch
// span, a read through a stale pointer, aliased kernel buffers -- and assert
// the guards catch them. They need the instrumentation compiled in
// (-DEDGETRAIN_GUARDS=ON) and skip otherwise, so the suite stays green in
// release configurations where the guards intentionally cost nothing.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/slot_store.hpp"
#include "tensor/guards.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace edgetrain {
namespace {

struct GuardViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throwing_handler(const char* message) {
  throw GuardViolation(message);
}

class GuardsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!guards::kEnabled) {
      GTEST_SKIP() << "built without EDGETRAIN_GUARDS";
    }
    previous_ = guards::set_failure_handler(&throwing_handler);
  }

  void TearDown() override {
    if (guards::kEnabled) guards::set_failure_handler(previous_);
  }

 private:
  guards::FailureHandler previous_ = nullptr;
};

TEST_F(GuardsTest, FreshSpansArePoisoned) {
  Workspace ws;
  const Workspace::Marker marker = ws.mark();
  float* p = ws.alloc(32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(guards::is_poison(p[i])) << "element " << i;
  }
  ws.rewind(marker);
}

TEST_F(GuardsTest, CanarySurvivesInBoundsWrites) {
  Workspace ws;
  const Workspace::Marker marker = ws.mark();
  float* p = ws.alloc(48);
  for (int i = 0; i < 48; ++i) p[i] = static_cast<float>(i);
  EXPECT_NO_THROW(ws.rewind(marker));
}

TEST_F(GuardsTest, CanaryCatchesWritePastSpanEnd) {
  Workspace ws;
  const Workspace::Marker marker = ws.mark();
  float* p = ws.alloc(8);  // payload rounds up to one 16-float line
  p[16] = 1.0F;            // first canary float
  EXPECT_THROW(ws.rewind(marker), GuardViolation);
  // The smashed record was consumed: tearing the arena down is clean.
  EXPECT_NO_THROW(ws.release());
}

TEST_F(GuardsTest, CanaryCatchesOffByOneOnRoundedSpans) {
  Workspace ws;
  const Workspace::Marker marker = ws.mark();
  float* p = ws.alloc(16);  // exact line: p[16] is already the canary
  p[16] = 0.0F;
  EXPECT_THROW(ws.rewind(marker), GuardViolation);
  EXPECT_NO_THROW(ws.release());
}

TEST_F(GuardsTest, RewindPoisonsReleasedSpans) {
  Workspace ws;
  const Workspace::Marker marker = ws.mark();
  float* p = ws.alloc(24);
  for (int i = 0; i < 24; ++i) p[i] = 3.5F;
  ws.rewind(marker);
  // Stale pointer into the rewound region: reads poison, not old data.
  // (The backing block is retained by the arena, so the read itself is
  // well-defined; only the *value* is guard-controlled.)
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(guards::is_poison(p[i])) << "element " << i;
  }
}

TEST_F(GuardsTest, NestedScopesVerifyEverySpan) {
  Workspace ws;
  const Workspace::Marker outer = ws.mark();
  float* a = ws.alloc(16);
  const Workspace::Marker inner = ws.mark();
  float* b = ws.alloc(16);
  (void)b;
  a[16] = 7.0F;  // smash the *outer* span's canary
  // The inner rewind releases only b; a's canary is checked by the outer.
  EXPECT_NO_THROW(ws.rewind(inner));
  EXPECT_THROW(ws.rewind(outer), GuardViolation);
  EXPECT_NO_THROW(ws.release());
}

// The slot-store tests observe poisoning through the process-wide fill
// counter: the buffer is freed right after the poison fill, so reading it
// back would itself be a use-after-free.

TEST_F(GuardsTest, SlotStorePoisonsDroppedCheckpoints) {
  core::RamSlotStore store(2);
  Tensor t = Tensor::full({8}, 2.0F);
  store.put(0, t);
  t.reset();  // store is now the sole owner
  const std::int64_t before = guards::poison_fill_count();
  store.drop(0);
  EXPECT_EQ(guards::poison_fill_count(), before + 1);
}

TEST_F(GuardsTest, SlotStoreOverwritePoisonsTheOldCheckpoint) {
  core::RamSlotStore store(1);
  Tensor old_value = Tensor::full({4}, 1.0F);
  store.put(0, old_value);
  old_value.reset();
  const std::int64_t before = guards::poison_fill_count();
  store.put(0, Tensor::full({4}, 9.0F));  // overwrite releases the old buffer
  EXPECT_EQ(guards::poison_fill_count(), before + 1);
  EXPECT_FLOAT_EQ(store.get(0).data()[0], 9.0F);
}

TEST_F(GuardsTest, SlotStoreNeverPoisonsSharedHandles) {
  core::RamSlotStore store(1);
  Tensor t = Tensor::full({4}, 5.0F);
  store.put(0, t);  // t still owns a handle: live activation
  const std::int64_t before = guards::poison_fill_count();
  store.drop(0);
  EXPECT_EQ(guards::poison_fill_count(), before);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(t.data()[i], 5.0F);
  }
}

TEST_F(GuardsTest, AssertDisjointAcceptsSeparateBuffers) {
  Tensor a = Tensor::zeros({16});
  Tensor b = Tensor::zeros({16});
  EXPECT_NO_THROW(guards::assert_disjoint(
      "test", {{a.data(), a.numel()}, {b.data(), b.numel()}}));
}

TEST_F(GuardsTest, AssertDisjointCatchesOverlap) {
  Tensor a = Tensor::zeros({32});
  try {
    guards::assert_disjoint(
        "overlap_test", {{a.data(), 16}, {a.data() + 8, 16}});
    FAIL() << "overlap not detected";
  } catch (const GuardViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("overlap_test"),
              std::string::npos);
  }
}

TEST_F(GuardsTest, AssertDisjointIgnoresEmptySpans) {
  Tensor a = Tensor::zeros({8});
  EXPECT_NO_THROW(guards::assert_disjoint(
      "test", {{a.data(), a.numel()}, {nullptr, 0}, {a.data(), 0}}));
}

TEST_F(GuardsTest, GemmRejectsAliasedOutput) {
  // C aliases A: parallel_for chunks would write rows of C that other
  // chunks concurrently read as A.
  Tensor a = Tensor::full({2, 2}, 1.0F);
  Tensor b = Tensor::full({2, 2}, 1.0F);
  EXPECT_THROW(ops::gemm(false, false, 2, 2, 2, 1.0F, a.data(), b.data(), 0.0F,
                         a.data()),
               GuardViolation);
}

// Compile-time surface available in every configuration (no skip): the
// patterns are quiet NaNs, so poisoned values propagate through arithmetic
// instead of silently averaging in.
TEST(GuardsPatterns, PatternsAreQuietNaNs) {
  float canary;
  float poison;
  const std::uint32_t canary_bits = guards::kCanaryBits;
  const std::uint32_t poison_bits = guards::kPoisonBits;
  static_assert(sizeof(canary) == sizeof(canary_bits));
  std::memcpy(&canary, &canary_bits, sizeof(canary));
  std::memcpy(&poison, &poison_bits, sizeof(poison));
  EXPECT_TRUE(std::isnan(canary));
  EXPECT_TRUE(std::isnan(poison));
  EXPECT_TRUE(guards::is_poison(poison));
  EXPECT_FALSE(guards::is_poison(canary));
  EXPECT_FALSE(guards::is_poison(0.0F));
}

}  // namespace
}  // namespace edgetrain
