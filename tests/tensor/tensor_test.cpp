#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <random>

namespace edgetrain {
namespace {

TEST(Shape, NumelAndEquality) {
  const Shape a{2, 3, 4};
  EXPECT_EQ(a.rank(), 3);
  EXPECT_EQ(a.numel(), 24);
  EXPECT_EQ(a, (Shape{2, 3, 4}));
  EXPECT_NE(a, (Shape{2, 3, 5}));
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar convention
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

TEST(Tensor, DefaultIsUndefined) {
  const Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(Tensor, ZerosIsZero) {
  Tensor t = Tensor::zeros(Shape{3, 5});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 15);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, FullFills) {
  Tensor t = Tensor::full(Shape{4}, 2.5F);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5F);
}

TEST(Tensor, FromValues) {
  Tensor t = Tensor::from_values({1.0F, 2.0F, 3.0F});
  EXPECT_EQ(t.shape(), Shape{3});
  EXPECT_EQ(t.at(1), 2.0F);
}

TEST(Tensor, CopySharesStorage) {
  Tensor a = Tensor::zeros(Shape{4});
  Tensor b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  b.at(0) = 7.0F;
  EXPECT_EQ(a.at(0), 7.0F);
}

TEST(Tensor, CloneIsDeep) {
  Tensor a = Tensor::full(Shape{4}, 1.0F);
  Tensor b = a.clone();
  b.at(0) = 9.0F;
  EXPECT_EQ(a.at(0), 1.0F);
  EXPECT_EQ(b.at(0), 9.0F);
}

TEST(Tensor, ReshapedSharesStorageAndChecksNumel) {
  Tensor a = Tensor::zeros(Shape{2, 6});
  Tensor b = a.reshaped(Shape{3, 4});
  b.at(0) = 5.0F;
  EXPECT_EQ(a.at(0), 5.0F);
  EXPECT_THROW((void)a.reshaped(Shape{5}), std::invalid_argument);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a = Tensor::full(Shape{3}, 1.0F);
  Tensor b = Tensor::full(Shape{3}, 2.0F);
  a.axpy_(3.0F, b);  // 1 + 6
  EXPECT_FLOAT_EQ(a.at(0), 7.0F);
  a.scale_(0.5F);
  EXPECT_FLOAT_EQ(a.at(2), 3.5F);
}

TEST(Tensor, AxpyShapeMismatchThrows) {
  Tensor a = Tensor::zeros(Shape{3});
  Tensor b = Tensor::zeros(Shape{4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor t = Tensor::from_values({-3.0F, 1.0F, 2.0F});
  EXPECT_FLOAT_EQ(t.sum(), 0.0F);
  EXPECT_FLOAT_EQ(t.max_abs(), 3.0F);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a = Tensor::from_values({1.0F, 2.0F});
  Tensor b = Tensor::from_values({1.5F, 1.0F});
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 1.0F);
}

TEST(Tensor, RandnIsDeterministicForSeed) {
  std::mt19937 rng1(5);
  std::mt19937 rng2(5);
  Tensor a = Tensor::randn(Shape{16}, rng1);
  Tensor b = Tensor::randn(Shape{16}, rng2);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0F);
}

TEST(Tensor, UniformRange) {
  std::mt19937 rng(9);
  Tensor t = Tensor::uniform(Shape{256}, rng, -1.0F, 2.0F);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.at(i), -1.0F);
    EXPECT_LT(t.at(i), 2.0F);
  }
}

}  // namespace
}  // namespace edgetrain
