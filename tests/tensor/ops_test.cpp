#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace edgetrain::ops {
namespace {

TEST(ConvOutSize, MatchesFormula) {
  EXPECT_EQ(conv_out_size(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_size(112, 3, 2, 1), 56);
  EXPECT_EQ(conv_out_size(8, 3, 1, 1), 8);
  EXPECT_EQ(conv_out_size(5, 3, 1, 0), 3);
  EXPECT_EQ(conv_out_size(5, 2, 2, 0), 2);
}

// Naive triple-loop GEMM reference.
void naive_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
                std::int64_t k, const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  std::mt19937 rng(11);
  const std::int64_t m = 7;
  const std::int64_t n = 9;
  const std::int64_t k = 13;
  Tensor a = Tensor::randn(ta ? Shape{k, m} : Shape{m, k}, rng);
  Tensor b = Tensor::randn(tb ? Shape{n, k} : Shape{k, n}, rng);
  Tensor c = Tensor::zeros(Shape{m, n});
  Tensor ref = Tensor::zeros(Shape{m, n});
  gemm(ta, tb, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
  naive_gemm(ta, tb, m, n, k, a.data(), b.data(), ref.data());
  EXPECT_LT(Tensor::max_abs_diff(c, ref), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Gemm, AlphaBetaSemantics) {
  std::mt19937 rng(3);
  Tensor a = Tensor::randn(Shape{4, 5}, rng);
  Tensor b = Tensor::randn(Shape{5, 6}, rng);
  Tensor c = Tensor::full(Shape{4, 6}, 1.0F);
  Tensor expect = Tensor::zeros(Shape{4, 6});
  naive_gemm(false, false, 4, 6, 5, a.data(), b.data(), expect.data());
  // c = 2*A*B + 3*c
  gemm(false, false, 4, 6, 5, 2.0F, a.data(), b.data(), 3.0F, c.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), 2.0F * expect.at(i) + 3.0F, 1e-4F);
  }
}

// Naive convolution reference.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& bias,
                  const ConvParams& p) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t wd = x.shape()[3];
  const std::int64_t cout = w.shape()[0];
  const std::int64_t kh = w.shape()[2];
  const std::int64_t kw = w.shape()[3];
  const std::int64_t ho = conv_out_size(h, kh, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(wd, kw, p.stride, p.pad);
  Tensor y = Tensor::zeros(Shape{n, cout, ho, wo});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          double acc = bias.defined() ? bias.at(co) : 0.0;
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = oy * p.stride - p.pad + ky;
                const std::int64_t ix = ox * p.stride - p.pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
                acc += static_cast<double>(
                           x.data()[((img * cin + ci) * h + iy) * wd + ix]) *
                       w.data()[((co * cin + ci) * kh + ky) * kw + kx];
              }
            }
          }
          y.data()[((img * cout + co) * ho + oy) * wo + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

struct ConvCase {
  std::int64_t stride;
  std::int64_t pad;
  std::int64_t kernel;
  bool bias;
};

class ConvTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvTest, ForwardMatchesNaive) {
  const ConvCase c = GetParam();
  std::mt19937 rng(7);
  Tensor x = Tensor::randn(Shape{2, 3, 9, 9}, rng);
  Tensor w = Tensor::randn(Shape{4, 3, c.kernel, c.kernel}, rng);
  Tensor b = c.bias ? Tensor::randn(Shape{4}, rng) : Tensor{};
  const ConvParams p{c.stride, c.pad};
  Tensor got = conv2d_forward(x, w, b, p);
  Tensor ref = naive_conv(x, w, b, p);
  EXPECT_EQ(got.shape(), ref.shape());
  EXPECT_LT(Tensor::max_abs_diff(got, ref), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvTest,
    ::testing::Values(ConvCase{1, 0, 3, false}, ConvCase{1, 1, 3, true},
                      ConvCase{2, 1, 3, false}, ConvCase{2, 3, 7, true},
                      ConvCase{1, 0, 1, false}, ConvCase{2, 0, 1, false}));

TEST(Conv, BackwardNumericGradient) {
  std::mt19937 rng(19);
  Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng);
  Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  Tensor b = Tensor::randn(Shape{3}, rng);
  const ConvParams p{1, 1};
  Tensor cot = Tensor::randn(Shape{1, 3, 6, 6}, rng);

  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    Tensor y = conv2d_forward(xx, ww, bb, p);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.at(i)) * cot.at(i);
    }
    return acc;
  };

  Conv2dGrads grads = conv2d_backward(cot, x, w, p, true);
  const float eps = 1e-2F;
  // Spot-check a handful of coordinates in each gradient.
  for (const std::int64_t idx : {0L, 5L, 17L, 40L}) {
    Tensor xp = x.clone();
    xp.at(idx) += eps;
    Tensor xm = x.clone();
    xm.at(idx) -= eps;
    const double numeric = (loss(xp, w, b) - loss(xm, w, b)) / (2.0 * eps);
    EXPECT_NEAR(grads.grad_x.at(idx), numeric, 2e-2);
  }
  for (const std::int64_t idx : {0L, 9L, 31L}) {
    Tensor wp = w.clone();
    wp.at(idx) += eps;
    Tensor wm = w.clone();
    wm.at(idx) -= eps;
    const double numeric = (loss(x, wp, b) - loss(x, wm, b)) / (2.0 * eps);
    EXPECT_NEAR(grads.grad_w.at(idx), numeric, 2e-2);
  }
  for (const std::int64_t idx : {0L, 2L}) {
    Tensor bp = b.clone();
    bp.at(idx) += eps;
    Tensor bm = b.clone();
    bm.at(idx) -= eps;
    const double numeric = (loss(x, w, bp) - loss(x, w, bm)) / (2.0 * eps);
    EXPECT_NEAR(grads.grad_b.at(idx), numeric, 2e-2);
  }
}

TEST(Im2Col, RoundTripAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> : adjointness of the lowering.
  std::mt19937 rng(23);
  const std::int64_t ch = 2;
  const std::int64_t h = 5;
  const std::int64_t w = 5;
  const std::int64_t k = 3;
  const ConvParams p{2, 1};
  const std::int64_t ho = conv_out_size(h, k, p.stride, p.pad);
  const std::int64_t wo = conv_out_size(w, k, p.stride, p.pad);
  Tensor x = Tensor::randn(Shape{ch, h, w}, rng);
  Tensor c = Tensor::randn(Shape{ch * k * k, ho * wo}, rng);
  Tensor col = Tensor::zeros(Shape{ch * k * k, ho * wo});
  im2col(x.data(), ch, h, w, k, k, p, col.data());
  Tensor xadj = Tensor::zeros(Shape{ch, h, w});
  col2im(c.data(), ch, h, w, k, k, p, xadj.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < col.numel(); ++i) {
    lhs += static_cast<double>(col.at(i)) * c.at(i);
  }
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.at(i)) * xadj.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Relu, ForwardAndBackward) {
  Tensor x = Tensor::from_values({-1.0F, 0.0F, 2.0F});
  Tensor y = relu_forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(1), 0.0F);
  EXPECT_FLOAT_EQ(y.at(2), 2.0F);
  Tensor g = Tensor::from_values({5.0F, 5.0F, 5.0F});
  Tensor gx = relu_backward(g, y);
  EXPECT_FLOAT_EQ(gx.at(0), 0.0F);
  EXPECT_FLOAT_EQ(gx.at(1), 0.0F);
  EXPECT_FLOAT_EQ(gx.at(2), 5.0F);
}

TEST(MaxPool, ForwardPicksMaxAndBackwardRoutes) {
  Tensor x = Tensor::zeros(Shape{1, 1, 4, 4});
  x.data()[5] = 3.0F;   // (1,1)
  x.data()[10] = 7.0F;  // (2,2)
  MaxPoolResult r = maxpool2d_forward(x, 2, ConvParams{2, 0});
  EXPECT_EQ(r.y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(r.y.data()[0], 3.0F);
  EXPECT_FLOAT_EQ(r.y.data()[3], 7.0F);

  Tensor gy = Tensor::full(Shape{1, 1, 2, 2}, 1.0F);
  Tensor gx = maxpool2d_backward(gy, r.argmax, x.shape());
  EXPECT_FLOAT_EQ(gx.data()[5], 1.0F);
  EXPECT_FLOAT_EQ(gx.data()[10], 1.0F);
  float total = 0.0F;
  for (std::int64_t i = 0; i < gx.numel(); ++i) total += gx.at(i);
  EXPECT_FLOAT_EQ(total, 4.0F);  // all gradient mass routed
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor x = Tensor::zeros(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) x.data()[i] = 4.0F;      // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x.data()[i] = 8.0F;      // channel 1
  Tensor y = global_avgpool_forward(x);
  EXPECT_FLOAT_EQ(y.data()[0], 4.0F);
  EXPECT_FLOAT_EQ(y.data()[1], 8.0F);
  Tensor gy = Tensor::from_values({1.0F, 2.0F}).reshaped(Shape{1, 2});
  Tensor gx = global_avgpool_backward(gy, x.shape());
  EXPECT_FLOAT_EQ(gx.data()[0], 0.25F);
  EXPECT_FLOAT_EQ(gx.data()[7], 0.5F);
}

TEST(Linear, ForwardBackwardNumeric) {
  std::mt19937 rng(31);
  Tensor x = Tensor::randn(Shape{3, 4}, rng);
  Tensor w = Tensor::randn(Shape{5, 4}, rng);
  Tensor b = Tensor::randn(Shape{5}, rng);
  Tensor cot = Tensor::randn(Shape{3, 5}, rng);
  auto loss = [&](const Tensor& xx, const Tensor& ww) {
    Tensor y = linear_forward(xx, ww, b);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.at(i)) * cot.at(i);
    }
    return acc;
  };
  LinearGrads grads = linear_backward(cot, x, w, true);
  const float eps = 1e-2F;
  for (const std::int64_t idx : {0L, 7L, 11L}) {
    Tensor xp = x.clone();
    xp.at(idx) += eps;
    Tensor xm = x.clone();
    xm.at(idx) -= eps;
    EXPECT_NEAR(grads.grad_x.at(idx),
                (loss(xp, w) - loss(xm, w)) / (2.0 * eps), 2e-2);
  }
  for (const std::int64_t idx : {0L, 13L, 19L}) {
    Tensor wp = w.clone();
    wp.at(idx) += eps;
    Tensor wm = w.clone();
    wm.at(idx) -= eps;
    EXPECT_NEAR(grads.grad_w.at(idx),
                (loss(x, wp) - loss(x, wm)) / (2.0 * eps), 2e-2);
  }
  // grad_b = column sums of cot.
  for (std::int64_t j = 0; j < 5; ++j) {
    float expect = 0.0F;
    for (std::int64_t i = 0; i < 3; ++i) expect += cot.at(i * 5 + j);
    EXPECT_NEAR(grads.grad_b.at(j), expect, 1e-4F);
  }
}

TEST(BatchNorm, NormalisesToZeroMeanUnitVar) {
  std::mt19937 rng(41);
  Tensor x = Tensor::randn(Shape{4, 3, 5, 5}, rng, 3.0F);
  Tensor gamma = Tensor::full(Shape{3}, 1.0F);
  Tensor beta = Tensor::zeros(Shape{3});
  Tensor rm = Tensor::zeros(Shape{3});
  Tensor rv = Tensor::full(Shape{3}, 1.0F);
  BatchNormState state =
      batchnorm2d_forward(x, gamma, beta, rm, rv, 0.1F, 1e-5F, true);
  // Per-channel mean ~0, var ~1 of the output.
  const std::int64_t area = 25;
  for (std::int64_t ch = 0; ch < 3; ++ch) {
    double sum = 0.0;
    double sumsq = 0.0;
    for (std::int64_t img = 0; img < 4; ++img) {
      const float* p = state.y.data() + (img * 3 + ch) * area;
      for (std::int64_t i = 0; i < area; ++i) {
        sum += p[i];
        sumsq += static_cast<double>(p[i]) * p[i];
      }
    }
    const double mean = sum / 100.0;
    const double var = sumsq / 100.0 - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsUpdateOnlyWhenAsked) {
  std::mt19937 rng(43);
  Tensor x = Tensor::randn(Shape{2, 2, 4, 4}, rng);
  Tensor gamma = Tensor::full(Shape{2}, 1.0F);
  Tensor beta = Tensor::zeros(Shape{2});
  Tensor rm = Tensor::zeros(Shape{2});
  Tensor rv = Tensor::full(Shape{2}, 1.0F);
  (void)batchnorm2d_forward(x, gamma, beta, rm, rv, 0.1F, 1e-5F, false);
  EXPECT_FLOAT_EQ(rm.at(0), 0.0F);
  EXPECT_FLOAT_EQ(rv.at(0), 1.0F);
  (void)batchnorm2d_forward(x, gamma, beta, rm, rv, 0.1F, 1e-5F, true);
  EXPECT_NE(rm.at(0), 0.0F);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Tensor x = Tensor::full(Shape{1, 1, 2, 2}, 3.0F);
  Tensor gamma = Tensor::full(Shape{1}, 2.0F);
  Tensor beta = Tensor::full(Shape{1}, 1.0F);
  Tensor rm = Tensor::full(Shape{1}, 1.0F);
  Tensor rv = Tensor::full(Shape{1}, 4.0F);
  Tensor y = batchnorm2d_infer(x, gamma, beta, rm, rv, 0.0F);
  // (3-1)/2 * 2 + 1 = 3
  EXPECT_NEAR(y.at(0), 3.0F, 1e-4F);
}

TEST(BatchNorm, BackwardNumericGradient) {
  std::mt19937 rng(47);
  Tensor x = Tensor::randn(Shape{2, 2, 3, 3}, rng);
  Tensor gamma = Tensor::uniform(Shape{2}, rng, 0.5F, 1.5F);
  Tensor beta = Tensor::randn(Shape{2}, rng, 0.1F);
  Tensor rm = Tensor::zeros(Shape{2});
  Tensor rv = Tensor::full(Shape{2}, 1.0F);
  Tensor cot = Tensor::randn(Shape{2, 2, 3, 3}, rng);

  auto loss = [&](const Tensor& xx) {
    BatchNormState s =
        batchnorm2d_forward(xx, gamma, beta, rm, rv, 0.1F, 1e-5F, false);
    double acc = 0.0;
    for (std::int64_t i = 0; i < s.y.numel(); ++i) {
      acc += static_cast<double>(s.y.at(i)) * cot.at(i);
    }
    return acc;
  };

  BatchNormState state =
      batchnorm2d_forward(x, gamma, beta, rm, rv, 0.1F, 1e-5F, false);
  BatchNormGrads grads = batchnorm2d_backward(cot, x, gamma, state);
  const float eps = 1e-2F;
  for (const std::int64_t idx : {0L, 8L, 17L, 30L}) {
    Tensor xp = x.clone();
    xp.at(idx) += eps;
    Tensor xm = x.clone();
    xm.at(idx) -= eps;
    EXPECT_NEAR(grads.grad_x.at(idx), (loss(xp) - loss(xm)) / (2.0 * eps),
                5e-2);
  }
}

TEST(SoftmaxXent, KnownValuesAndGradient) {
  Tensor logits = Tensor::from_values({1.0F, 1.0F, 2.0F, 0.0F})
                      .reshaped(Shape{2, 2});
  const std::vector<std::int32_t> labels{0, 0};
  SoftmaxXentResult r = softmax_xent_forward(logits, labels);
  // Row 0: uniform -> loss ln 2; row 1: p(correct)=sigmoid(2).
  const double l0 = std::log(2.0);
  const double l1 = -std::log(1.0 / (1.0 + std::exp(-2.0)));
  EXPECT_NEAR(r.loss, (l0 + l1) / 2.0, 1e-5);

  Tensor grad = softmax_xent_backward(r.probs, labels);
  // Each row sums to 0 and matches (p - onehot)/N.
  EXPECT_NEAR(grad.at(0) + grad.at(1), 0.0F, 1e-6F);
  EXPECT_NEAR(grad.at(0), (0.5F - 1.0F) / 2.0F, 1e-5F);
}

TEST(SoftmaxXent, NumericallyStableForLargeLogits) {
  Tensor logits =
      Tensor::from_values({1000.0F, 999.0F}).reshaped(Shape{1, 2});
  SoftmaxXentResult r = softmax_xent_forward(logits, {0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.probs.at(0) + r.probs.at(1), 1.0F, 1e-5F);
}

TEST(AvgPool, ForwardAveragesAndBackwardSpreads) {
  Tensor x = Tensor::zeros(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.data()[i] = static_cast<float>(i);
  Tensor y = avgpool2d_forward(x, 2, ConvParams{2, 0});
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.data()[0], (0 + 1 + 4 + 5) / 4.0F);
  EXPECT_FLOAT_EQ(y.data()[3], (10 + 11 + 14 + 15) / 4.0F);

  Tensor gy = Tensor::full(Shape{1, 1, 2, 2}, 4.0F);
  Tensor gx = avgpool2d_backward(gy, 2, ConvParams{2, 0}, x.shape());
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(gx.data()[i], 1.0F);
}

TEST(AvgPool, PaddedWindowsCountPadding) {
  Tensor x = Tensor::full(Shape{1, 1, 2, 2}, 4.0F);
  // 3x3 window, pad 1: the corner window sees 4 real pixels out of 9.
  Tensor y = avgpool2d_forward(x, 3, ConvParams{1, 1});
  EXPECT_FLOAT_EQ(y.data()[0], 4.0F * 4.0F / 9.0F);
}

TEST(Sigmoid, KnownValuesAndGradient) {
  Tensor x = Tensor::from_values({0.0F, 100.0F, -100.0F});
  Tensor y = sigmoid_forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.5F);
  EXPECT_NEAR(y.at(1), 1.0F, 1e-6F);
  EXPECT_NEAR(y.at(2), 0.0F, 1e-6F);
  Tensor g = Tensor::full(Shape{3}, 1.0F);
  Tensor gx = sigmoid_backward(g, y);
  EXPECT_FLOAT_EQ(gx.at(0), 0.25F);  // y(1-y) at y=0.5
  EXPECT_NEAR(gx.at(1), 0.0F, 1e-6F);
}

TEST(Tanh, KnownValuesAndGradient) {
  Tensor x = Tensor::from_values({0.0F, 1.0F});
  Tensor y = tanh_forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);
  EXPECT_NEAR(y.at(1), std::tanh(1.0F), 1e-6F);
  Tensor g = Tensor::full(Shape{2}, 1.0F);
  Tensor gx = tanh_backward(g, y);
  EXPECT_FLOAT_EQ(gx.at(0), 1.0F);  // 1 - tanh(0)^2
}

TEST(Dropout, DeterministicForSeed) {
  std::mt19937 rng(71);
  Tensor x = Tensor::randn(Shape{1024}, rng);
  Tensor a = dropout_forward(x, 0.4F, 123);
  Tensor b = dropout_forward(x, 0.4F, 123);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0F);
  Tensor c = dropout_forward(x, 0.4F, 124);
  EXPECT_GT(Tensor::max_abs_diff(a, c), 0.0F);
}

TEST(Dropout, DropRateAndInvertedScaling) {
  Tensor x = Tensor::full(Shape{100000}, 1.0F);
  const float rate = 0.3F;
  Tensor y = dropout_forward(x, rate, 99);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.at(i), 1.0F / (1.0F - rate), 1e-5F);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()),
              rate, 0.01);
  // Inverted dropout preserves the expectation.
  EXPECT_NEAR(y.sum() / static_cast<float>(y.numel()), 1.0F, 0.02F);
}

TEST(Dropout, BackwardUsesSameMask) {
  std::mt19937 rng(73);
  Tensor x = Tensor::randn(Shape{256}, rng);
  Tensor y = dropout_forward(x, 0.5F, 7);
  Tensor g = Tensor::full(Shape{256}, 1.0F);
  Tensor gx = dropout_backward(g, 0.5F, 7);
  for (std::int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(gx.at(i) == 0.0F, y.at(i) == 0.0F) << i;
  }
}

TEST(Dropout, RejectsBadRate) {
  Tensor x = Tensor::zeros(Shape{4});
  EXPECT_THROW((void)dropout_forward(x, 1.0F, 1), std::invalid_argument);
  EXPECT_THROW((void)dropout_forward(x, -0.1F, 1), std::invalid_argument);
}

TEST(SoftmaxRows, TemperatureFlattens) {
  Tensor logits = Tensor::from_values({2.0F, 0.0F}).reshaped(Shape{1, 2});
  Tensor sharp = softmax_rows(logits, 1.0F);
  Tensor soft = softmax_rows(logits, 4.0F);
  EXPECT_GT(sharp.at(0), soft.at(0));
  EXPECT_NEAR(soft.at(0) + soft.at(1), 1.0F, 1e-6F);
}

TEST(Distill, PureHardEqualsSoftmaxXent) {
  std::mt19937 rng(79);
  Tensor zs = Tensor::randn(Shape{3, 4}, rng);
  Tensor zt = Tensor::randn(Shape{3, 4}, rng);
  const std::vector<std::int32_t> labels{0, 2, 3};
  const DistillResult distill = distill_loss(zs, zt, labels, 1.0F, 2.0F);
  const SoftmaxXentResult hard = softmax_xent_forward(zs, labels);
  EXPECT_NEAR(distill.loss, hard.loss, 1e-5F);
  Tensor hard_grad = softmax_xent_backward(hard.probs, labels);
  EXPECT_LT(Tensor::max_abs_diff(distill.grad_student_logits, hard_grad),
            1e-6F);
}

TEST(Distill, PureSoftZeroWhenStudentMatchesTeacher) {
  std::mt19937 rng(83);
  Tensor z = Tensor::randn(Shape{2, 5}, rng);
  const std::vector<std::int32_t> labels{0, 1};
  const DistillResult result = distill_loss(z, z, labels, 0.0F, 3.0F);
  EXPECT_NEAR(result.loss, 0.0F, 1e-5F);
  EXPECT_LT(result.grad_student_logits.max_abs(), 1e-6F);
}

TEST(Distill, GradientMatchesFiniteDifferences) {
  std::mt19937 rng(89);
  Tensor zs = Tensor::randn(Shape{2, 3}, rng);
  Tensor zt = Tensor::randn(Shape{2, 3}, rng);
  const std::vector<std::int32_t> labels{1, 2};
  const float alpha = 0.4F;
  const float temperature = 2.5F;
  const DistillResult result = distill_loss(zs, zt, labels, alpha, temperature);
  const float eps = 1e-2F;
  for (std::int64_t i = 0; i < zs.numel(); ++i) {
    Tensor up = zs.clone();
    up.at(i) += eps;
    Tensor down = zs.clone();
    down.at(i) -= eps;
    const float numeric =
        (distill_loss(up, zt, labels, alpha, temperature).loss -
         distill_loss(down, zt, labels, alpha, temperature).loss) /
        (2.0F * eps);
    EXPECT_NEAR(result.grad_student_logits.at(i), numeric, 5e-3F) << i;
  }
}

TEST(Distill, RejectsBadArguments) {
  Tensor a = Tensor::zeros(Shape{1, 2});
  Tensor b = Tensor::zeros(Shape{1, 3});
  EXPECT_THROW((void)distill_loss(a, b, {0}, 0.5F, 1.0F),
               std::invalid_argument);
  Tensor c = Tensor::zeros(Shape{1, 2});
  EXPECT_THROW((void)distill_loss(a, c, {0}, 1.5F, 1.0F),
               std::invalid_argument);
}

TEST(ArgmaxRows, PicksRowMaxima) {
  Tensor logits = Tensor::from_values({0.1F, 0.9F, 3.0F, -1.0F})
                      .reshaped(Shape{2, 2});
  const auto result = argmax_rows(logits);
  EXPECT_EQ(result[0], 1);
  EXPECT_EQ(result[1], 0);
}

}  // namespace
}  // namespace edgetrain::ops
