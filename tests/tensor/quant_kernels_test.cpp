// Quantization kernel tests: exhaustive bf16 conversion sweep, quantize /
// dequantize / requantize bulk-vs-scalar agreement, u8 im2col and max
// pooling against naive references, the s8 x u8 -> s32 GEMM against its
// triple-loop reference (exact -- integer accumulation), bf16 GEMM
// bit-equality with fp32 GEMM on pre-widened operands, and thread-count
// invariance of every quantized kernel (the determinism bar the fp32
// substrate already meets).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "tensor/convert.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain {
namespace {

// --------------------------------------------------------------------------
// bf16 conversions
// --------------------------------------------------------------------------

TEST(Bf16, ExhaustiveRoundTripAllPatterns) {
  // Every bf16 pattern decodes to a float that encodes back to itself --
  // except signaling NaNs, which are quieted (bit 6 of the mantissa set).
  for (std::uint32_t p = 0; p <= 0xFFFF; ++p) {
    const auto bits = static_cast<std::uint16_t>(p);
    const float decoded = convert::bf16_to_fp32_scalar(bits);
    const std::uint16_t re = convert::fp32_to_bf16_scalar(decoded);
    const bool is_nan = (bits & 0x7F80U) == 0x7F80U && (bits & 0x007FU) != 0;
    if (is_nan) {
      EXPECT_TRUE(std::isnan(decoded)) << "pattern " << p;
      EXPECT_EQ(re, static_cast<std::uint16_t>(bits | 0x0040U))
          << "pattern " << p;
    } else {
      EXPECT_EQ(re, bits) << "pattern " << p;
    }
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // 1.0 = 0x3F80. The bf16 mantissa keeps 7 bits; 2^-8 is exactly half an
  // ulp at 1.0, so 1 + 2^-8 ties and must round to the even pattern.
  EXPECT_EQ(convert::fp32_to_bf16_scalar(1.0F + 0.00390625F), 0x3F80);
  // 1 + 3 * 2^-8 ties between 0x3F81 and 0x3F82: even wins.
  EXPECT_EQ(convert::fp32_to_bf16_scalar(1.0F + 3.0F * 0.00390625F), 0x3F82);
  // Just above the tie rounds up.
  EXPECT_EQ(convert::fp32_to_bf16_scalar(1.0F + 0.0040F), 0x3F81);
}

TEST(Bf16, BulkMatchesScalar) {
  std::mt19937 rng(7);
  std::normal_distribution<float> dist(0.0F, 100.0F);
  std::vector<float> src(4097);
  for (auto& v : src) v = dist(rng);
  src[0] = 0.0F;
  src[1] = -0.0F;
  src[2] = std::numeric_limits<float>::infinity();
  src[3] = std::numeric_limits<float>::quiet_NaN();
  src[4] = std::numeric_limits<float>::denorm_min();
  std::vector<std::uint16_t> bulk(src.size());
  convert::fp32_to_bf16(src.data(), bulk.data(),
                        static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(bulk[i], convert::fp32_to_bf16_scalar(src[i])) << "i=" << i;
  }
  std::vector<float> back(src.size());
  convert::bf16_to_fp32(bulk.data(), back.data(),
                        static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back[i]),
              std::bit_cast<std::uint32_t>(
                  convert::bf16_to_fp32_scalar(bulk[i])))
        << "i=" << i;
  }
}

// --------------------------------------------------------------------------
// quantize / dequantize / requantize
// --------------------------------------------------------------------------

TEST(QuantizeU8, ZeroPointRepresentsExactZero) {
  for (const auto [lo, hi] : {std::pair{-3.0F, 5.0F}, {0.0F, 9.0F},
                              {-7.0F, 0.0F}, {2.0F, 4.0F}, {-5.0F, -1.0F}}) {
    const quant::QuantParams p = quant::choose_u8_params(lo, hi);
    EXPECT_GE(p.zero_point, 0);
    EXPECT_LE(p.zero_point, 255);
    EXPECT_EQ(quant::dequantize_u8_scalar(
                  static_cast<std::uint8_t>(p.zero_point), p),
              0.0F);
  }
}

TEST(QuantizeU8, RoundTripWithinHalfScale) {
  const quant::QuantParams p = quant::choose_u8_params(-4.0F, 4.0F);
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-4.0F, 4.0F);
  for (int i = 0; i < 1000; ++i) {
    const float x = dist(rng);
    const float back =
        quant::dequantize_u8_scalar(quant::quantize_u8_scalar(x, p), p);
    EXPECT_LE(std::abs(back - x), p.scale * 0.5F + 1e-6F) << "x=" << x;
  }
}

TEST(QuantizeU8, BulkMatchesScalar) {
  const quant::QuantParams p = quant::choose_u8_params(-2.0F, 6.0F);
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> dist(-3.0F, 7.0F);  // incl. clamps
  std::vector<float> src(2049);
  for (auto& v : src) v = dist(rng);
  std::vector<std::uint8_t> bulk(src.size());
  quant::quantize_u8(src.data(), bulk.data(),
                     static_cast<std::int64_t>(src.size()), p);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(bulk[i], quant::quantize_u8_scalar(src[i], p)) << "i=" << i;
  }
  std::vector<float> deq(src.size());
  quant::dequantize_u8(bulk.data(), deq.data(),
                       static_cast<std::int64_t>(src.size()), p);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(deq[i], quant::dequantize_u8_scalar(bulk[i], p)) << "i=" << i;
  }
}

TEST(QuantizeS8, BulkMatchesScalarAndClamps) {
  const float scale = quant::choose_s8_scale(3.0F);
  std::mt19937 rng(17);
  std::uniform_real_distribution<float> dist(-4.0F, 4.0F);  // past the clamp
  std::vector<float> src(1025);
  for (auto& v : src) v = dist(rng);
  std::vector<std::int8_t> bulk(src.size());
  quant::quantize_s8(src.data(), bulk.data(),
                     static_cast<std::int64_t>(src.size()), scale);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(bulk[i], quant::quantize_s8_scalar(src[i], scale)) << "i=" << i;
    EXPECT_GE(bulk[i], -127);
    EXPECT_LE(bulk[i], 127);
  }
}

TEST(Requantize, BulkMatchesScalarPerRow) {
  const std::int64_t rows = 5;
  const std::int64_t cols = 257;
  std::mt19937 rng(19);
  std::uniform_int_distribution<std::int32_t> acc_dist(-2000000, 2000000);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * cols));
  for (auto& v : acc) v = acc_dist(rng);
  std::vector<float> mult = {1e-4F, 5e-5F, 2e-4F, 1e-3F, 7e-5F};
  std::vector<float> bias = {-0.5F, 0.25F, 0.0F, 3.0F, -2.0F};
  for (const bool relu : {false, true}) {
    std::vector<std::uint8_t> bulk(acc.size());
    quant::requantize_s32_u8(acc.data(), bulk.data(), rows, cols, mult.data(),
                             bias.data(), /*zero_point=*/37, relu);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t j = 0; j < cols; ++j) {
        const auto idx = static_cast<std::size_t>(r * cols + j);
        EXPECT_EQ(bulk[idx],
                  quant::requantize_scalar(
                      acc[idx], mult[static_cast<std::size_t>(r)],
                      bias[static_cast<std::size_t>(r)], 37, relu))
            << "r=" << r << " j=" << j << " relu=" << relu;
      }
    }
  }
}

// --------------------------------------------------------------------------
// u8 im2col + max pooling vs naive references
// --------------------------------------------------------------------------

void im2col_u8_naive(const std::uint8_t* x, std::int64_t channels,
                     std::int64_t h, std::int64_t w, std::int64_t kh,
                     std::int64_t kw, const ops::ConvParams& p,
                     std::uint8_t pad_value, std::uint8_t* col) {
  const std::int64_t ho = ops::conv_out_size(h, kh, p.stride, p.pad);
  const std::int64_t wo = ops::conv_out_size(w, kw, p.stride, p.pad);
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t ki = 0; ki < kh; ++ki) {
      for (std::int64_t kj = 0; kj < kw; ++kj) {
        const std::int64_t row = (c * kh + ki) * kw + kj;
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const std::int64_t iy = oy * p.stride - p.pad + ki;
            const std::int64_t ix = ox * p.stride - p.pad + kj;
            const bool in = iy >= 0 && iy < h && ix >= 0 && ix < w;
            col[row * ho * wo + oy * wo + ox] =
                in ? x[(c * h + iy) * w + ix] : pad_value;
          }
        }
      }
    }
  }
}

TEST(Im2colU8, MatchesNaiveReference) {
  struct Case {
    std::int64_t c, h, w, kh, kw;
    ops::ConvParams p;
  };
  const Case cases[] = {
      {1, 20, 20, 3, 3, {1, 1}},   // patch CNN stage 1
      {8, 10, 10, 3, 3, {1, 1}},   // patch CNN stage 2
      {2, 9, 7, 3, 3, {2, 1}},     // strided
      {3, 8, 8, 5, 5, {1, 2}},     // wide kernel, wide pad
      {1, 6, 40, 1, 3, {1, 0}},    // no pad, wide row (memcpy path)
      {2, 5, 5, 5, 5, {1, 0}},     // kernel == image
  };
  std::mt19937 rng(23);
  std::uniform_int_distribution<int> byte(0, 255);
  for (const Case& t : cases) {
    const std::int64_t ho = ops::conv_out_size(t.h, t.kh, t.p.stride, t.p.pad);
    const std::int64_t wo = ops::conv_out_size(t.w, t.kw, t.p.stride, t.p.pad);
    ASSERT_GT(ho, 0);
    ASSERT_GT(wo, 0);
    std::vector<std::uint8_t> x(static_cast<std::size_t>(t.c * t.h * t.w));
    for (auto& v : x) v = static_cast<std::uint8_t>(byte(rng));
    const auto cols = static_cast<std::size_t>(t.c * t.kh * t.kw * ho * wo);
    std::vector<std::uint8_t> fast(cols, 0xAA);
    std::vector<std::uint8_t> naive(cols, 0x55);
    quant::im2col_u8(x.data(), t.c, t.h, t.w, t.kh, t.kw, t.p, 42,
                     fast.data());
    im2col_u8_naive(x.data(), t.c, t.h, t.w, t.kh, t.kw, t.p, 42,
                    naive.data());
    EXPECT_EQ(fast, naive) << "c=" << t.c << " h=" << t.h << " w=" << t.w
                           << " k=" << t.kh << "x" << t.kw
                           << " s=" << t.p.stride << " p=" << t.p.pad;
  }
}

TEST(MaxpoolU8, MatchesNaiveReference) {
  struct Case {
    std::int64_t c, h, w, k;
    ops::ConvParams p;
  };
  const Case cases[] = {
      {8, 20, 20, 2, {2, 0}},  // the 2x2/stride-2 fast path
      {16, 10, 10, 2, {2, 0}},
      {3, 9, 11, 2, {2, 0}},   // odd extents through the fast path
      {2, 9, 9, 3, {2, 1}},    // padded, generic path
      {1, 7, 7, 3, {1, 1}},
  };
  std::mt19937 rng(29);
  std::uniform_int_distribution<int> byte(0, 255);
  for (const Case& t : cases) {
    const std::int64_t ho = ops::conv_out_size(t.h, t.k, t.p.stride, t.p.pad);
    const std::int64_t wo = ops::conv_out_size(t.w, t.k, t.p.stride, t.p.pad);
    std::vector<std::uint8_t> x(static_cast<std::size_t>(t.c * t.h * t.w));
    for (auto& v : x) v = static_cast<std::uint8_t>(byte(rng));
    std::vector<std::uint8_t> got(static_cast<std::size_t>(t.c * ho * wo));
    quant::maxpool2d_u8(x.data(), t.c, t.h, t.w, t.k, t.p, 7, got.data());
    for (std::int64_t c = 0; c < t.c; ++c) {
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          std::uint8_t best = 7;  // pad_value
          for (std::int64_t ky = 0; ky < t.k; ++ky) {
            for (std::int64_t kx = 0; kx < t.k; ++kx) {
              const std::int64_t iy = oy * t.p.stride - t.p.pad + ky;
              const std::int64_t ix = ox * t.p.stride - t.p.pad + kx;
              if (iy < 0 || iy >= t.h || ix < 0 || ix >= t.w) continue;
              best = std::max(best, x[static_cast<std::size_t>(
                                        (c * t.h + iy) * t.w + ix)]);
            }
          }
          EXPECT_EQ(got[static_cast<std::size_t>((c * ho + oy) * wo + ox)],
                    best)
              << "c=" << c << " oy=" << oy << " ox=" << ox << " k=" << t.k;
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// int8 GEMM
// --------------------------------------------------------------------------

struct GemmShape {
  std::int64_t m, n, k;
};

TEST(GemmS8U8, MatchesReferenceExactly) {
  // Shapes cross every blocking edge: partial kMR/kNR tiles, odd k (the
  // vpmaddwd path pads the last s16 pair), k crossing the kKC panel, n
  // crossing kNC, and the degenerate 1-sized extents.
  const GemmShape shapes[] = {{1, 1, 1},    {6, 16, 2},  {8, 400, 9},
                              {16, 100, 72}, {7, 17, 33}, {5, 300, 257},
                              {13, 37, 64},  {2, 2, 511}, {64, 64, 64}};
  for (const std::int32_t zp : {0, 7, 128, 255}) {
    std::mt19937 rng(static_cast<std::uint32_t>(101 + zp));
    std::uniform_int_distribution<int> s8(-127, 127);
    std::uniform_int_distribution<int> u8(0, 255);
    for (const GemmShape& s : shapes) {
      std::vector<std::int8_t> a(static_cast<std::size_t>(s.m * s.k));
      std::vector<std::uint8_t> b(static_cast<std::size_t>(s.k * s.n));
      for (auto& v : a) v = static_cast<std::int8_t>(s8(rng));
      for (auto& v : b) v = static_cast<std::uint8_t>(u8(rng));
      std::vector<std::int32_t> got(static_cast<std::size_t>(s.m * s.n), -1);
      std::vector<std::int32_t> ref(static_cast<std::size_t>(s.m * s.n), -2);
      quant::gemm_s8u8(s.m, s.n, s.k, a.data(), b.data(), zp, got.data());
      quant::gemm_s8u8_ref(s.m, s.n, s.k, a.data(), b.data(), zp, ref.data());
      EXPECT_EQ(got, ref) << "m=" << s.m << " n=" << s.n << " k=" << s.k
                          << " zp=" << zp;
    }
  }
}

TEST(GemmS8U8, BitIdenticalAcrossThreadCounts) {
  const std::int64_t m = 30;
  const std::int64_t n = 300;
  const std::int64_t k = 129;
  std::mt19937 rng(31);
  std::uniform_int_distribution<int> s8(-127, 127);
  std::uniform_int_distribution<int> u8(0, 255);
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<std::int8_t>(s8(rng));
  for (auto& v : b) v = static_cast<std::uint8_t>(u8(rng));
  std::vector<std::int32_t> baseline(static_cast<std::size_t>(m * n));
  ThreadPool::set_global_threads(1);
  quant::gemm_s8u8(m, n, k, a.data(), b.data(), 100, baseline.data());
  for (const unsigned threads : {2U, 3U, 8U}) {
    ThreadPool::set_global_threads(threads);
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n));
    quant::gemm_s8u8(m, n, k, a.data(), b.data(), 100, got.data());
    EXPECT_EQ(got, baseline) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(0);
}

TEST(GemmS8U8, RejectsOverflowableK) {
  std::vector<std::int8_t> a(1);
  std::vector<std::uint8_t> b(1);
  std::vector<std::int32_t> c(1);
  EXPECT_THROW(
      quant::gemm_s8u8(1, 1, 65537, a.data(), b.data(), 0, c.data()),
      std::invalid_argument);
}

// --------------------------------------------------------------------------
// bf16 GEMM and the thread-local precision mode
// --------------------------------------------------------------------------

TEST(GemmBf16, BitIdenticalToFp32OnWidenedOperands) {
  const GemmShape shapes[] = {{5, 7, 3}, {33, 65, 17}, {64, 48, 96}};
  std::mt19937 rng(37);
  for (const GemmShape& s : shapes) {
    for (int combo = 0; combo < 4; ++combo) {
      const bool ta = (combo & 2) != 0;
      const bool tb = (combo & 1) != 0;
      Tensor a = Tensor::randn(ta ? Shape{s.k, s.m} : Shape{s.m, s.k}, rng);
      Tensor b = Tensor::randn(tb ? Shape{s.n, s.k} : Shape{s.k, s.n}, rng);
      const std::int64_t an = a.shape()[0] * a.shape()[1];
      const std::int64_t bn = b.shape()[0] * b.shape()[1];
      std::vector<std::uint16_t> a16(static_cast<std::size_t>(an));
      std::vector<std::uint16_t> b16(static_cast<std::size_t>(bn));
      convert::fp32_to_bf16(a.data(), a16.data(), an);
      convert::fp32_to_bf16(b.data(), b16.data(), bn);
      // Pre-widened copies run through the plain fp32 gemm.
      Tensor aw = Tensor::zeros(a.shape());
      Tensor bw = Tensor::zeros(b.shape());
      convert::bf16_to_fp32(a16.data(), aw.data(), an);
      convert::bf16_to_fp32(b16.data(), bw.data(), bn);
      Tensor c_bf = Tensor::full(Shape{s.m, s.n}, 0.5F);
      Tensor c_fp = Tensor::full(Shape{s.m, s.n}, 0.5F);
      ops::gemm_bf16(ta, tb, s.m, s.n, s.k, 1.25F, a16.data(), b16.data(),
                     0.75F, c_bf.data());
      ops::gemm(ta, tb, s.m, s.n, s.k, 1.25F, aw.data(), bw.data(), 0.75F,
                c_fp.data());
      EXPECT_EQ(std::memcmp(c_bf.data(), c_fp.data(),
                            static_cast<std::size_t>(s.m * s.n) *
                                sizeof(float)),
                0)
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " ta=" << ta
          << " tb=" << tb;
    }
  }
}

TEST(GemmPrecisionMode, ScopedBf16ReroutesGemmAndRestores) {
  const std::int64_t n = 33;
  std::mt19937 rng(41);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  std::vector<std::uint16_t> a16(static_cast<std::size_t>(n * n));
  std::vector<std::uint16_t> b16(static_cast<std::size_t>(n * n));
  convert::fp32_to_bf16(a.data(), a16.data(), n * n);
  convert::fp32_to_bf16(b.data(), b16.data(), n * n);
  Tensor c_mode = Tensor::zeros(Shape{n, n});
  Tensor c_bf = Tensor::zeros(Shape{n, n});
  ASSERT_EQ(ops::gemm_precision(), ops::GemmPrecision::Fp32);
  {
    const ops::ScopedGemmPrecision scope(ops::GemmPrecision::Bf16);
    ASSERT_EQ(ops::gemm_precision(), ops::GemmPrecision::Bf16);
    ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
              c_mode.data());
  }
  EXPECT_EQ(ops::gemm_precision(), ops::GemmPrecision::Fp32);
  ops::gemm_bf16(false, false, n, n, n, 1.0F, a16.data(), b16.data(), 0.0F,
                 c_bf.data());
  EXPECT_EQ(std::memcmp(c_mode.data(), c_bf.data(),
                        static_cast<std::size_t>(n * n) * sizeof(float)),
            0);
  // And bf16 must actually differ from full fp32 on generic operands --
  // otherwise the mode is silently a no-op.
  Tensor c_fp = Tensor::zeros(Shape{n, n});
  ops::gemm(false, false, n, n, n, 1.0F, a.data(), b.data(), 0.0F,
            c_fp.data());
  EXPECT_NE(std::memcmp(c_mode.data(), c_fp.data(),
                        static_cast<std::size_t>(n * n) * sizeof(float)),
            0);
}

TEST(GemmBf16, BitIdenticalAcrossThreadCounts) {
  const std::int64_t n = 96;
  std::mt19937 rng(43);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  std::vector<std::uint16_t> a16(static_cast<std::size_t>(n * n));
  std::vector<std::uint16_t> b16(static_cast<std::size_t>(n * n));
  convert::fp32_to_bf16(a.data(), a16.data(), n * n);
  convert::fp32_to_bf16(b.data(), b16.data(), n * n);
  Tensor baseline = Tensor::zeros(Shape{n, n});
  ThreadPool::set_global_threads(1);
  ops::gemm_bf16(false, false, n, n, n, 1.0F, a16.data(), b16.data(), 0.0F,
                 baseline.data());
  for (const unsigned threads : {2U, 5U}) {
    ThreadPool::set_global_threads(threads);
    Tensor got = Tensor::zeros(Shape{n, n});
    ops::gemm_bf16(false, false, n, n, n, 1.0F, a16.data(), b16.data(), 0.0F,
                   got.data());
    EXPECT_EQ(std::memcmp(got.data(), baseline.data(),
                          static_cast<std::size_t>(n * n) * sizeof(float)),
              0)
        << "threads=" << threads;
  }
  ThreadPool::set_global_threads(0);
}

}  // namespace
}  // namespace edgetrain
