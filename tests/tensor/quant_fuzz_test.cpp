// Randomized cross-checks of the int8 kernels (slow label): gemm_s8u8 vs
// its scalar reference on random shapes / zero points / thread counts
// (exact -- s32 accumulation is associative), im2col_u8 on random conv
// geometries vs a naive gather, and a whole quantized conv stage (im2col +
// gemm + requantize) against fp32 arithmetic on the dequantized operands
// with the analytic rounding bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/quant.hpp"

namespace edgetrain {
namespace {

TEST(QuantFuzz, GemmS8U8MatchesReferenceOnRandomShapes) {
  std::mt19937 rng(777);
  std::uniform_int_distribution<std::int64_t> dim(1, 70);
  std::uniform_int_distribution<std::int64_t> kdim(1, 600);
  std::uniform_int_distribution<int> zp_dist(0, 255);
  std::uniform_int_distribution<int> s8(-127, 127);
  std::uniform_int_distribution<int> u8(0, 255);
  std::uniform_int_distribution<unsigned> threads(1, 6);
  for (int iter = 0; iter < 120; ++iter) {
    const std::int64_t m = dim(rng);
    const std::int64_t n = dim(rng) * 8;  // reach across kNR/kNC tiles
    const std::int64_t k = kdim(rng);
    const std::int32_t zp = zp_dist(rng);
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) v = static_cast<std::int8_t>(s8(rng));
    for (auto& v : b) v = static_cast<std::uint8_t>(u8(rng));
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> ref(static_cast<std::size_t>(m * n));
    ThreadPool::set_global_threads(threads(rng));
    quant::gemm_s8u8(m, n, k, a.data(), b.data(), zp, got.data());
    quant::gemm_s8u8_ref(m, n, k, a.data(), b.data(), zp, ref.data());
    ASSERT_EQ(got, ref) << "iter=" << iter << " m=" << m << " n=" << n
                        << " k=" << k << " zp=" << zp;
  }
  ThreadPool::set_global_threads(0);
}

TEST(QuantFuzz, Im2colU8RandomGeometries) {
  std::mt19937 rng(888);
  std::uniform_int_distribution<std::int64_t> chan(1, 6);
  std::uniform_int_distribution<std::int64_t> extent(3, 24);
  std::uniform_int_distribution<std::int64_t> kernel(1, 5);
  std::uniform_int_distribution<std::int64_t> stride(1, 3);
  std::uniform_int_distribution<std::int64_t> pad(0, 3);
  std::uniform_int_distribution<int> byte(0, 255);
  int tested = 0;
  while (tested < 150) {
    const std::int64_t c = chan(rng);
    const std::int64_t h = extent(rng);
    const std::int64_t w = extent(rng);
    const std::int64_t kh = kernel(rng);
    const std::int64_t kw = kernel(rng);
    const ops::ConvParams p{static_cast<int>(stride(rng)),
                            static_cast<int>(pad(rng))};
    const std::int64_t ho = ops::conv_out_size(h, kh, p.stride, p.pad);
    const std::int64_t wo = ops::conv_out_size(w, kw, p.stride, p.pad);
    if (ho <= 0 || wo <= 0) continue;
    ++tested;
    const auto pad_value = static_cast<std::uint8_t>(byte(rng));
    std::vector<std::uint8_t> x(static_cast<std::size_t>(c * h * w));
    for (auto& v : x) v = static_cast<std::uint8_t>(byte(rng));
    std::vector<std::uint8_t> col(
        static_cast<std::size_t>(c * kh * kw * ho * wo));
    quant::im2col_u8(x.data(), c, h, w, kh, kw, p, pad_value, col.data());
    for (std::int64_t cc = 0; cc < c; ++cc) {
      for (std::int64_t ki = 0; ki < kh; ++ki) {
        for (std::int64_t kj = 0; kj < kw; ++kj) {
          for (std::int64_t oy = 0; oy < ho; ++oy) {
            for (std::int64_t ox = 0; ox < wo; ++ox) {
              const std::int64_t iy = oy * p.stride - p.pad + ki;
              const std::int64_t ix = ox * p.stride - p.pad + kj;
              const bool in = iy >= 0 && iy < h && ix >= 0 && ix < w;
              const std::uint8_t want =
                  in ? x[static_cast<std::size_t>((cc * h + iy) * w + ix)]
                     : pad_value;
              const auto row = (cc * kh + ki) * kw + kj;
              ASSERT_EQ(col[static_cast<std::size_t>(row * ho * wo + oy * wo +
                                                     ox)],
                        want)
                  << "c=" << cc << " ki=" << ki << " kj=" << kj
                  << " oy=" << oy << " ox=" << ox << " stride=" << p.stride
                  << " pad=" << p.pad;
            }
          }
        }
      }
    }
  }
}

TEST(QuantFuzz, QuantizedConvStageTracksFp32WithinBound) {
  // A full random conv stage at int8 vs fp32 arithmetic on the SAME
  // (dequantized) values. The integer stage computes
  //   acc = sum_k w_q * (x_q - zp)   exactly, so
  //   s_w * s_x * acc == fp32 conv of the dequantized operands
  // up to fp32 summation error; the requantize step then adds at most
  // half an output scale of rounding. Verify the end-to-end bound.
  std::mt19937 rng(999);
  std::uniform_int_distribution<std::int64_t> chan(1, 4);
  std::uniform_int_distribution<std::int64_t> ochan(1, 8);
  std::uniform_int_distribution<std::int64_t> extent(6, 16);
  std::uniform_real_distribution<float> xval(-1.0F, 3.0F);
  std::uniform_real_distribution<float> wval(-0.5F, 0.5F);
  for (int iter = 0; iter < 60; ++iter) {
    const std::int64_t ci = chan(rng);
    const std::int64_t co = ochan(rng);
    const std::int64_t h = extent(rng);
    const std::int64_t w = extent(rng);
    const std::int64_t kk = 3;
    const ops::ConvParams p{1, 1};
    const std::int64_t ho = ops::conv_out_size(h, kk, p.stride, p.pad);
    const std::int64_t wo = ops::conv_out_size(w, kk, p.stride, p.pad);
    const std::int64_t cols = ci * kk * kk;

    // Random fp32 activations/weights, then quantize.
    std::vector<float> x(static_cast<std::size_t>(ci * h * w));
    for (auto& v : x) v = xval(rng);
    std::vector<float> wt(static_cast<std::size_t>(co * cols));
    for (auto& v : wt) v = wval(rng);

    const quant::QuantParams in_q = quant::choose_u8_params(-1.0F, 3.0F);
    std::vector<std::uint8_t> xq(x.size());
    quant::quantize_u8(x.data(), xq.data(),
                       static_cast<std::int64_t>(x.size()), in_q);
    std::vector<std::int8_t> wq(wt.size());
    std::vector<float> w_scales(static_cast<std::size_t>(co));
    for (std::int64_t o = 0; o < co; ++o) {
      float max_abs = 0.0F;
      for (std::int64_t j = 0; j < cols; ++j) {
        max_abs = std::max(max_abs,
                           std::abs(wt[static_cast<std::size_t>(o * cols + j)]));
      }
      const float scale = quant::choose_s8_scale(max_abs);
      w_scales[static_cast<std::size_t>(o)] = scale;
      quant::quantize_s8(wt.data() + o * cols, wq.data() + o * cols, cols,
                         scale, convert::Threading::Serial);
    }

    // Integer stage.
    const auto zp_in = static_cast<std::uint8_t>(in_q.zero_point);
    std::vector<std::uint8_t> col(static_cast<std::size_t>(cols * ho * wo));
    quant::im2col_u8(xq.data(), ci, h, w, kk, kk, p, zp_in, col.data());
    std::vector<std::int32_t> acc(static_cast<std::size_t>(co * ho * wo));
    quant::gemm_s8u8(co, ho * wo, cols, wq.data(), col.data(),
                     in_q.zero_point, acc.data());

    // fp32 reference on the dequantized values (double accumulate: the
    // integer product is exact, so double bounds the fp32 text tightly).
    for (std::int64_t o = 0; o < co; ++o) {
      const float s_out =
          w_scales[static_cast<std::size_t>(o)] * in_q.scale;
      for (std::int64_t j = 0; j < ho * wo; ++j) {
        double want = 0.0;
        for (std::int64_t t = 0; t < cols; ++t) {
          const double xr =
              static_cast<double>(in_q.scale) *
              (static_cast<double>(col[static_cast<std::size_t>(j + t * ho *
                                                                wo)]) -
               static_cast<double>(in_q.zero_point));
          const double wr =
              static_cast<double>(w_scales[static_cast<std::size_t>(o)]) *
              static_cast<double>(wq[static_cast<std::size_t>(o * cols + t)]);
          want += wr * xr;
        }
        const double got =
            static_cast<double>(s_out) *
            static_cast<double>(acc[static_cast<std::size_t>(o * ho * wo +
                                                             j)]);
        // Exact integer accumulation: only the final scale multiply
        // rounds. Tolerance covers double->float of the scales.
        ASSERT_NEAR(got, want, 1e-4 + 1e-5 * std::abs(want))
            << "iter=" << iter << " o=" << o << " j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace edgetrain
