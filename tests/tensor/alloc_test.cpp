#include "tensor/alloc.hpp"

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace edgetrain {
namespace {

TEST(MemoryTracker, TracksTensorLifetimes) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current_bytes();
  {
    Tensor t = Tensor::zeros(Shape{1024});
    EXPECT_EQ(tracker.current_bytes(), before + 4096);
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(MemoryTracker, SharedStorageCountedOnce) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current_bytes();
  Tensor a = Tensor::zeros(Shape{256});
  Tensor b = a;
  Tensor c = a.reshaped(Shape{16, 16});
  EXPECT_EQ(tracker.current_bytes(), before + 1024);
  a.reset();
  b.reset();
  EXPECT_EQ(tracker.current_bytes(), before + 1024);  // c keeps it alive
  c.reset();
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(ScopedPeakProbe, MeasuresPeakOverRegion) {
  ScopedPeakProbe probe;
  {
    Tensor big = Tensor::zeros(Shape{1 << 16});  // 256 KiB
    Tensor small = Tensor::zeros(Shape{16});
    (void)small;
  }
  Tensor after = Tensor::zeros(Shape{16});
  EXPECT_GE(probe.peak_over_baseline(), (1U << 16) * 4U);
  EXPECT_LT(probe.peak_over_baseline(), (1U << 17) * 4U);
}

TEST(ScopedPeakProbe, BaselineExcluded) {
  Tensor held = Tensor::zeros(Shape{1 << 14});
  ScopedPeakProbe probe;
  Tensor extra = Tensor::zeros(Shape{64});
  EXPECT_LT(probe.peak_over_baseline(), 4096U);
}

TEST(MemoryTracker, AllocationCountIncreases) {
  auto& tracker = MemoryTracker::instance();
  const std::uint64_t before = tracker.allocation_count();
  Tensor t = Tensor::zeros(Shape{8});
  EXPECT_GT(tracker.allocation_count(), before);
}

TEST(MemoryTracker, ResetPeakDropsToCurrent) {
  auto& tracker = MemoryTracker::instance();
  {
    Tensor t = Tensor::zeros(Shape{1 << 12});
  }
  tracker.reset_peak();
  EXPECT_EQ(tracker.peak_bytes(), tracker.current_bytes());
}

}  // namespace
}  // namespace edgetrain
