// Exhaustive correctness tests for the blocked, packed GEMM.
//
// The kernel blocks at kMR=6 / kNR=16 (register tile), kMC=120 / kKC=256 /
// kNC=256 (cache tiles), so shapes are chosen to land on, just under and
// just over every blocking edge, plus odd/prime shapes that exercise the
// zero-padded fringe panels. Every trans_a/trans_b combination is crossed
// with alpha, beta in {0, 1, 0.5}.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <tuple>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::ops {
namespace {

struct GemmShape {
  std::int64_t m;
  std::int64_t n;
  std::int64_t k;
};

// Edges of the register tile (6, 16), the cache tiles (120, 256) and primes
// that divide none of them.
const std::vector<GemmShape>& shapes() {
  static const std::vector<GemmShape> kShapes = {
      {1, 1, 1},      {1, 16, 1},    {6, 16, 1},     {3, 5, 7},
      {5, 6, 7},      {7, 17, 16},   {15, 16, 17},   {17, 19, 23},
      {31, 17, 29},   {6, 32, 64},   {12, 48, 16},   {67, 129, 65},
      {119, 120, 121}, {120, 16, 256}, {121, 257, 129},
  };
  return kShapes;
}

/// Naive triple-loop reference with full alpha/beta semantics, accumulated
/// in double so it is strictly more accurate than the kernel under test.
void naive_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, const float* b,
                float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      const double prev = beta == 0.0F ? 0.0 : static_cast<double>(c[i * n + j]) * beta;
      c[i * n + j] = static_cast<float>(static_cast<double>(alpha) * acc + prev);
    }
  }
}

float tolerance(std::int64_t k) {
  // Error grows with the reduction depth; 1e-4 covers k up to a few hundred.
  return 1e-4F * std::max<std::int64_t>(1, k / 64);
}

class BlockedGemmTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(BlockedGemmTest, MatchesReferenceAcrossShapesAndScalars) {
  const auto [ta, tb] = GetParam();
  const float kScalars[] = {0.0F, 1.0F, 0.5F};
  std::mt19937 rng(97);
  for (const GemmShape& s : shapes()) {
    Tensor a = Tensor::randn(ta ? Shape{s.k, s.m} : Shape{s.m, s.k}, rng);
    Tensor b = Tensor::randn(tb ? Shape{s.n, s.k} : Shape{s.k, s.n}, rng);
    Tensor c0 = Tensor::randn(Shape{s.m, s.n}, rng);
    for (const float alpha : kScalars) {
      for (const float beta : kScalars) {
        Tensor c = c0.clone();
        Tensor ref = c0.clone();
        gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), b.data(), beta,
             c.data());
        naive_gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), b.data(), beta,
                   ref.data());
        EXPECT_LT(Tensor::max_abs_diff(c, ref), tolerance(s.k))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k
            << " ta=" << ta << " tb=" << tb << " alpha=" << alpha
            << " beta=" << beta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, BlockedGemmTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(BlockedGemm, DeepReductionCrossesMultipleKcBlocks) {
  // k = 600 spans three kKC=256 panels; checks the beta=1 continuation
  // between panels and the alpha scaling applied exactly once.
  std::mt19937 rng(5);
  const std::int64_t m = 13;
  const std::int64_t n = 33;
  const std::int64_t k = 600;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c = Tensor::full(Shape{m, n}, 2.0F);
  Tensor ref = Tensor::full(Shape{m, n}, 2.0F);
  gemm(false, false, m, n, k, 0.5F, a.data(), b.data(), 0.5F, c.data());
  naive_gemm(false, false, m, n, k, 0.5F, a.data(), b.data(), 0.5F,
             ref.data());
  EXPECT_LT(Tensor::max_abs_diff(c, ref), tolerance(k));
}

TEST(BlockedGemm, BitForBitDeterministic) {
  // Every C tile has one writer with a fixed k order, so repeated runs must
  // agree bitwise, not just within tolerance.
  std::mt19937 rng(31);
  const std::int64_t m = 131;
  const std::int64_t n = 261;
  const std::int64_t k = 300;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor first = Tensor::zeros(Shape{m, n});
  gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, first.data());
  for (int run = 0; run < 3; ++run) {
    Tensor again = Tensor::zeros(Shape{m, n});
    gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F,
         again.data());
    EXPECT_EQ(0, std::memcmp(first.data(), again.data(),
                             static_cast<std::size_t>(first.numel()) *
                                 sizeof(float)))
        << "run " << run;
  }
}

TEST(BlockedGemm, DegenerateKScalesCOnly) {
  Tensor c = Tensor::full(Shape{3, 4}, 3.0F);
  gemm(false, false, 3, 4, 0, 1.0F, nullptr, nullptr, 0.5F, c.data());
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], 1.5F);
  }
}

}  // namespace
}  // namespace edgetrain::ops
