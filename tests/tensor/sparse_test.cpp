// Sparse bitmap kernel coverage: the vectorised/parallel popcount,
// compact and scatter paths against their scalar references, swept over
// densities 0%, 1%, 50%, 100% and ragged tail lengths straddling the
// 64-bit word and parallel-chunk boundaries, plus the bit-exactness
// contract (-0.0f and NaN payloads survive, zeros restore as +0.0f).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "tensor/sparse.hpp"

namespace edgetrain::sparse {
namespace {

constexpr std::int64_t kChunkElems = std::int64_t{1} << 15;

std::vector<float> make_values(std::int64_t n, double density,
                               std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 2.0F);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<float> values(static_cast<std::size_t>(n), 0.0F);
  for (float& v : values) {
    if (coin(rng) < density) {
      float x = dist(rng);
      if (x == 0.0F) x = 1.0F;
      v = x;
    }
  }
  return values;
}

// Lengths straddling the word (64) and parallel-chunk (1 << 15)
// boundaries, plus tiny and empty edge cases.
const std::int64_t kLengths[] = {0,
                                 1,
                                 2,
                                 63,
                                 64,
                                 65,
                                 1000,
                                 kChunkElems - 1,
                                 kChunkElems,
                                 kChunkElems + 1,
                                 3 * kChunkElems + 17};

TEST(SparseKernelTest, NonzeroBitmapMatchesScalarAcrossDensities) {
  for (const std::int64_t n : kLengths) {
    for (const double density : {0.0, 0.01, 0.5, 1.0}) {
      const std::vector<float> src =
          make_values(n, density, static_cast<std::uint32_t>(7 * n + 1));
      const std::size_t words =
          static_cast<std::size_t>(bitmap_words(n));
      std::vector<std::uint64_t> expected(words, ~std::uint64_t{0});
      const std::int64_t expected_nnz =
          nonzero_bitmap_scalar(src.data(), n, expected.data());
      for (const auto threading :
           {convert::Threading::Parallel, convert::Threading::Serial}) {
        std::vector<std::uint64_t> got(words, ~std::uint64_t{0});
        const std::int64_t nnz =
            nonzero_bitmap(src.data(), n, got.data(), threading);
        EXPECT_EQ(nnz, expected_nnz) << "n=" << n << " d=" << density;
        EXPECT_EQ(got, expected) << "n=" << n << " d=" << density;
        EXPECT_EQ(popcount_words(got.data(),
                                 static_cast<std::int64_t>(words), threading),
                  expected_nnz);
      }
      // Tail bits of the last word must be cleared even though the buffers
      // started all-ones.
      if (n % 64 != 0 && !expected.empty()) {
        const std::uint64_t tail_mask =
            (std::uint64_t{1} << (n % 64)) - 1;
        EXPECT_EQ(expected.back() & ~tail_mask, 0U) << "n=" << n;
      }
    }
  }
}

TEST(SparseKernelTest, CompactAndScatterMatchScalarAndRoundTrip) {
  for (const std::int64_t n : kLengths) {
    for (const double density : {0.0, 0.01, 0.5, 1.0}) {
      const std::vector<float> src =
          make_values(n, density, static_cast<std::uint32_t>(11 * n + 3));
      const std::size_t words =
          static_cast<std::size_t>(bitmap_words(n));
      std::vector<std::uint64_t> bitmap(words, 0);
      const std::int64_t nnz =
          nonzero_bitmap_scalar(src.data(), n, bitmap.data());

      std::vector<float> expected_packed(
          static_cast<std::size_t>(nnz), -1.0F);
      compact_nonzeros_scalar(src.data(), bitmap.data(), n,
                              expected_packed.data());
      std::vector<float> expected_back(static_cast<std::size_t>(n), -1.0F);
      scatter_nonzeros_scalar(expected_packed.data(), bitmap.data(), n,
                              expected_back.data());
      // The scalar pair must already round-trip bit-exactly.
      ASSERT_EQ(std::memcmp(expected_back.data(), src.data(),
                            static_cast<std::size_t>(n) * sizeof(float)),
                0)
          << "n=" << n << " d=" << density;

      for (const auto threading :
           {convert::Threading::Parallel, convert::Threading::Serial}) {
        std::vector<float> packed(static_cast<std::size_t>(nnz), -2.0F);
        compact_nonzeros(src.data(), bitmap.data(), n, packed.data(),
                         threading);
        EXPECT_EQ(packed, expected_packed) << "n=" << n << " d=" << density;

        std::vector<float> back(static_cast<std::size_t>(n), -2.0F);
        scatter_nonzeros(packed.data(), bitmap.data(), n, back.data(),
                         threading);
        EXPECT_EQ(std::memcmp(back.data(), src.data(),
                              static_cast<std::size_t>(n) * sizeof(float)),
                  0)
            << "n=" << n << " d=" << density;
      }
    }
  }
}

TEST(SparseKernelTest, BitPatternContractSurvivesSpecialValues) {
  // -0.0f and NaN have nonzero bit patterns and must be treated (and
  // restored) as nonzeros, bit-exactly; +0.0f is the only zero.
  std::vector<float> src = {0.0F,
                            -0.0F,
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::denorm_min(),
                            0.0F,
                            1.0F};
  const auto n = static_cast<std::int64_t>(src.size());
  std::vector<std::uint64_t> bitmap(
      static_cast<std::size_t>(bitmap_words(n)), 0);
  const std::int64_t nnz = nonzero_bitmap(src.data(), n, bitmap.data());
  EXPECT_EQ(nnz, 6);  // all but the two +0.0f lanes
  EXPECT_EQ(bitmap[0], 0b10111110U);

  std::vector<float> packed(static_cast<std::size_t>(nnz));
  compact_nonzeros(src.data(), bitmap.data(), n, packed.data());
  std::vector<float> back(static_cast<std::size_t>(n), -1.0F);
  scatter_nonzeros(packed.data(), bitmap.data(), n, back.data());
  EXPECT_EQ(std::memcmp(back.data(), src.data(),
                        src.size() * sizeof(float)),
            0);
  // The restored zeros must be the exact +0.0f pattern.
  std::uint32_t bits = 0;
  std::memcpy(&bits, &back[0], sizeof(bits));
  EXPECT_EQ(bits, 0U);
}

TEST(SparseKernelTest, PopcountWordsMatchesScalarOnRandomWords) {
  std::mt19937_64 rng(17);
  for (const std::int64_t n_words : {0, 1, 7, 511, 512, 513, 2000}) {
    std::vector<std::uint64_t> words(static_cast<std::size_t>(n_words));
    for (auto& w : words) w = rng();
    const std::int64_t expected =
        popcount_words_scalar(words.data(), n_words);
    for (const auto threading :
         {convert::Threading::Parallel, convert::Threading::Serial}) {
      EXPECT_EQ(popcount_words(words.data(), n_words, threading), expected)
          << "n_words=" << n_words;
    }
  }
}

}  // namespace
}  // namespace edgetrain::sparse
