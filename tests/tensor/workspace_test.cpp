// Workspace arena semantics plus the end-to-end zero-allocation guarantee:
// after the first training step has grown the per-thread arenas to the
// step's high-water mark, later steps (and repeated kernel calls) must not
// touch the heap for scratch at all.
#include "tensor/workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "models/small_nets.hpp"
#include "nn/trainer.hpp"
#include "tensor/alloc.hpp"
#include "tensor/ops.hpp"

namespace edgetrain {
namespace {

TEST(Workspace, SpansAreAlignedAndDisjoint) {
  Workspace ws;
  const WorkspaceScope scope(ws);
  float* a = ws.alloc(3);
  float* b = ws.alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0U);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0U);
  // b starts past a's rounded-up span.
  EXPECT_GE(b, a + 3);
  a[0] = 1.0F;
  b[99] = 2.0F;
  EXPECT_EQ(a[0], 1.0F);
  EXPECT_EQ(b[99], 2.0F);
}

TEST(Workspace, RewindReusesCapacityWithoutNewBlocks) {
  Workspace ws;
  float* first = nullptr;
  {
    const WorkspaceScope scope(ws);
    first = ws.alloc(1024);
  }
  const std::size_t capacity = ws.capacity_bytes();
  for (int pass = 0; pass < 4; ++pass) {
    const WorkspaceScope scope(ws);
    float* again = ws.alloc(1024);
    EXPECT_EQ(again, first) << "pass " << pass;
    EXPECT_EQ(ws.capacity_bytes(), capacity) << "pass " << pass;
  }
}

TEST(Workspace, EarlierSpansSurviveGrowth) {
  // Growing the arena must not move or corrupt spans handed out earlier in
  // the same scope (blocks are chained, never reallocated in place).
  Workspace ws;
  const WorkspaceScope scope(ws);
  float* small = ws.alloc(16);
  for (std::int64_t i = 0; i < 16; ++i) small[i] = static_cast<float>(i);
  // Force growth well past the first block.
  float* big = ws.alloc(1 << 20);
  big[0] = -1.0F;
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(small[i], static_cast<float>(i));
  }
}

TEST(Workspace, FullRewindConsolidatesToSingleBlock) {
  // After unwinding to empty, a chained arena collapses into one block of
  // the combined capacity, so the next pass of the same shapes fits without
  // allocating.
  Workspace ws;
  {
    const WorkspaceScope scope(ws);
    (void)ws.alloc(100);
    (void)ws.alloc(1 << 18);  // forces a second block
  }
  const std::uint64_t allocs_before =
      MemoryTracker::instance().scratch_allocation_count();
  {
    const WorkspaceScope scope(ws);
    (void)ws.alloc(100);
    (void)ws.alloc(1 << 18);
  }
  EXPECT_EQ(MemoryTracker::instance().scratch_allocation_count(),
            allocs_before);
}

TEST(Workspace, ScratchBytesReportedToTracker) {
  const std::size_t before = MemoryTracker::instance().scratch_bytes();
  Workspace ws;
  {
    const WorkspaceScope scope(ws);
    (void)ws.alloc(1 << 16);
  }
  EXPECT_GE(MemoryTracker::instance().scratch_bytes(),
            before + (1U << 16) * sizeof(float));
  ws.release();
  EXPECT_EQ(MemoryTracker::instance().scratch_bytes(), before);
}

TEST(Workspace, RepeatedConvForwardAllocatesOnlyOnce) {
  std::mt19937 rng(17);
  Tensor x = Tensor::randn(Shape{2, 3, 16, 16}, rng);
  Tensor w = Tensor::randn(Shape{8, 3, 3, 3}, rng);
  Tensor bias = Tensor::zeros(Shape{8});
  const ops::ConvParams p{1, 1};
  Tensor warm = ops::conv2d_forward(x, w, bias, p);
  const std::uint64_t allocs =
      MemoryTracker::instance().scratch_allocation_count();
  for (int i = 0; i < 5; ++i) {
    Tensor y = ops::conv2d_forward(x, w, bias, p);
    EXPECT_LT(Tensor::max_abs_diff(y, warm), 1e-6F);
  }
  EXPECT_EQ(MemoryTracker::instance().scratch_allocation_count(), allocs);
}

// ---------------------------------------------------------------------------
// End-to-end: a real training loop reaches scratch steady state after the
// first step (the ISSUE's acceptance criterion).
// ---------------------------------------------------------------------------

TEST(WorkspaceTraining, SecondTrainingStepMakesZeroScratchAllocations) {
  std::mt19937 rng(42);
  nn::LayerChain chain = models::build_patch_cnn(12, 1, 4, 4, rng);
  nn::TrainerOptions options;
  options.lr = 0.05F;
  nn::Trainer trainer(chain, options);

  std::mt19937 data_rng(43);
  Tensor x = Tensor::randn(Shape{8, 1, 12, 12}, data_rng);
  std::vector<std::int32_t> labels = {0, 1, 2, 3, 0, 1, 2, 3};

  // Step 1 grows the per-thread arenas to the step's high-water mark.
  (void)trainer.step(x, labels);

  const std::uint64_t scratch_allocs =
      MemoryTracker::instance().scratch_allocation_count();
  for (int step = 0; step < 3; ++step) {
    (void)trainer.step(x, labels);
    EXPECT_EQ(MemoryTracker::instance().scratch_allocation_count(),
              scratch_allocs)
        << "scratch heap allocation during steady-state step " << step + 2;
  }
}

}  // namespace
}  // namespace edgetrain
