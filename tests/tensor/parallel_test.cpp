#include "tensor/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace edgetrain {
namespace {

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(1);
  EXPECT_GE(pool.size(), 1U);
}

TEST(ThreadPool, RepeatedDispatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(0, 100, [&](std::int64_t b, std::int64_t e) {
      std::int64_t local = 0;
      for (std::int64_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, NestedCallsRunSerially) {
  ThreadPool::set_global_threads(4);
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      // Nested parallel_for must not deadlock.
      parallel_for(0, 10, 1, [&](std::int64_t b2, std::int64_t e2) {
        total.fetch_add(e2 - b2);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelForHelper, SmallRangesRunInline) {
  std::vector<int> hits(10, 0);  // not atomic: inline means single thread
  parallel_for(0, 10, 100, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, GlobalPoolResize) {
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().size(), 2U);  // caller + 1 worker
  ThreadPool::set_global_threads(0);           // hardware default
  EXPECT_GE(ThreadPool::global().size(), 1U);
}

}  // namespace
}  // namespace edgetrain
