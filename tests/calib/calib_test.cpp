// Tests for the calibration subsystem (src/calib): device-model queries,
// the checksummed on-disk profile (round-trip plus exhaustive truncation
// and bit-flip fault injection -- a corrupt profile must never be trusted,
// it must trigger re-calibration), chain measurement, and the feeders that
// translate a ChainCosts into every planner's native inputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "calib/calibrate.hpp"
#include "calib/chain_costs.hpp"
#include "calib/device_model.hpp"
#include "core/dynprog.hpp"
#include "core/executor.hpp"
#include "core/planner.hpp"
#include "core/revolve.hpp"
#include "core/slot_store.hpp"
#include "models/resnet.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"

namespace edgetrain::calib {
namespace {

DeviceModel sample_model() {
  DeviceModel m;
  m.points = {ThreadPoint{1, 4.0, 2.0}, ThreadPoint{4, 10.0, 8.0}};
  m.memcpy_bytes_per_sec = 8e9;
  m.disk_write_bytes_per_sec = 50e6;
  m.disk_read_bytes_per_sec = 80e6;
  m.disk_write_latency_us = 900.0;
  m.disk_read_latency_us = 400.0;
  return m;
}

std::filesystem::path temp_dir(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("edgetrain_calib_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  ASSERT_EQ(std::fclose(file), 0);
}

// Synthetic per-step costs for feeder tests: microseconds {4, 2, 1} (the
// golden vector of the DP tests) with equal 1 KiB boundaries.
ChainCosts golden_costs() {
  ChainCosts costs;
  costs.forward_us = {4.0, 2.0, 1.0};
  costs.backward_us = {4.0, 2.0, 1.0};
  costs.boundary_bytes = {1024.0, 1024.0};
  costs.input_bytes = 1024.0;
  costs.output_bytes = 1024.0;
  return costs;
}

TEST(DeviceModel, ValidationRules) {
  EXPECT_FALSE(DeviceModel{}.valid());
  EXPECT_TRUE(sample_model().valid());

  DeviceModel descending = sample_model();
  std::swap(descending.points[0], descending.points[1]);
  EXPECT_FALSE(descending.valid());

  DeviceModel zero_rate = sample_model();
  zero_rate.points[0].conv_gflops = 0.0;
  EXPECT_FALSE(zero_rate.valid());

  DeviceModel no_disk = sample_model();
  no_disk.disk_read_bytes_per_sec = 0.0;
  EXPECT_FALSE(no_disk.valid());

  DeviceModel negative_latency = sample_model();
  negative_latency.disk_write_latency_us = -1.0;
  EXPECT_FALSE(negative_latency.valid());
}

TEST(DeviceModel, InterpolationClampsAtMeasuredEnds) {
  const DeviceModel m = sample_model();
  EXPECT_EQ(m.calibrated_threads(), 4);
  EXPECT_EQ(m.best_threads(), 4);
  // Below / above the measured range: clamp, never extrapolate.
  EXPECT_DOUBLE_EQ(m.gemm_gflops_at(0), 4.0);
  EXPECT_DOUBLE_EQ(m.gemm_gflops_at(1), 4.0);
  EXPECT_DOUBLE_EQ(m.gemm_gflops_at(4), 10.0);
  EXPECT_DOUBLE_EQ(m.gemm_gflops_at(64), 10.0);
  // Interior: linear between the bracketing points.
  EXPECT_DOUBLE_EQ(m.gemm_gflops_at(2), 4.0 + (10.0 - 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(m.conv_gflops_at(3), 2.0 + 2.0 * (8.0 - 2.0) / 3.0);
}

TEST(DeviceModel, PredictionsAreCalibratedMicroseconds) {
  const DeviceModel m = sample_model();
  // 8 GFLOP at 10 GFLOPS = 0.8 s.
  EXPECT_DOUBLE_EQ(m.gemm_us(8e9, 4), 0.8e6);
  EXPECT_DOUBLE_EQ(m.conv_us(2e9, 1), 1e6);
  EXPECT_DOUBLE_EQ(m.memcpy_us(8e9), 1e6);
  // Spill path: fixed latency + bytes / bandwidth.
  EXPECT_DOUBLE_EQ(m.disk_write_us(50e6), 900.0 + 1e6);
  EXPECT_DOUBLE_EQ(m.disk_read_us(0.0), 400.0);
}

TEST(DeviceModel, QuantRatesInterpolateAndFallBack) {
  DeviceModel m = sample_model();
  // Unmeasured quant rates (0.0, e.g. a profile captured by an older probe
  // grid) fall back to the fp32 GEMM rate rather than predicting nonsense.
  EXPECT_DOUBLE_EQ(m.bf16_gemm_us(8e9, 4), m.gemm_us(8e9, 4));
  EXPECT_DOUBLE_EQ(m.s8_gemm_us(8e9, 4), m.gemm_us(8e9, 4));

  m.points[0].bf16_gemm_gflops = 8.0;
  m.points[1].bf16_gemm_gflops = 20.0;
  m.points[0].s8_gemm_gops = 16.0;
  m.points[1].s8_gemm_gops = 40.0;
  ASSERT_TRUE(m.valid());
  EXPECT_DOUBLE_EQ(m.bf16_gemm_gflops_at(1), 8.0);
  EXPECT_DOUBLE_EQ(m.bf16_gemm_gflops_at(2), 8.0 + (20.0 - 8.0) / 3.0);
  EXPECT_DOUBLE_EQ(m.s8_gemm_gops_at(4), 40.0);
  EXPECT_DOUBLE_EQ(m.bf16_gemm_us(8e9, 4), 0.4e6);
  EXPECT_DOUBLE_EQ(m.s8_gemm_us(8e9, 4), 0.2e6);

  DeviceModel bad = m;
  bad.points[0].s8_gemm_gops = -1.0;
  EXPECT_FALSE(bad.valid());

  // The v2 profile round-trips the quant rates bit-exactly.
  EXPECT_EQ(decode_profile(encode_profile(m)), m);
}

TEST(ChainCosts, QuantizedPrecisionScalesComputeNotBoundaries) {
  DeviceModel m = sample_model();
  for (auto& p : m.points) {
    p.bf16_gemm_gflops = p.gemm_gflops * 1.5;
    p.s8_gemm_gops = p.gemm_gflops * 2.0;
  }
  const models::ResNetSpec spec =
      models::ResNetSpec::make(models::ResNetVariant::ResNet18);
  const ChainCosts fp32 = predict_resnet(spec, 32, 4, m, 4);
  const ChainCosts bf16 =
      predict_resnet(spec, 32, 4, m, 4, Precision::Bf16);
  const ChainCosts int8 =
      predict_resnet(spec, 32, 4, m, 4, Precision::Int8);
  ASSERT_TRUE(fp32.valid());
  ASSERT_TRUE(bf16.valid());
  ASSERT_TRUE(int8.valid());
  for (std::size_t i = 0; i < fp32.forward_us.size(); ++i) {
    // 1.5x / 2x measured rate => 1/1.5 / 0.5x predicted time.
    EXPECT_NEAR(bf16.forward_us[i], fp32.forward_us[i] / 1.5,
                1e-9 * fp32.forward_us[i] + 1e-12);
    EXPECT_NEAR(int8.forward_us[i], fp32.forward_us[i] * 0.5,
                1e-9 * fp32.forward_us[i] + 1e-12);
  }
  // Checkpointed boundaries stay master-precision fp32.
  EXPECT_EQ(int8.boundary_bytes, fp32.boundary_bytes);
  EXPECT_EQ(bf16.boundary_bytes, fp32.boundary_bytes);
}

TEST(Profile, EncodeDecodeRoundTrip) {
  const DeviceModel m = sample_model();
  const std::vector<std::uint8_t> bytes = encode_profile(m);
  EXPECT_EQ(decode_profile(bytes), m);
}

TEST(Profile, EveryTruncationIsDetected) {
  const std::vector<std::uint8_t> bytes = encode_profile(sample_model());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    EXPECT_THROW((void)decode_profile(prefix), ProfileError)
        << "truncation to " << len << " bytes accepted";
  }
}

TEST(Profile, EverySingleBitFlipIsDetected) {
  const DeviceModel m = sample_model();
  const std::vector<std::uint8_t> bytes = encode_profile(m);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[i] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_THROW((void)decode_profile(corrupt), ProfileError)
          << "bit " << bit << " of byte " << i << " flipped undetected";
    }
  }
}

TEST(Profile, SaveLoadRoundTrip) {
  const std::filesystem::path dir = temp_dir("roundtrip");
  const std::string path = (dir / "profile.etcp").string();
  const DeviceModel m = sample_model();
  save_profile(path, m);
  const std::optional<DeviceModel> loaded = load_profile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, m);
  // No stale temp file left behind by the atomic-rename protocol.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(load_profile((dir / "missing.etcp").string()).has_value());
  std::filesystem::remove_all(dir);
}

TEST(Profile, CorruptOrTruncatedFileIsRejected) {
  const std::filesystem::path dir = temp_dir("corrupt");
  const std::string path = (dir / "profile.etcp").string();
  const std::vector<std::uint8_t> bytes = encode_profile(sample_model());

  // Truncated at a few representative points (header, mid-payload, end-1).
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{8}, std::size_t{23}, bytes.size() / 2,
        bytes.size() - 1}) {
    write_bytes(path,
                std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    EXPECT_FALSE(load_profile(path).has_value()) << "len=" << len;
  }
  // One flipped payload byte.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() - 1] ^= 0x10;
  write_bytes(path, flipped);
  EXPECT_FALSE(load_profile(path).has_value());
  // Garbage that never was a profile.
  write_bytes(path, std::vector<std::uint8_t>(64, 0xAB));
  EXPECT_FALSE(load_profile(path).has_value());
  std::filesystem::remove_all(dir);
}

// The acceptance path: a corrupt cached profile must be silently
// re-measured and re-cached, never trusted and never fatal.
TEST(Profile, LoadOrCalibrateRecalibratesOnCorruption) {
  const std::filesystem::path dir = temp_dir("recalibrate");
  const std::string path = (dir / "profile.etcp").string();

  CalibrationOptions options = quick_calibration();
  options.min_sample_seconds = 5e-4;
  options.thread_counts = {1, 2};
  options.io_small_elems = 4096;
  options.io_large_elems = 32768;
  options.scratch_dir = (dir / "scratch").string();

  // Corrupt "cache": valid encoding with one flipped bit, on disk.
  std::vector<std::uint8_t> corrupt = encode_profile(sample_model());
  corrupt[corrupt.size() / 2] ^= 0x01;
  write_bytes(path, corrupt);

  bool was_cached = true;
  const DeviceModel fresh = load_or_calibrate(path, options, &was_cached);
  EXPECT_FALSE(was_cached);  // the corrupt profile must not be served
  EXPECT_TRUE(fresh.valid());

  // The re-measured model was re-cached and now round-trips.
  const std::optional<DeviceModel> reloaded = load_profile(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(*reloaded, fresh);

  bool second_cached = false;
  const DeviceModel cached = load_or_calibrate(path, options, &second_cached);
  EXPECT_TRUE(second_cached);
  EXPECT_EQ(cached, fresh);
  std::filesystem::remove_all(dir);
}

TEST(ChainCosts, AggregatesAndValidity) {
  const ChainCosts costs = golden_costs();
  EXPECT_TRUE(costs.valid());
  EXPECT_EQ(costs.num_steps(), 3);
  EXPECT_DOUBLE_EQ(costs.sweep_us(), 7.0);
  EXPECT_DOUBLE_EQ(costs.backward_total_us(), 7.0);
  EXPECT_DOUBLE_EQ(costs.ideal_step_us(), 14.0);
  EXPECT_DOUBLE_EQ(costs.mean_forward_us(), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(costs.backward_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(costs.mean_boundary_bytes(), 1024.0);
  EXPECT_DOUBLE_EQ(costs.max_boundary_bytes(), 1024.0);

  ChainCosts bad = golden_costs();
  bad.boundary_bytes.push_back(1.0);  // l-1 boundaries required
  EXPECT_FALSE(bad.valid());
  bad = golden_costs();
  bad.forward_us[1] = 0.0;
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE(ChainCosts{}.valid());
}

TEST(MeasureChain, ProducesConsistentCosts) {
  std::mt19937 rng(11);
  nn::LayerChain chain = models::build_conv_chain(3, 8, rng);
  const Tensor x = Tensor::randn(Shape{1, 8, 8, 8}, rng);

  MeasureOptions options;
  options.min_sample_seconds = 2e-4;
  options.repeats = 1;
  const ChainCosts costs = measure_chain(chain, x, options);

  ASSERT_TRUE(costs.valid());
  EXPECT_EQ(costs.num_steps(), chain.size());
  // Boundary bytes must match the chain's own shape inference exactly.
  const std::vector<Shape> shapes = chain.shapes(x.shape());
  for (int j = 1; j < chain.size(); ++j) {
    EXPECT_DOUBLE_EQ(
        costs.boundary_bytes[static_cast<std::size_t>(j - 1)],
        static_cast<double>(shapes[static_cast<std::size_t>(j)].numel()) *
            sizeof(float));
  }
  EXPECT_DOUBLE_EQ(costs.input_bytes,
                   static_cast<double>(x.shape().numel()) * sizeof(float));
  // The measurement pass leaves the chain clean: gradients zeroed.
  for (const nn::ParamRef& p : chain.params()) {
    EXPECT_EQ(Tensor::max_abs_diff(*p.grad, Tensor::zeros(p.grad->shape())),
              0.0F);
  }
}

TEST(Feeders, StateUnitsAndByteBudget) {
  ChainCosts costs = golden_costs();
  costs.forward_us = {1.0, 1.0, 1.0, 1.0};
  costs.backward_us = {1.0, 1.0, 1.0, 1.0};
  costs.boundary_bytes = {4096.0, 1024.0, 2048.0};
  EXPECT_EQ(state_units(costs), (std::vector<int>{4, 1, 2}));
  // Budget in bytes, floored to whole smallest-boundary units.
  EXPECT_EQ(budget_units_for_bytes(costs, 3000.0), 2);
  EXPECT_EQ(budget_units_for_bytes(costs, 1023.0), 0);
  EXPECT_EQ(budget_units_for_bytes(costs, -1.0), 0);
}

// The measured ChainSpec must switch the planner onto the heterogeneous
// DP: plan selection and achieved_rho in measured microseconds, matching
// the HeteroSolver's golden table for costs {4, 2, 1}.
TEST(Feeders, MeasuredChainSpecDrivesHeteroPlanner) {
  const ChainCosts costs = golden_costs();
  const core::ChainSpec spec = measured_chain_spec("golden", costs, 100.0);
  EXPECT_EQ(spec.depth, 3);
  EXPECT_DOUBLE_EQ(spec.backward_ratio, 1.0);
  ASSERT_EQ(spec.step_costs.size(), 3U);

  const core::MemoryPlanner planner(spec);
  // rho(0) = 24/14, rho(1) = 16/14, rho(2) = 1.
  const core::PlanPoint loose = planner.plan_for_rho(2.0);
  EXPECT_EQ(loose.free_slots, 0);
  EXPECT_DOUBLE_EQ(loose.forward_cost_us, 17.0);
  EXPECT_DOUBLE_EQ(loose.achieved_rho, 24.0 / 14.0);

  const core::PlanPoint mid = planner.plan_for_rho(1.2);
  EXPECT_EQ(mid.free_slots, 1);
  EXPECT_DOUBLE_EQ(mid.forward_cost_us, 9.0);
  EXPECT_DOUBLE_EQ(mid.achieved_rho, 16.0 / 14.0);

  const core::PlanPoint tight = planner.plan_for_rho(1.0);
  EXPECT_EQ(tight.free_slots, 2);
  EXPECT_DOUBLE_EQ(tight.forward_cost_us, 7.0);
  EXPECT_DOUBLE_EQ(tight.achieved_rho, 1.0);

  EXPECT_THROW((void)measured_chain_spec("bad", ChainCosts{}, 0.0),
               std::invalid_argument);
}

TEST(Feeders, PricedDiskOptionsUseMeasuredSpillPath) {
  const DeviceModel m = sample_model();
  const ChainCosts costs = golden_costs();
  core::disk::DiskRevolveOptions base;
  base.ram_slots = 3;
  base.spill_bytes_ratio = 0.5;
  const core::disk::DiskRevolveOptions priced =
      priced_disk_options(costs, m, base);
  // Plaintext spill time of the mean boundary over the mean forward step;
  // the DP applies spill_bytes_ratio itself.
  const double mean_fwd_us = 7.0 / 3.0;
  EXPECT_DOUBLE_EQ(priced.write_cost,
                   (900.0 + 1024.0 / 50e6 * 1e6) / mean_fwd_us);
  EXPECT_DOUBLE_EQ(priced.read_cost,
                   (400.0 + 1024.0 / 80e6 * 1e6) / mean_fwd_us);
  // Untouched pass-through of the caller's structural options.
  EXPECT_EQ(priced.ram_slots, 3);
  EXPECT_DOUBLE_EQ(priced.spill_bytes_ratio, 0.5);
}

// The static-ratio blind spot, closed: measured per-slot ratios read off a
// live store must thread verbatim into all three planner inputs -- the
// ChainSpec, the calibrated DiskRevolveOptions, and the interpreter's
// CostModel -- with out-of-range measurements clamped into (0, 1].
TEST(Feeders, MeasuredSlotRatiosThreadThroughEveryPlannerInput) {
  class StepRatioStore : public core::SlotStore {
   public:
    explicit StepRatioStore(int num_slots) : inner_(num_slots) {}
    void put(std::int32_t slot, const Tensor& value) override {
      inner_.put(slot, value);
    }
    [[nodiscard]] Tensor get(std::int32_t slot) override {
      return inner_.get(slot);
    }
    void drop(std::int32_t slot) override { inner_.drop(slot); }
    [[nodiscard]] std::size_t resident_bytes() const override {
      return inner_.resident_bytes();
    }
    [[nodiscard]] std::size_t external_bytes() const override { return 0; }
    [[nodiscard]] double measured_slot_ratio(
        std::int32_t slot) const override {
      // Slot 3 reports a bogus >1 "ratio" (e.g. codec overhead on a tiny
      // payload) that the feeder must clamp.
      return slot == 3 ? 7.5 : static_cast<double>(slot) / 10.0;
    }

   private:
    core::RamSlotStore inner_;
  };
  const StepRatioStore store(5);
  const std::vector<double> ratios = measured_slot_ratios(store, 1, 3);
  ASSERT_EQ(ratios.size(), 3U);
  EXPECT_DOUBLE_EQ(ratios[0], 0.1);
  EXPECT_DOUBLE_EQ(ratios[1], 0.2);
  EXPECT_DOUBLE_EQ(ratios[2], 1.0);  // clamped

  const ChainCosts costs = golden_costs();
  const core::ChainSpec spec =
      measured_chain_spec("golden", costs, 100.0, ratios, 0.5);
  EXPECT_EQ(spec.checkpoint_slot_ratios, ratios);
  EXPECT_DOUBLE_EQ(spec.checkpoint_bytes_ratio, 0.5);
  EXPECT_EQ(spec.step_costs, costs.forward_us);

  const DeviceModel m = sample_model();
  core::disk::DiskRevolveOptions base;
  base.ram_slots = 2;
  const core::disk::DiskRevolveOptions priced =
      priced_disk_options(costs, m, base, ratios);
  EXPECT_EQ(priced.spill_slot_ratios, ratios);
  // IO weights stay the plaintext spill times; the DP applies the
  // per-slot ratios itself.
  const double mean_fwd_us = 7.0 / 3.0;
  EXPECT_DOUBLE_EQ(priced.write_cost, m.disk_write_us(1024.0) / mean_fwd_us);
  EXPECT_DOUBLE_EQ(priced.read_cost, m.disk_read_us(1024.0) / mean_fwd_us);

  const analysis::CostModel cm = cost_model(costs, m, 2, ratios);
  EXPECT_EQ(cm.slot_bytes_ratios, ratios);
  EXPECT_EQ(cm.first_disk_slot, 2);
  EXPECT_EQ(cm.step_costs, costs.forward_us);
}

TEST(Feeders, CostModelPredictsScheduleMicroseconds) {
  const DeviceModel m = sample_model();
  const ChainCosts costs = golden_costs();
  const analysis::CostModel cm = cost_model(costs, m, 2);
  EXPECT_EQ(cm.step_costs, costs.forward_us);
  EXPECT_EQ(cm.first_disk_slot, 2);
  EXPECT_DOUBLE_EQ(cm.disk_write_cost, m.disk_write_us(1024.0));
  EXPECT_DOUBLE_EQ(cm.disk_read_cost, m.disk_read_us(1024.0));

  // Full storage: the interpreter charges the advances (span(0,2) = 6 us;
  // the per-backward re-materialisation saves are absorbed into Backward)
  // plus the full backward sweep.
  const core::hetero::HeteroSolver solver(costs.forward_us, 2);
  const analysis::Report report =
      analysis::interpret(solver.make_schedule(2), cost_model(costs, m));
  EXPECT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report.facts.forward_cost, solver.advance_cost(2));
  EXPECT_DOUBLE_EQ(report.facts.forward_cost, 6.0);
  EXPECT_DOUBLE_EQ(report.facts.backward_cost, 7.0);
  EXPECT_EQ(report.facts.absorbed_saves, 3);
  EXPECT_DOUBLE_EQ(report.facts.total_cost(), 13.0);
}

// The payoff property the tentpole rests on: under the measured cost
// model, the measured-cost schedule is never predicted costlier than the
// unit-cost Revolve schedule at the same slot budget (the hetero DP is
// optimal over all s-slot schedules; unit Revolve emits one of them).
TEST(Property, MeasuredScheduleNeverPredictedCostlier) {
  std::mt19937 rng(404);
  std::uniform_real_distribution<double> cost_dist(0.5, 50.0);
  for (int trial = 0; trial < 12; ++trial) {
    const int l = 4 + trial;
    std::vector<double> step_costs;
    step_costs.reserve(static_cast<std::size_t>(l));
    for (int i = 0; i < l; ++i) step_costs.push_back(cost_dist(rng));

    analysis::CostModel cm;
    cm.step_costs = step_costs;
    for (int s = 1; s <= 3; ++s) {
      const core::hetero::HeteroSolver solver(step_costs, s);
      const analysis::Report measured =
          analysis::interpret(solver.make_schedule(s), cm);
      const analysis::Report unit =
          analysis::interpret(core::revolve::make_schedule(l, s), cm);
      ASSERT_TRUE(measured.ok()) << "l=" << l << " s=" << s;
      ASSERT_TRUE(unit.ok()) << "l=" << l << " s=" << s;
      // The emitted schedule realises the DP's own advance-cost table.
      EXPECT_NEAR(measured.facts.forward_cost, solver.advance_cost(s),
                  1e-9 * solver.advance_cost(s) + 1e-12)
          << "l=" << l << " s=" << s;
      EXPECT_LE(measured.facts.total_cost(),
                unit.facts.total_cost() * (1.0 + 1e-9))
          << "l=" << l << " s=" << s;
    }
  }
}

// A measured-cost schedule must execute to the bit-identical gradients of
// the unit-cost schedule it replaces (same checkpointing semantics, only
// the split points move).
TEST(Executor, MeasuredScheduleGradsBitIdentical) {
  std::mt19937 rng(77);
  nn::LayerChain chain = models::build_pyramid_chain(2, 2, 8, rng);
  const Tensor x = Tensor::randn(Shape{1, 8, 16, 16}, rng);
  const int depth = chain.size();
  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };

  auto run_with = [&](const core::Schedule& schedule) {
    chain.zero_grad();
    chain.clear_saved();
    core::RamSlotStore store(schedule.num_slots());
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    (void)executor.run(runner, schedule, x, seed, store);
    std::vector<Tensor> grads;
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  // Steep synthetic imbalance so the hetero split points actually differ.
  std::vector<double> step_costs;
  for (int i = 0; i < depth; ++i) {
    step_costs.push_back(static_cast<double>(depth - i));
  }
  const core::hetero::HeteroSolver solver(step_costs, 1);
  const std::vector<Tensor> measured_grads =
      run_with(solver.make_schedule(1));
  const std::vector<Tensor> unit_grads =
      run_with(core::revolve::make_schedule(depth, 1));

  ASSERT_EQ(measured_grads.size(), unit_grads.size());
  for (std::size_t i = 0; i < unit_grads.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(measured_grads[i], unit_grads[i]), 0.0F)
        << "param " << i;
  }
}

}  // namespace
}  // namespace edgetrain::calib
