// Long-running calibration tests (label: slow). These run the real probes
// at realistic sample lengths: a full calibrate() of this machine, and the
// end-to-end measured-vs-unit planning comparison on the pyramid chain
// that bench_calib quantifies -- here asserted on predicted cost and
// gradient identity (wall-clock is the bench's job; CI machines are too
// noisy for a timing assertion in a correctness gate).
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "calib/calibrate.hpp"
#include "calib/chain_costs.hpp"
#include "core/dynprog.hpp"
#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "core/slot_store.hpp"
#include "models/resnet.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"

namespace edgetrain::calib {
namespace {

TEST(CalibrateSlow, FitsThisMachine) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "edgetrain_calib_slow";
  std::filesystem::remove_all(dir);

  CalibrationOptions options;
  options.min_sample_seconds = 0.01;  // bounded but realistic samples
  options.repeats = 2;
  options.scratch_dir = (dir / "scratch").string();
  const DeviceModel model = calibrate(options);

  ASSERT_TRUE(model.valid());
  // One point per requested thread count, ascending, ending at
  // hardware_concurrency (the default sweep's last entry).
  ASSERT_FALSE(model.points.empty());
  for (std::size_t i = 1; i < model.points.size(); ++i) {
    EXPECT_GT(model.points[i].threads, model.points[i - 1].threads);
  }
  EXPECT_GE(model.best_threads(), 1);
  EXPECT_GT(model.memcpy_bytes_per_sec, 0.0);
  EXPECT_GT(model.disk_write_bytes_per_sec, 0.0);

  // Cache round-trip through load_or_calibrate.
  const std::string path = (dir / "profile.etcp").string();
  save_profile(path, model);
  bool was_cached = false;
  const DeviceModel reloaded = load_or_calibrate(path, options, &was_cached);
  EXPECT_TRUE(was_cached);
  EXPECT_EQ(reloaded, model);
  std::filesystem::remove_all(dir);

  // The fitted model prices an analytic ResNet chain without building it.
  const ChainCosts predicted = predict_resnet(
      models::ResNetSpec::make(models::ResNetVariant::ResNet18), 64, 1, model,
      model.best_threads());
  EXPECT_TRUE(predicted.valid());
}

TEST(CalibrateSlow, MeasuredPlanBeatsUnitOnPyramid) {
  std::mt19937 rng(2026);
  nn::LayerChain chain = models::build_pyramid_chain(3, 3, 16, rng);
  const Tensor x = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  const int depth = chain.size();
  constexpr int kFreeSlots = 2;

  MeasureOptions options;
  options.min_sample_seconds = 0.002;
  options.repeats = 2;
  const ChainCosts costs = measure_chain(chain, x, options);
  ASSERT_TRUE(costs.valid());
  // The pyramid's early stage runs at full resolution: the measurement
  // must see the imbalance (first step well above the last).
  EXPECT_GT(costs.forward_us.front(), 2.0 * costs.forward_us.back());

  const core::hetero::HeteroSolver solver(costs.forward_us, kFreeSlots);
  const core::Schedule measured_schedule = solver.make_schedule(kFreeSlots);
  const core::Schedule unit_schedule =
      core::revolve::make_schedule(depth, kFreeSlots);

  analysis::CostModel cm;
  cm.step_costs = costs.forward_us;
  const analysis::Report measured = analysis::interpret(measured_schedule, cm);
  const analysis::Report unit = analysis::interpret(unit_schedule, cm);
  ASSERT_TRUE(measured.ok());
  ASSERT_TRUE(unit.ok());
  // Strict: on a 4x-per-stage pyramid the unit-cost splits are genuinely
  // wrong, not merely tied.
  EXPECT_LT(measured.facts.total_cost(), unit.facts.total_cost());

  // And the better-planned schedule computes the same gradients, bit for
  // bit.
  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };
  auto run_with = [&](const core::Schedule& schedule) {
    chain.zero_grad();
    chain.clear_saved();
    core::RamSlotStore store(schedule.num_slots());
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    core::ScheduleExecutor executor;
    (void)executor.run(runner, schedule, x, seed, store);
    std::vector<Tensor> grads;
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };
  const std::vector<Tensor> unit_grads = run_with(unit_schedule);
  const std::vector<Tensor> measured_grads = run_with(measured_schedule);
  ASSERT_EQ(unit_grads.size(), measured_grads.size());
  for (std::size_t i = 0; i < unit_grads.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(unit_grads[i], measured_grads[i]), 0.0F)
        << "param " << i;
  }
}

}  // namespace
}  // namespace edgetrain::calib
