// Tests for the schedule abstract interpreter: clean verdicts on every
// scheduler family (with each family's analytic bounds attached), and one
// targeted malformed schedule per invariant class.
#include "analysis/interp.hpp"

#include <gtest/gtest.h>

#include "core/disk_revolve.hpp"
#include "core/dynprog.hpp"
#include "core/revolve.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"

namespace edgetrain::analysis {
namespace {

using core::Action;
using core::ActionType;
using core::Schedule;

bool has_error(const Report& report, Check check) {
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::Error && f.check == check) return true;
  }
  return false;
}

bool has_warning(const Report& report, Check check) {
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::Warning && f.check == check) return true;
  }
  return false;
}

TEST(InterpRevolve, CleanUnderTightBounds) {
  for (int l = 1; l <= 12; ++l) {
    for (int s = 0; s <= l - 1 || s == 0; ++s) {
      const Schedule schedule = core::revolve::make_schedule(l, s);
      Bounds bounds;
      bounds.max_memory_units = s + 1;
      bounds.max_ram_slots = s + 1;
      bounds.max_total_cost = static_cast<double>(
          core::revolve::forward_cost(l, s) + l);
      const Report report = interpret(schedule, CostModel{}, bounds);
      ASSERT_TRUE(report.ok()) << "l=" << l << " s=" << s << "\n"
                               << report.summary();
      EXPECT_EQ(report.facts.backwards, l);
      // Revolve reverses strictly in order: every ForwardSave runs with the
      // gradient already waiting at its output, so all l saves are absorbed
      // into their Backward units (the paper's R(1, s) = 0 convention).
      EXPECT_EQ(report.facts.forward_saves, l);
      EXPECT_EQ(report.facts.absorbed_saves, l);
      if (l == 1) break;
    }
  }
}

TEST(InterpRevolve, PeakMemoryMatchesPlannerBound) {
  // The s + 1 bound is tight for the binomial schedules.
  const struct {
    int l, s;
  } cases[] = {{2, 1}, {8, 2}, {16, 3}, {32, 5}, {64, 7}};
  for (const auto& c : cases) {
    const Report report = interpret(core::revolve::make_schedule(c.l, c.s));
    EXPECT_EQ(report.facts.peak_memory_units, c.s + 1)
        << "l=" << c.l << " s=" << c.s;
  }
}

TEST(InterpSequential, PeakMemoryMatchesPaperFormula) {
  for (int l = 1; l <= 20; ++l) {
    for (int seg = 1; seg <= l; ++seg) {
      const Schedule schedule = core::seq::make_schedule(l, seg);
      Bounds bounds;
      bounds.max_memory_units =
          static_cast<int>(core::seq::memory_units(l, seg));
      bounds.max_ram_slots = seg;
      bounds.max_total_cost =
          static_cast<double>(core::seq::forward_cost(l, seg) + l);
      const Report report = interpret(schedule, CostModel{}, bounds);
      ASSERT_TRUE(report.ok()) << "l=" << l << " seg=" << seg << "\n"
                               << report.summary();
      EXPECT_EQ(report.facts.peak_memory_units,
                core::seq::memory_units(l, seg))
          << "l=" << l << " seg=" << seg;
    }
  }
}

TEST(InterpHetero, CleanUnderSolverBounds) {
  const std::vector<double> costs = {1.0, 4.0, 2.0, 8.0, 1.0, 2.0, 16.0};
  const int l = static_cast<int>(costs.size());
  const core::hetero::HeteroSolver solver(costs, l - 1);
  for (int s = 0; s <= l - 1; ++s) {
    CostModel cost;
    cost.step_costs = costs;
    Bounds bounds;
    bounds.max_memory_units = s + 1;
    bounds.max_ram_slots = s + 1;
    bounds.max_total_cost = solver.forward_cost(s) + solver.sweep_cost();
    const Report report = interpret(solver.make_schedule(s), cost, bounds);
    ASSERT_TRUE(report.ok()) << "s=" << s << "\n" << report.summary();
  }
}

TEST(InterpDisk, CleanAndIoCharged) {
  core::disk::DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 0.5;
  options.read_cost = 0.5;
  const int l = 24;
  const core::disk::DiskRevolveSolver solver(l, options);
  CostModel cost;
  cost.first_disk_slot = options.ram_slots + 1;
  cost.disk_write_cost = options.write_cost;
  cost.disk_read_cost = options.read_cost;
  Bounds bounds;
  bounds.max_memory_units = options.ram_slots + 1;
  bounds.max_ram_slots = options.ram_slots + 1;
  bounds.max_total_cost = solver.forward_cost() + l;
  const Report report = interpret(solver.make_schedule(), cost, bounds);
  ASSERT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.facts.peak_disk_slots_in_use, solver.peak_disk_slots());
  if (solver.peak_disk_slots() > 0) {
    EXPECT_GT(report.facts.io_cost, 0.0);
  }
  // Disk checkpoints must not count against the RAM activation bound.
  EXPECT_LE(report.facts.peak_ram_slots_in_use, options.ram_slots + 1);
}

// --- one malformed schedule per invariant class ---------------------------

Schedule minimal_clean(std::int32_t l) {
  // Full storage: store input, save every step, reverse in order.
  Schedule sch(l, 1);
  sch.store(0, 0);
  for (std::int32_t i = 0; i < l; ++i) sch.forward_save(i);
  for (std::int32_t i = l - 1; i >= 0; --i) sch.backward(i);
  sch.free(0);
  return sch;
}

TEST(InterpFindings, CleanBaseline) {
  const Report report = interpret(minimal_clean(3));
  EXPECT_TRUE(report.ok()) << report.summary();
  // Full storage never revisits the input checkpoint; the only finding is
  // the dead-store warning pointing that out.
  EXPECT_EQ(report.error_count(), 0u) << report.summary();
  ASSERT_EQ(report.findings.size(), 1u) << report.summary();
  EXPECT_EQ(report.findings[0].check, Check::DeadStore);
}

TEST(InterpFindings, StepRange) {
  Schedule sch(2, 1);
  sch.store(0, 0);
  sch.forward_save(0);
  sch.forward_save(1);
  sch.backward(2);  // out of range
  sch.backward(1);
  sch.backward(0);
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::StepRange));
}

TEST(InterpFindings, ForwardState) {
  Schedule sch(2, 1);
  sch.store(0, 0);
  sch.forward_save(1);  // holds state 0, forwards step 1
  sch.forward_save(0);
  sch.backward(1);
  sch.backward(0);
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::ForwardState));
}

TEST(InterpFindings, SaveAlreadyLive) {
  Schedule sch(1, 1);
  sch.store(0, 0);
  sch.forward_save(0);
  sch.restore(0, 0);
  sch.forward_save(0);  // intermediates already live
  sch.backward(0);
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::SaveAlreadyLive));
}

TEST(InterpFindings, BackwardOrderAndLiveness) {
  Schedule sch(2, 1);
  sch.store(0, 0);
  sch.forward_save(0);
  sch.forward(1);
  sch.backward(0);  // out of order (expected 1) ...
  sch.backward(1);  // ... and step 1 was never saved
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::BackwardOrder));
  EXPECT_TRUE(has_error(report, Check::BackwardLiveness));
}

TEST(InterpFindings, SlotRange) {
  Schedule sch(1, 1);
  sch.store(0, 5);  // slot out of range
  sch.forward_save(0);
  sch.backward(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::SlotRange));
}

TEST(InterpFindings, StoreState) {
  Schedule sch(2, 2);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(2, 1);  // holds state 1, claims state 2
  sch.forward_save(1);
  sch.backward(1);
  sch.restore(0, 0);
  sch.forward_save(0);
  sch.backward(0);
  sch.free(1);
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::StoreState));
}

TEST(InterpFindings, RestoreEmptyAndWrongState) {
  Schedule sch(2, 3);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(1, 1);
  sch.forward_save(1);
  sch.backward(1);
  sch.restore(0, 2);  // slot 2 is empty
  sch.restore(0, 1);  // slot 1 holds state 1, not 0
  sch.forward_save(0);
  sch.backward(0);
  sch.free(1);
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::RestoreEmpty));
  EXPECT_TRUE(has_error(report, Check::RestoreState));
}

TEST(InterpFindings, RestoreAdoptsClaimedStateWithoutCascade) {
  // A single wrong-state restore must produce exactly one error, not a
  // trail of ForwardState findings downstream.
  Schedule sch(2, 2);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(1, 1);
  sch.forward_save(1);
  sch.backward(1);
  sch.restore(0, 1);  // wrong: slot 1 holds state 1
  sch.forward_save(0);
  sch.backward(0);
  sch.free(1);
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_EQ(report.error_count(), 1u) << report.summary();
  EXPECT_TRUE(has_error(report, Check::RestoreState));
}

TEST(InterpFindings, FreeOrphan) {
  Schedule sch(2, 2);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(1, 1);
  sch.forward_save(1);
  sch.backward(1);
  sch.free(0);        // orphans state 0 ...
  sch.restore(0, 0);  // ... which this restore still needs
  sch.forward_save(0);
  sch.backward(0);
  sch.free(1);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::FreeOrphan));
  EXPECT_TRUE(has_error(report, Check::RestoreEmpty));
}

TEST(InterpFindings, Completion) {
  Schedule sch(2, 1);
  sch.store(0, 0);
  sch.forward_save(0);
  sch.forward_save(1);
  sch.backward(1);  // step 0 never reversed
  sch.free(0);
  const Report report = interpret(sch);
  EXPECT_TRUE(has_error(report, Check::Completion));
}

TEST(InterpFindings, MemoryBound) {
  Bounds bounds;
  bounds.max_memory_units = 2;  // full storage of 3 steps peaks at 3
  const Report report = interpret(minimal_clean(3), CostModel{}, bounds);
  EXPECT_TRUE(has_error(report, Check::MemoryBound));
  EXPECT_EQ(report.facts.peak_memory_units, 3);
}

TEST(InterpFindings, SlotBound) {
  Schedule sch = core::seq::make_schedule(9, 3);
  Bounds bounds;
  bounds.max_ram_slots = 2;  // three segment inputs are simultaneously held
  const Report report = interpret(sch, CostModel{}, bounds);
  EXPECT_TRUE(has_error(report, Check::SlotBound));
}

TEST(InterpFindings, WorkBound) {
  Bounds bounds;
  bounds.max_total_cost = 5.0;  // full storage of 3 steps costs 3 + 3 - 1
  Report report = interpret(minimal_clean(3), CostModel{}, bounds);
  EXPECT_FALSE(has_error(report, Check::WorkBound)) << report.summary();
  bounds.max_total_cost = 4.0;
  report = interpret(minimal_clean(3), CostModel{}, bounds);
  EXPECT_TRUE(has_error(report, Check::WorkBound));
}

TEST(InterpFindings, WarningsDoNotFail) {
  Schedule sch(1, 2);
  sch.store(0, 0);
  sch.store(0, 1);  // never restored: dead store
  sch.forward_save(0);
  sch.backward(0);
  sch.free(1);
  sch.free(0);
  sch.free(0);  // already empty: redundant free
  const Report report = interpret(sch);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(has_warning(report, Check::DeadStore));
  EXPECT_TRUE(has_warning(report, Check::RedundantFree));
}

TEST(InterpCost, PerSlotWeightedUnitsMatchHandComputedPeak) {
  // Three checkpoints resident at the peak (slots 0, 1, 2 plus one live
  // save): slot 0 is the chain input and is never charged, so with
  // per-slot ratios the weighted peak is exactly 1 + r1 + r2.
  Schedule sch(3, 3);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(1, 1);
  sch.forward(1);
  sch.store(2, 2);
  sch.forward_save(2);  // peak: slots {0,1,2} occupied + live save
  sch.backward(2);
  sch.free(2);
  sch.restore(1, 1);
  sch.forward_save(1);
  sch.backward(1);
  sch.free(1);
  sch.restore(0, 0);
  sch.forward_save(0);
  sch.backward(0);
  sch.free(0);
  ASSERT_EQ(sch.validate(), std::nullopt) << sch.to_string();

  CostModel cost;
  cost.slot_bytes_ratios = {1.0, 0.25, 0.5};
  Bounds bounds;
  bounds.max_weighted_units = 1.75;
  const Report report = interpret(sch, cost, bounds);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_DOUBLE_EQ(report.facts.peak_weighted_units, 1.75);

  // The bound is tight: shaving it must trip WeightedMemoryBound.
  Bounds tight;
  tight.max_weighted_units = 1.75 - 1e-3;
  EXPECT_TRUE(has_error(interpret(sch, cost, tight),
                        Check::WeightedMemoryBound));

  // An all-equal vector must reproduce the homogeneous scalar model
  // exactly -- same formula, different bookkeeping path.
  CostModel scalar;
  scalar.slot_bytes_ratio = 0.5;
  CostModel vec;
  vec.slot_bytes_ratios = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(interpret(sch, scalar, Bounds{}).facts.peak_weighted_units,
                   interpret(sch, vec, Bounds{}).facts.peak_weighted_units);

  // Slots past the vector's end fall back to the scalar ratio.
  CostModel mixed;
  mixed.slot_bytes_ratio = 0.5;
  mixed.slot_bytes_ratios = {1.0, 0.25};  // slot 2 falls back to 0.5
  EXPECT_DOUBLE_EQ(
      interpret(sch, mixed, Bounds{}).facts.peak_weighted_units, 1.75);
}

TEST(InterpCost, DiskIoAccounting) {
  // One disk write + one disk read, weighted by the cost model.
  Schedule sch(2, 3);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(1, 2);  // disk slot
  sch.forward_save(1);
  sch.backward(1);
  sch.restore(1, 2);
  sch.restore(0, 0);
  sch.forward_save(0);
  sch.backward(0);
  sch.free(2);
  sch.free(0);
  CostModel cost;
  cost.first_disk_slot = 2;
  cost.disk_write_cost = 3.0;
  cost.disk_read_cost = 5.0;
  const Report report = interpret(sch, cost);
  EXPECT_DOUBLE_EQ(report.facts.io_cost, 8.0);
  // The disk slot is excluded from RAM peaks.
  EXPECT_EQ(report.facts.peak_ram_slots_in_use, 1);
  EXPECT_EQ(report.facts.peak_disk_slots_in_use, 1);
}

// --- overlapped-IO pipeline model (CostModel::overlapped_io) --------------

TEST(InterpOverlap, TransfersHideInsideRecompute) {
  // Enough compute follows the Store (and precedes the Restore) that the
  // background worker finishes both transfers off the critical path: the
  // stall charge is exactly zero and total_cost() is pure compute, while
  // io_busy_cost still reports the work the worker did.
  Schedule sch(3, 2);
  sch.store(0, 0);
  sch.forward(0);
  sch.store(1, 1);  // disk
  sch.forward(1);
  sch.forward_save(2);
  sch.backward(2);
  sch.restore(1, 1);
  sch.forward_save(1);
  sch.backward(1);
  sch.restore(0, 0);
  sch.forward_save(0);
  sch.backward(0);
  sch.free(1);
  sch.free(0);
  CostModel cost;
  cost.first_disk_slot = 1;
  cost.disk_write_cost = 0.5;
  cost.disk_read_cost = 0.5;
  cost.overlapped_io = true;
  const Report report = interpret(sch, cost);
  EXPECT_EQ(report.error_count(), 0u) << report.summary();
  EXPECT_DOUBLE_EQ(report.facts.io_cost, 0.0);
  EXPECT_DOUBLE_EQ(report.facts.io_busy_cost, 1.0);
  EXPECT_DOUBLE_EQ(report.facts.total_cost(),
                   report.facts.forward_cost + report.facts.backward_cost);
  EXPECT_EQ(report.facts.peak_staged_slots, 1);

  // Prefetch disabled: the read cannot be issued until its Restore, so the
  // 0.5-unit read lands on the critical path.
  cost.read_staging_slots = 0;
  const Report no_prefetch = interpret(sch, cost);
  EXPECT_EQ(no_prefetch.error_count(), 0u) << no_prefetch.summary();
  EXPECT_DOUBLE_EQ(no_prefetch.facts.io_cost, 0.5);
}

TEST(InterpOverlap, StagingBackpressureAndFifoWaitsAreCharged) {
  // Two disk writes one compute-unit apart against a single write-staging
  // slot: the second Store stalls until the first write retires (3 units),
  // and the Restore then waits for the tail of the FIFO worker's queue
  // (7 more). Wall-clock arithmetic, fully pinned down.
  Schedule sch(2, 3);
  sch.store(0, 1);  // disk write, issued at t=0, completes at t=4
  sch.forward(0);   // t=1
  sch.store(1, 2);  // staging full -> stall to t=4; completes at t=8
  sch.forward_save(1);
  sch.backward(1);  // t=5
  sch.restore(0, 1);  // read runs t=8..12 -> stall to t=12
  sch.forward_save(0);
  sch.backward(0);  // t=13
  sch.free(2);
  sch.free(1);
  CostModel cost;
  cost.first_disk_slot = 1;
  cost.disk_write_cost = 4.0;
  cost.disk_read_cost = 4.0;
  cost.overlapped_io = true;
  const Report report = interpret(sch, cost);
  EXPECT_EQ(report.error_count(), 0u) << report.summary();
  EXPECT_DOUBLE_EQ(report.facts.io_cost, 10.0);
  EXPECT_DOUBLE_EQ(report.facts.io_busy_cost, 12.0);
  EXPECT_DOUBLE_EQ(report.facts.total_cost(), 13.0);
  EXPECT_EQ(report.facts.peak_staged_slots, 2);  // 1 write + 1 read buffer
}

TEST(InterpOverlap, BoundedBySerialModelAndByCompute) {
  // On real two-level schedules the pipeline model must honour its
  // soundness envelope: same transfer volume as the serial model, stalls
  // never exceeding worker busy time, wall-clock between pure compute and
  // the serial total, and staging within the configured budgets.
  for (int ram = 1; ram <= 3; ++ram) {
    for (const double io : {0.25, 1.0, 4.0}) {
      core::disk::DiskRevolveOptions options;
      options.ram_slots = ram;
      options.write_cost = io;
      options.read_cost = io;
      options.overlap_io = true;
      const core::disk::DiskRevolveSolver solver(24, options);
      const Schedule schedule = solver.make_schedule();
      CostModel serial;
      serial.first_disk_slot = ram + 1;
      serial.disk_write_cost = io;
      serial.disk_read_cost = io;
      CostModel overlapped = serial;
      overlapped.overlapped_io = true;
      const Report s = interpret(schedule, serial);
      const Report o = interpret(schedule, overlapped);
      ASSERT_EQ(o.error_count(), 0u) << o.summary();
      EXPECT_DOUBLE_EQ(o.facts.io_busy_cost, s.facts.io_cost)
          << "ram=" << ram << " io=" << io;
      EXPECT_LE(o.facts.io_cost, o.facts.io_busy_cost + 1e-9)
          << "ram=" << ram << " io=" << io;
      EXPECT_LE(o.facts.total_cost(), s.facts.total_cost() + 1e-9)
          << "ram=" << ram << " io=" << io;
      EXPECT_GE(o.facts.total_cost(),
                o.facts.forward_cost + o.facts.backward_cost - 1e-9)
          << "ram=" << ram << " io=" << io;
      EXPECT_LE(o.facts.peak_staged_slots,
                overlapped.write_staging_slots + overlapped.read_staging_slots)
          << "ram=" << ram << " io=" << io;
      EXPECT_LE(o.facts.peak_memory_units,
                s.facts.peak_memory_units + overlapped.write_staging_slots)
          << "ram=" << ram << " io=" << io;
    }
  }
}

}  // namespace
}  // namespace edgetrain::analysis
