// Tests for the sweep driver and the fault injector: the quick grids are
// interpreter-clean across all four scheduler families, and every
// corruption kind is both applicable and detected (the gate has teeth).
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "analysis/interp.hpp"
#include "analysis/report.hpp"

namespace edgetrain::analysis {
namespace {

TEST(Sweep, QuickGridsAreCleanAndCoverEveryFamily) {
  const SweepConfig config = SweepConfig::quick();
  std::map<std::string, std::int64_t> per_family;
  std::int64_t failures = 0;
  std::string first_failure;
  const std::int64_t cases = run_sweep(config, [&](const SweepCase& c) {
    ++per_family[c.family];
    const Report report = interpret(c.schedule, c.cost, c.bounds);
    if (!report.ok()) {
      ++failures;
      if (first_failure.empty()) {
        first_failure = c.family + " [" + c.name + "]\n" + report.summary();
      }
    }
  });
  EXPECT_EQ(failures, 0) << first_failure;
  EXPECT_GE(cases, 300);
  EXPECT_GT(per_family["revolve"], 0);
  EXPECT_GT(per_family["sequential"], 0);
  EXPECT_GT(per_family["hetero"], 0);
  EXPECT_GT(per_family["disk"], 0);
}

TEST(Sweep, FullConfigMeetsTheThousandScheduleFloor) {
  // Count without interpreting (generation alone is cheap enough): the CI
  // gate's acceptance criterion is >= 1000 schedules per run.
  std::int64_t cases = 0;
  SweepConfig config;
  // Trim only the most expensive grid dimension (large-l tables) to keep
  // this unit test fast; the dense grids dominate the count.
  config.revolve_large_l = {128};
  config.seq_large_l = {128};
  run_sweep(config, [&](const SweepCase&) { ++cases; });
  EXPECT_GE(cases, 1000);
}

TEST(Sweep, EveryCorruptionKindIsDetectedOnQuickGrids) {
  const SweepConfig config = SweepConfig::quick();
  SweepReport report;
  run_sweep(config, [&](const SweepCase& c) {
    for (const Corruption corruption : kAllCorruptions) {
      const auto corrupted = corrupt(c, corruption);
      if (!corrupted) continue;
      report.add_injection(c, corruption,
                           interpret(*corrupted, c.cost, c.bounds));
    }
  });
  EXPECT_GT(report.injections_applied(), 0);
  EXPECT_TRUE(report.injections_all_detected())
      << report.injections_detected() << "/" << report.injections_applied()
      << " detected";
  // Every corruption kind must actually occur in the pool.
  std::set<std::string> applied;
  for (const InjectionRecord& r : report.injections()) {
    applied.insert(r.corruption);
  }
  for (const Corruption c : kAllCorruptions) {
    EXPECT_TRUE(applied.count(to_string(c)) == 1)
        << "corruption " << to_string(c) << " never applied";
  }
}

TEST(Sweep, CorruptionsFireTheirTargetedChecks) {
  // One representative case per family with every action pattern present.
  std::map<Corruption, Check> expected = {
      {Corruption::BackwardOutOfOrder, Check::BackwardOrder},
      {Corruption::DropForwardSave, Check::BackwardLiveness},
      {Corruption::RestoreWrongState, Check::RestoreState},
      {Corruption::EarlyFree, Check::FreeOrphan},
      {Corruption::ExtraStoreOverBudget, Check::MemoryBound},
      {Corruption::InflateWork, Check::WorkBound},
  };
  std::vector<SweepCase> pool;
  SweepConfig config = SweepConfig::quick();
  run_sweep(config, [&](const SweepCase& c) {
    if (c.family == "revolve" && c.schedule.num_steps() == 12) {
      pool.push_back(c);
    }
  });
  ASSERT_FALSE(pool.empty());
  for (const auto& [corruption, check] : expected) {
    bool fired = false;
    bool applied = false;
    for (const SweepCase& c : pool) {
      const auto corrupted = corrupt(c, corruption);
      if (!corrupted) continue;
      applied = true;
      const Report verdict = interpret(*corrupted, c.cost, c.bounds);
      for (const Finding& f : verdict.findings) {
        if (f.severity == Severity::Error && f.check == check) fired = true;
      }
    }
    EXPECT_TRUE(applied) << to_string(corruption) << " never applied";
    EXPECT_TRUE(fired) << to_string(corruption) << " did not fire "
                       << to_string(check);
  }
}

TEST(Sweep, ReportJsonCarriesVerdicts) {
  SweepConfig config = SweepConfig::quick();
  SweepReport report;
  std::int64_t seen = 0;
  run_sweep(config, [&](const SweepCase& c) {
    if (seen++ > 20) return;
    report.add(c, interpret(c.schedule, c.cost, c.bounds));
    const auto corrupted = corrupt(c, Corruption::BackwardOutOfOrder);
    if (corrupted) {
      report.add_injection(c, Corruption::BackwardOutOfOrder,
                           interpret(*corrupted, c.cost, c.bounds));
    }
  });
  EXPECT_TRUE(report.ok());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"total_cases\""), std::string::npos);
  EXPECT_NE(json.find("\"families\""), std::string::npos);
  EXPECT_NE(json.find("\"revolve\""), std::string::npos);
  EXPECT_NE(json.find("\"injections\""), std::string::npos);
  EXPECT_NE(json.find("\"detected\":true"), std::string::npos);

  // A failing case lands in the failures array with its findings.
  SweepReport failing;
  run_sweep(SweepConfig::quick(), [&](const SweepCase& c) {
    // Need l >= 2 so the retargeted Backward stays in step range and the
    // backward-order check (not step-range) is what fires.
    if (failing.total_cases() > 0 || c.schedule.num_steps() < 2) return;
    const auto corrupted = corrupt(c, Corruption::BackwardOutOfOrder);
    if (!corrupted) return;
    failing.add(c, interpret(*corrupted, c.cost, c.bounds));
  });
  ASSERT_EQ(failing.total_cases(), 1);
  EXPECT_EQ(failing.failed_cases(), 1);
  EXPECT_NE(failing.to_json().find("backward-order"), std::string::npos);
}

}  // namespace
}  // namespace edgetrain::analysis
