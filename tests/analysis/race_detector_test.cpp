// Self-test corpus for the lockset/happens-before race detector.
//
// Two families of fixtures, per the toolkit's contract:
//   * seeded racy programs MUST be flagged -- every fixture here drives the
//     detector hooks the way a buggy program would, and asserts a report.
//     Detection is metadata-based (locksets + vector clocks), so a racy
//     fixture is flagged even when the test runs its threads strictly one
//     after the other: no interleaving luck required, 100% deterministic.
//   * clean programs MUST NOT be flagged -- common-lock, fork/join, and
//     release/acquire-handoff fixtures assert zero reports, and a workload
//     over the real instrumented subsystems (AsyncDiskSlotStore,
//     FleetServer, ThreadPool) asserts the default suite stays at zero.
//
// The detector runtime is always compiled (this file calls the hooks
// directly); only the hooks embedded in production code are gated behind
// EDGETRAIN_GUARDS.
#include "analysis/race/race.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/async_slot_store.hpp"
#include "fleet/server.hpp"
#include "tensor/parallel.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::analysis::race {
namespace {

/// Quiet fixture setup: racy fixtures are SUPPOSED to report, so the
/// stderr echo would just spam the test log.
class RaceDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_report_to_stderr(false);
    reset();
  }
  void TearDown() override {
    reset();
    set_report_to_stderr(true);
  }
};

int shared_counter = 0;  // the fixtures' racy cell (address-stable)
int other_cell = 0;

void access_counter(bool is_write, int line) {
  on_access(&shared_counter, is_write, "racy_fixture.cpp", line, "counter");
}

TEST_F(RaceDetectorTest, UnlockedWritesFromTwoThreadsAreFlagged) {
  // Thread 1 finishes before thread 2 even starts -- but no fork/join edge
  // was *reported*, so the metadata shows two unordered unlocked writes.
  std::thread t1([] { access_counter(/*is_write=*/true, 10); });
  t1.join();
  std::thread t2([] { access_counter(/*is_write=*/true, 20); });
  t2.join();
  ASSERT_EQ(report_count(), 1U);
  const Report report = reports().front();
  EXPECT_EQ(report.what, "counter");
  EXPECT_NE(report.site_a.find("racy_fixture.cpp:10"), std::string::npos);
  EXPECT_NE(report.site_b.find("racy_fixture.cpp:20"), std::string::npos);
}

TEST_F(RaceDetectorTest, WriteReadUnderDistinctLocksIsFlagged) {
  int lock_a = 0;
  int lock_b = 0;
  std::thread t1([&] {
    on_acquire(&lock_a);
    access_counter(/*is_write=*/true, 30);
    on_release(&lock_a);
  });
  t1.join();
  std::thread t2([&] {
    on_acquire(&lock_b);
    access_counter(/*is_write=*/false, 40);
    on_release(&lock_b);
  });
  t2.join();
  // Eraser: the locksets {lock_a} and {lock_b} are disjoint, and the two
  // mutexes never synchronised with each other, so no HB edge rescues it.
  ASSERT_EQ(report_count(), 1U);
  EXPECT_NE(reports().front().to_string().find("(write)"), std::string::npos);
  on_mutex_destroy(&lock_a);
  on_mutex_destroy(&lock_b);
}

TEST_F(RaceDetectorTest, ReadsAloneAreNeverARace) {
  std::thread t1([] { access_counter(/*is_write=*/false, 50); });
  t1.join();
  std::thread t2([] { access_counter(/*is_write=*/false, 60); });
  t2.join();
  EXPECT_EQ(report_count(), 0U);
}

TEST_F(RaceDetectorTest, CommonLockIsClean) {
  int lock = 0;
  std::thread t1([&] {
    on_acquire(&lock);
    access_counter(/*is_write=*/true, 70);
    on_release(&lock);
  });
  t1.join();
  std::thread t2([&] {
    on_acquire(&lock);
    access_counter(/*is_write=*/true, 80);
    on_release(&lock);
  });
  t2.join();
  EXPECT_EQ(report_count(), 0U);
  on_mutex_destroy(&lock);
}

TEST_F(RaceDetectorTest, ForkJoinEdgesOrderUnlockedAccesses) {
  access_counter(/*is_write=*/true, 90);  // parent, before the fork
  const ForkToken token = fork();
  ForkToken end;
  std::thread child([&] {
    task_begin(token);
    access_counter(/*is_write=*/true, 100);  // child: ordered after parent
    end = task_end();
  });
  child.join();
  join(end);
  access_counter(/*is_write=*/true, 110);  // parent again, after the join
  EXPECT_EQ(report_count(), 0U);
}

TEST_F(RaceDetectorTest, ReleaseAcquireHandoffWithoutACommonLockIsClean) {
  int sync_flag = 0;
  std::thread producer([&] {
    access_counter(/*is_write=*/true, 120);
    on_sync_release(&sync_flag);  // e.g. a store with memory_order_release
  });
  producer.join();
  std::thread consumer([&] {
    on_sync_acquire(&sync_flag);  // the acquire load that observed it
    access_counter(/*is_write=*/false, 130);
  });
  consumer.join();
  // Pure Eraser would flag this (no common lock); the vector-clock
  // refinement sees the release->acquire edge and stays silent.
  EXPECT_EQ(report_count(), 0U);
}

TEST_F(RaceDetectorTest, MissingTheForkEdgeIsFlagged) {
  // Control fixture for ForkJoinEdgesOrderUnlockedAccesses: identical
  // access pattern, but nobody reports the fork -- must be flagged.
  on_access(&other_cell, /*is_write=*/true, "racy_fixture.cpp", 140, "cell");
  std::thread child([] {
    on_access(&other_cell, /*is_write=*/true, "racy_fixture.cpp", 150, "cell");
  });
  child.join();
  ASSERT_EQ(report_count(), 1U);
}

TEST_F(RaceDetectorTest, ReportsAreDeterministicAcrossRuns) {
  std::vector<std::string> first_run;
  std::vector<std::string> second_run;
  for (int run = 0; run < 2; ++run) {
    reset();
    int lock_a = 0;
    int lock_b = 0;
    std::thread t1([&] {
      on_acquire(&lock_a);
      access_counter(/*is_write=*/true, 160);
      on_release(&lock_a);
    });
    t1.join();
    std::thread t2([&] {
      on_acquire(&lock_b);
      access_counter(/*is_write=*/true, 170);
      on_release(&lock_b);
    });
    t2.join();
    std::vector<std::string>& out = run == 0 ? first_run : second_run;
    for (const Report& report : reports()) out.push_back(report.to_string());
    on_mutex_destroy(&lock_a);
    on_mutex_destroy(&lock_b);
  }
  ASSERT_EQ(first_run.size(), 1U);
  EXPECT_EQ(first_run, second_run);
}

TEST_F(RaceDetectorTest, DuplicateRacePairsAreReportedOnce) {
  for (int i = 0; i < 5; ++i) {
    std::thread t([] { access_counter(/*is_write=*/true, 180); });
    t.join();
  }
  // Five unordered writers -> many racing pairs, but all with the same
  // (what, site_a, site_b) key; the report list stays deduplicated.
  EXPECT_EQ(report_count(), 1U);
}

// ---------------------------------------------------------------------------
// Clean-run assertion over the real instrumented subsystems. Without
// EDGETRAIN_GUARDS the production hooks compile to nothing and this is a
// plain stress test; with guards it proves the detector finds nothing to
// say about the default suite's concurrency.
// ---------------------------------------------------------------------------

std::string test_dir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/race_clean_" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

TEST_F(RaceDetectorTest, CleanRunAsyncSlotStoreProducesZeroReports) {
  std::mt19937 rng(21);
  {
    core::AsyncDiskSlotStore store(6, /*first_disk_slot=*/3,
                                   test_dir("store"));
    std::atomic<bool> done{false};
    // Poller thread: the access pattern that motivated guarding the RAM
    // tier with mu_ in the first place.
    std::thread poller([&] {
      while (!done.load(std::memory_order_acquire)) {
        (void)store.resident_bytes();
        std::this_thread::yield();
      }
    });
    for (int round = 0; round < 50; ++round) {
      const std::int32_t ram_slot = round % 3;
      const std::int32_t disk_slot = 3 + round % 3;
      Tensor value = Tensor::randn(Shape{16}, rng);
      store.put(ram_slot, value);
      store.put(disk_slot, value);
      EXPECT_EQ(Tensor::max_abs_diff(store.get(ram_slot), value), 0.0F);
      EXPECT_EQ(Tensor::max_abs_diff(store.get(disk_slot), value), 0.0F);
      if (round % 7 == 0) store.drop(ram_slot);
    }
    store.flush();
    done.store(true, std::memory_order_release);
    poller.join();
  }
  EXPECT_EQ(report_count(), 0U);
}

TEST_F(RaceDetectorTest, CleanRunFleetServerProducesZeroReports) {
  fleet::ServerConfig config;
  config.shards = 4;
  config.merge_threads = 2;
  {
    fleet::FleetServer server(config);
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&server, p] {
        for (std::uint64_t seq = 1; seq <= 40; ++seq) {
          fleet::StudentDelta delta;
          delta.node = static_cast<std::uint32_t>(p);
          delta.seq = seq;
          delta.samples = 1;
          server.ingest(delta);
        }
      });
    }
    for (std::thread& t : producers) t.join();
    server.flush();
    EXPECT_EQ(server.aggregate().deltas, 120U);
    server.stop();
  }
  EXPECT_EQ(report_count(), 0U);
}

TEST_F(RaceDetectorTest, CleanRunParallelForProducesZeroReports) {
  ThreadPool pool(4);
  std::vector<int> data(1024, 0);
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(0, static_cast<std::int64_t>(data.size()),
                      [&](std::int64_t begin, std::int64_t end) {
                        for (std::int64_t i = begin; i < end; ++i) {
                          data[static_cast<std::size_t>(i)] += 1;
                        }
                      });
  }
  for (const int v : data) EXPECT_EQ(v, 20);
  EXPECT_EQ(report_count(), 0U);
}

}  // namespace
}  // namespace edgetrain::analysis::race
