// Seeded preemption-fuzz harness (PCT-style schedule fuzzing).
//
// Two halves:
//   * reproducibility -- the injector's decision function is pure in
//     (seed, site, per-thread ordinal), so the decision stream is
//     bit-reproducible per seed. Asserted directly on decision_hash and on
//     the order-independent XOR fingerprint of full multi-threaded runs.
//   * adversarial workloads -- a fixed seed set drives AsyncDiskSlotStore
//     and FleetServer through perturbed interleavings (every annotated
//     Mutex/CondVar operation is a potential yield/sleep point when built
//     with EDGETRAIN_GUARDS or EDGETRAIN_PREEMPT) while the tests hold the
//     subsystems to their exact invariants: stored tensors round-trip
//     bit-identically, the fleet aggregate equals the serial fold, and the
//     race detector stays silent. Under TSan (tsan CI job runs this binary
//     with -DEDGETRAIN_PREEMPT=ON) the displaced schedules also widen the
//     interleaving space TSan gets to certify.
#include "analysis/race/preempt.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "analysis/race/race.hpp"
#include "core/async_slot_store.hpp"
#include "fleet/server.hpp"
#include "tensor/tensor.hpp"

namespace edgetrain::analysis::preempt {
namespace {

constexpr std::uint64_t kSeedSet[] = {1, 2, 3, 5, 8};

/// Every test restores the disabled state so ordinary suites never see
/// injected preemptions.
class PreemptHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_seed(0);
    reset_stats();
    race::reset();
  }
  void TearDown() override { set_seed(0); }
};

TEST_F(PreemptHarnessTest, DecisionHashIsBitReproducible) {
  for (const std::uint64_t seed : kSeedSet) {
    for (unsigned site = 0; site < 5; ++site) {
      for (std::uint64_t ordinal = 0; ordinal < 256; ++ordinal) {
        const std::uint64_t a = decision_hash(seed, site, ordinal);
        const std::uint64_t b = decision_hash(seed, site, ordinal);
        EXPECT_EQ(a, b);
        EXPECT_EQ(decides_to_yield(seed, site, ordinal), (a & 7ULL) == 0);
      }
    }
  }
}

TEST_F(PreemptHarnessTest, DistinctSeedsExploreDistinctSchedules) {
  // Not a tautology: a buggy mix that ignored the seed would collapse all
  // seeds onto one schedule and the fuzzer would only ever test one
  // interleaving neighbourhood.
  std::vector<std::uint64_t> streams;
  for (const std::uint64_t seed : kSeedSet) {
    std::uint64_t fold = 0;
    for (std::uint64_t ordinal = 0; ordinal < 64; ++ordinal) {
      fold ^= decision_hash(seed, /*site=*/0, ordinal);
    }
    streams.push_back(fold);
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      EXPECT_NE(streams[i], streams[j]);
    }
  }
}

TEST_F(PreemptHarnessTest, YieldRateIsRoughlyOneInEight) {
  std::uint64_t yields = 0;
  constexpr std::uint64_t kTrials = 8000;
  for (std::uint64_t ordinal = 0; ordinal < kTrials; ++ordinal) {
    if (decides_to_yield(42, /*site=*/1, ordinal)) ++yields;
  }
  EXPECT_GT(yields, kTrials / 8 - kTrials / 32);
  EXPECT_LT(yields, kTrials / 8 + kTrials / 32);
}

TEST_F(PreemptHarnessTest, MultiThreadedFingerprintIsReproduciblePerSeed) {
  // Fresh threads each run: per-thread ordinals start at zero, so the same
  // seed must reproduce the same decision stream no matter how the OS
  // interleaves the threads (the fingerprint folds order-independently).
  const auto run_workload = [](std::uint64_t seed) {
    set_seed(seed);
    reset_stats();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        for (unsigned i = 0; i < 200; ++i) point(i % 5);
      });
    }
    for (std::thread& t : threads) t.join();
    set_seed(0);
    return std::pair<std::uint64_t, std::uint64_t>{fingerprint(), yields()};
  };
  for (const std::uint64_t seed : kSeedSet) {
    const auto first = run_workload(seed);
    const auto second = run_workload(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_EQ(decisions(), 4U * 200U);
    EXPECT_GT(first.second, 0U) << "seed " << seed << " never yielded";
  }
}

TEST_F(PreemptHarnessTest, ZeroSeedDisablesInjectionEntirely) {
  set_seed(0);
  reset_stats();
  for (unsigned i = 0; i < 100; ++i) point(i % 5);
  EXPECT_EQ(decisions(), 0U);
  EXPECT_EQ(yields(), 0U);
  EXPECT_EQ(fingerprint(), 0U);
}

// ---------------------------------------------------------------------------
// Adversarial workloads under the seed set.
// ---------------------------------------------------------------------------

std::string test_dir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/preempt_" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

TEST_F(PreemptHarnessTest, AsyncSlotStoreSurvivesPerturbedSchedules) {
  std::mt19937 rng(33);
  const Tensor reference = Tensor::randn(Shape{64}, rng);
  for (const std::uint64_t seed : kSeedSet) {
    set_seed(seed);
    {
      core::AsyncDiskSlotStore store(4, /*first_disk_slot=*/2,
                                     test_dir("store_" + std::to_string(seed)));
      std::atomic<bool> done{false};
      std::thread poller([&] {
        while (!done.load(std::memory_order_acquire)) {
          (void)store.resident_bytes();
          (void)store.write_behind_hits();
        }
      });
      for (int round = 0; round < 30; ++round) {
        store.put(0, reference);
        store.put(2 + round % 2, reference);
        EXPECT_EQ(Tensor::max_abs_diff(store.get(0), reference), 0.0F);
        EXPECT_EQ(Tensor::max_abs_diff(store.get(2 + round % 2), reference),
                  0.0F);
        if (round % 5 == 0) {
          store.drop(0);
          store.drop(2 + round % 2);
        }
      }
      store.flush();
      done.store(true, std::memory_order_release);
      poller.join();
    }
    set_seed(0);
  }
  EXPECT_EQ(race::report_count(), 0U);
}

TEST_F(PreemptHarnessTest, FleetServerStaysExactUnderPerturbedSchedules) {
  for (const std::uint64_t seed : kSeedSet) {
    set_seed(seed);
    fleet::ServerConfig config;
    config.shards = 4;
    config.merge_threads = 2;
    config.queue_capacity = 16;  // small: force back-pressure interleavings
    {
      fleet::FleetServer server(config);
      constexpr int kProducers = 3;
      constexpr std::uint64_t kSeqs = 30;
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&server, p] {
          for (std::uint64_t seq = 1; seq <= kSeqs; ++seq) {
            fleet::StudentDelta delta;
            delta.node = static_cast<std::uint32_t>(p);
            delta.seq = seq;
            delta.samples = 2;
            delta.loss_milli = static_cast<std::int32_t>(seq);
            server.ingest(delta);
          }
        });
      }
      for (std::thread& t : producers) t.join();
      server.flush();
      const fleet::FleetAggregate agg = server.aggregate();
      EXPECT_EQ(agg.deltas, kProducers * kSeqs) << "seed " << seed;
      EXPECT_EQ(agg.samples, kProducers * kSeqs * 2) << "seed " << seed;
      server.stop();
    }
    set_seed(0);
  }
  EXPECT_EQ(race::report_count(), 0U);
}

}  // namespace
}  // namespace edgetrain::analysis::preempt
