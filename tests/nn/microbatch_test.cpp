#include "nn/microbatch.hpp"

#include <gtest/gtest.h>

#include <random>

#include "models/small_nets.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::nn {
namespace {

/// BN-free CNN so micro-batching is exactly equivalent to full batch.
LayerChain bn_free_net(std::uint32_t seed) {
  std::mt19937 rng(seed);
  LayerChain chain;
  chain.push(std::make_unique<Conv2d>(1, 4, 3, 1, 1, true, rng));
  chain.push(std::make_unique<ReLU>());
  chain.push(std::make_unique<Conv2d>(4, 4, 3, 1, 1, true, rng));
  chain.push(std::make_unique<ReLU>());
  chain.push(std::make_unique<GlobalAvgPool>());
  chain.push(std::make_unique<Linear>(4, 3, true, rng));
  return chain;
}

struct Batch {
  Tensor x;
  std::vector<std::int32_t> labels;
};

Batch make_batch(std::int64_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Batch batch;
  batch.x = Tensor::randn(Shape{n, 1, 10, 10}, rng);
  std::uniform_int_distribution<std::int32_t> dist(0, 2);
  for (std::int64_t i = 0; i < n; ++i) batch.labels.push_back(dist(rng));
  return batch;
}

std::vector<Tensor> grads_after_full_batch(LayerChain& chain,
                                           const Batch& batch) {
  chain.zero_grad();
  RunContext ctx;
  Tensor logits = chain.forward(batch.x, ctx);
  const ops::SoftmaxXentResult head =
      ops::softmax_xent_forward(logits, batch.labels);
  (void)chain.backward(ops::softmax_xent_backward(head.probs, batch.labels));
  std::vector<Tensor> grads;
  for (const ParamRef& p : chain.params()) grads.push_back(p.grad->clone());
  return grads;
}

class MicrobatchEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MicrobatchEquivalenceTest, GradsMatchFullBatchWithoutBn) {
  const int chunks = GetParam();
  LayerChain chain = bn_free_net(31);
  const Batch batch = make_batch(12, 32);

  const std::vector<Tensor> reference = grads_after_full_batch(chain, batch);

  chain.zero_grad();
  const MicrobatchResult result =
      run_microbatched(chain, batch.x, batch.labels, chunks);
  EXPECT_EQ(result.chunks_run, chunks);

  const auto params = chain.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_LT(Tensor::max_abs_diff(*params[i].grad, reference[i]), 2e-6F)
        << params[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkCounts, MicrobatchEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

TEST(Microbatch, UnevenSplitCoversWholeBatch) {
  LayerChain chain = bn_free_net(41);
  const Batch batch = make_batch(7, 42);  // 7 samples into 3 chunks: 2,2,3
  const std::vector<Tensor> reference = grads_after_full_batch(chain, batch);
  chain.zero_grad();
  (void)run_microbatched(chain, batch.x, batch.labels, 3);
  const auto params = chain.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_LT(Tensor::max_abs_diff(*params[i].grad, reference[i]), 2e-6F);
  }
}

TEST(Microbatch, ReducesMeasuredPeakMemory) {
  LayerChain chain = bn_free_net(51);
  const Batch batch = make_batch(16, 52);
  chain.zero_grad();
  const MicrobatchResult whole =
      run_microbatched(chain, batch.x, batch.labels, 1);
  chain.zero_grad();
  const MicrobatchResult split =
      run_microbatched(chain, batch.x, batch.labels, 8);
  const std::size_t whole_peak = whole.peak_tracked_bytes - whole.baseline_bytes;
  const std::size_t split_peak = split.peak_tracked_bytes - split.baseline_bytes;
  EXPECT_LT(static_cast<double>(split_peak), 0.5 * static_cast<double>(whole_peak));
}

TEST(Microbatch, LossMatchesFullBatch) {
  LayerChain chain = bn_free_net(61);
  const Batch batch = make_batch(9, 62);
  RunContext ctx;
  ctx.save_for_backward = false;
  Tensor logits = chain.forward(batch.x, ctx);
  const float reference = ops::softmax_xent_forward(logits, batch.labels).loss;
  chain.zero_grad();
  const MicrobatchResult result =
      run_microbatched(chain, batch.x, batch.labels, 3);
  EXPECT_NEAR(result.loss, reference, 1e-5F);
}

TEST(Microbatch, BatchNormDriftsButStaysClose) {
  // With BN the chunk statistics differ: gradients drift (documented), but
  // should remain in the same ballpark for well-behaved inputs.
  std::mt19937 rng(71);
  LayerChain chain = models::build_patch_cnn(10, 1, 4, 3, rng);
  const Batch batch = make_batch(12, 72);
  const std::vector<Tensor> reference = grads_after_full_batch(chain, batch);
  chain.zero_grad();
  (void)run_microbatched(chain, batch.x, batch.labels, 3);
  const auto params = chain.params();
  double drift = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    drift = std::max(drift, static_cast<double>(Tensor::max_abs_diff(
                                *params[i].grad, reference[i])));
  }
  EXPECT_GT(drift, 0.0);    // BN makes it inexact...
  EXPECT_LT(drift, 1.0);    // ...but not wild.
}

TEST(Microbatch, RejectsBadArguments) {
  LayerChain chain = bn_free_net(81);
  const Batch batch = make_batch(4, 82);
  EXPECT_THROW((void)run_microbatched(chain, batch.x, batch.labels, 0),
               std::invalid_argument);
  EXPECT_THROW((void)run_microbatched(chain, batch.x, batch.labels, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::nn
