// End-to-end learning tests: small networks must actually train on
// synthetic tasks, with and without checkpointing.
#include <gtest/gtest.h>

#include <random>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace edgetrain {
namespace {

/// Synthetic two-class images: class 0 bright in the left half, class 1 in
/// the right half, plus noise.
struct ToyImages {
  Tensor x;
  std::vector<std::int32_t> labels;
};

ToyImages make_toy_batch(std::int64_t n, std::int64_t side, std::mt19937& rng) {
  ToyImages batch;
  batch.x = Tensor::randn(Shape{n, 1, side, side}, rng, 0.2F);
  std::uniform_int_distribution<std::int32_t> label(0, 1);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = label(rng);
    batch.labels.push_back(y);
    float* img = batch.x.data() + i * side * side;
    for (std::int64_t r = 0; r < side; ++r) {
      for (std::int64_t c = 0; c < side; ++c) {
        const bool left = c < side / 2;
        if ((y == 0 && left) || (y == 1 && !left)) {
          img[r * side + c] += 1.0F;
        }
      }
    }
  }
  return batch;
}

float train_epochs(nn::LayerChain& chain, const core::Schedule& schedule,
                   int steps, std::mt19937& rng) {
  nn::SGD opt(chain.params(), 0.05F, 0.9F);
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  core::ScheduleExecutor executor;
  float last_loss = 0.0F;
  for (int step = 0; step < steps; ++step) {
    const ToyImages batch = make_toy_batch(8, 12, rng);
    opt.zero_grad();
    runner.begin_pass();
    const core::LossGradFn loss_grad = [&](const Tensor& logits) {
      const ops::SoftmaxXentResult r =
          ops::softmax_xent_forward(logits, batch.labels);
      last_loss = r.loss;
      return ops::softmax_xent_backward(r.probs, batch.labels);
    };
    (void)executor.run(runner, schedule, batch.x, loss_grad);
    opt.step();
  }
  return last_loss;
}

double accuracy(nn::LayerChain& chain, std::mt19937& rng) {
  const ToyImages test = make_toy_batch(64, 12, rng);
  nn::RunContext ctx;
  ctx.phase = nn::Phase::Eval;
  ctx.save_for_backward = false;
  Tensor logits = chain.forward(test.x, ctx);
  const auto predictions = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

TEST(Training, FullStorageLearnsToyTask) {
  std::mt19937 rng(301);
  nn::LayerChain chain = models::build_patch_cnn(12, 1, 4, 2, rng);
  const float final_loss = train_epochs(
      chain, core::full_storage_schedule(chain.size()), 60, rng);
  EXPECT_LT(final_loss, 0.35F);
  EXPECT_GT(accuracy(chain, rng), 0.85);
}

TEST(Training, CheckpointedLearnsToyTaskEquallyWell) {
  std::mt19937 rng(301);  // same seed: identical data stream and init order
  nn::LayerChain chain = models::build_patch_cnn(12, 1, 4, 2, rng);
  const core::Schedule schedule =
      core::revolve::make_schedule(chain.size(), 2);
  const float final_loss = train_epochs(chain, schedule, 60, rng);
  EXPECT_LT(final_loss, 0.35F);
  EXPECT_GT(accuracy(chain, rng), 0.85);
}

TEST(Training, CheckpointedAndFullRunsAreBitIdentical) {
  // Whole-training-trajectory equivalence: same seed, same data, one run
  // checkpointed and one not -> identical weights after several updates.
  auto run = [](int free_slots) {
    std::mt19937 rng(307);
    nn::LayerChain chain = models::build_patch_cnn(12, 1, 4, 2, rng);
    const core::Schedule schedule =
        free_slots < 0 ? core::full_storage_schedule(chain.size())
                       : core::revolve::make_schedule(chain.size(), free_slots);
    std::mt19937 data_rng(311);
    (void)train_epochs(chain, schedule, 10, data_rng);
    std::vector<Tensor> weights;
    for (const nn::ParamRef& p : chain.params()) {
      weights.push_back(p.value->clone());
    }
    return weights;
  };
  const std::vector<Tensor> full = run(-1);
  const std::vector<Tensor> ckpt = run(1);
  ASSERT_EQ(full.size(), ckpt.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(full[i], ckpt[i]), 0.0F) << "param " << i;
  }
}

TEST(Training, MlpLearnsXor) {
  std::mt19937 rng(313);
  nn::LayerChain mlp = models::build_mlp(2, 16, 2, 2, rng);
  nn::SGD opt(mlp.params(), 0.1F, 0.9F);
  Tensor x = Tensor::from_values({0, 0, 0, 1, 1, 0, 1, 1}).reshaped(
      Shape{4, 2, 1, 1});
  const std::vector<std::int32_t> labels{0, 1, 1, 0};
  float loss = 0.0F;
  for (int step = 0; step < 800; ++step) {
    opt.zero_grad();
    nn::RunContext ctx;
    Tensor logits = mlp.forward(x, ctx);
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    loss = r.loss;
    (void)mlp.backward(ops::softmax_xent_backward(r.probs, labels));
    opt.step();
  }
  EXPECT_LT(loss, 0.1F);
}

}  // namespace
}  // namespace edgetrain
