#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <random>

#include "models/small_nets.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::nn {
namespace {

struct Batch {
  Tensor x;
  std::vector<std::int32_t> labels;
};

/// Quadrant task: a bright square in quadrant q has label q.
Batch quadrant_batch(std::int64_t n, std::mt19937& rng) {
  Batch batch;
  batch.x = Tensor::randn(Shape{n, 1, 12, 12}, rng, 0.2F);
  std::uniform_int_distribution<std::int32_t> dist(0, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t label = dist(rng);
    batch.labels.push_back(label);
    float* img = batch.x.data() + i * 144;
    const int oy = (label / 2) * 6;
    const int ox = (label % 2) * 6;
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) img[(oy + y) * 12 + ox + x] += 1.2F;
    }
  }
  return batch;
}

double eval_accuracy(LayerChain& chain, std::mt19937& rng) {
  const Batch test = quadrant_batch(64, rng);
  RunContext ctx;
  ctx.phase = Phase::Eval;
  ctx.save_for_backward = false;
  const auto preds = ops::argmax_rows(chain.forward(test.x, ctx));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

struct StrategyCase {
  CheckpointStrategy strategy;
  SlotBackend backend;
};

class TrainerStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(TrainerStrategyTest, LearnsQuadrantTask) {
  const auto [strategy, backend] = GetParam();
  std::mt19937 rng(606);
  LayerChain chain = models::build_patch_cnn(12, 1, 4, 4, rng);
  TrainerOptions options;
  options.strategy = strategy;
  options.backend = backend;
  options.free_slots = 2;
  options.lr = 0.08F;
  Trainer trainer(chain, options);

  float loss = 0.0F;
  std::mt19937 data_rng(607);
  for (int step = 0; step < 50; ++step) {
    const Batch batch = quadrant_batch(8, data_rng);
    loss = trainer.step(batch.x, batch.labels).loss;
  }
  EXPECT_LT(loss, 0.8F);
  EXPECT_GT(eval_accuracy(chain, data_rng), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndBackends, TrainerStrategyTest,
    ::testing::Values(
        StrategyCase{CheckpointStrategy::FullStorage, SlotBackend::Ram},
        StrategyCase{CheckpointStrategy::Revolve, SlotBackend::Ram},
        StrategyCase{CheckpointStrategy::Sequential, SlotBackend::Ram},
        StrategyCase{CheckpointStrategy::Periodic, SlotBackend::Ram},
        StrategyCase{CheckpointStrategy::Revolve, SlotBackend::DiskSpill},
        StrategyCase{CheckpointStrategy::Revolve, SlotBackend::Fp16},
        StrategyCase{CheckpointStrategy::Revolve, SlotBackend::Int8}));

TEST(Trainer, RevolveIdenticalToFullStorageTrajectory) {
  auto run = [](CheckpointStrategy strategy) {
    std::mt19937 rng(611);
    LayerChain chain = models::build_patch_cnn(12, 1, 4, 4, rng);
    TrainerOptions options;
    options.strategy = strategy;
    options.free_slots = 1;
    Trainer trainer(chain, options);
    std::mt19937 data_rng(613);
    for (int step = 0; step < 8; ++step) {
      const Batch batch = quadrant_batch(4, data_rng);
      (void)trainer.step(batch.x, batch.labels);
    }
    std::vector<Tensor> weights;
    for (const ParamRef& p : chain.params()) weights.push_back(p.value->clone());
    return weights;
  };
  const auto full = run(CheckpointStrategy::FullStorage);
  const auto revolve = run(CheckpointStrategy::Revolve);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(full[i], revolve[i]), 0.0F) << i;
  }
}

TEST(Trainer, CheckpointedStepUsesLessMemory) {
  std::mt19937 rng(617);
  LayerChain chain = models::build_conv_chain(16, 8, rng);

  auto peak_of = [&](CheckpointStrategy strategy, int slots) {
    TrainerOptions options;
    options.strategy = strategy;
    options.free_slots = slots;
    Trainer trainer(chain, options);
    Tensor x = Tensor::randn(Shape{1, 8, 14, 14}, rng);
    const core::LossGradFn seed = [](const Tensor& output) {
      return Tensor::full(output.shape(), 1.0F);
    };
    return trainer.step_with_loss(x, seed).peak_bytes;
  };

  const std::size_t full = peak_of(CheckpointStrategy::FullStorage, 0);
  const std::size_t tight = peak_of(CheckpointStrategy::Revolve, 1);
  EXPECT_LT(tight, full);
}

TEST(Trainer, ReportsAdvances) {
  std::mt19937 rng(619);
  LayerChain chain = models::build_conv_chain(8, 4, rng);
  TrainerOptions options;
  options.strategy = CheckpointStrategy::Revolve;
  options.free_slots = 1;
  Trainer trainer(chain, options);
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  const core::LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };
  EXPECT_GT(trainer.step_with_loss(x, seed).advances, 0);
  EXPECT_EQ(trainer.schedule().num_steps(), 8);
}

}  // namespace
}  // namespace edgetrain::nn
