#include "nn/chain.hpp"

#include <gtest/gtest.h>

#include <random>

#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"

namespace edgetrain::nn {
namespace {

TEST(LayerChain, ForwardBackwardShapes) {
  std::mt19937 rng(201);
  LayerChain chain = models::build_mini_resnet(1, 4, 5, 1, rng);
  Tensor x = Tensor::randn(Shape{2, 1, 16, 16}, rng);
  RunContext ctx;
  Tensor y = chain.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 5}));
  Tensor gx = chain.backward(Tensor::full(Shape{2, 5}, 1.0F));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(LayerChain, ShapesInferenceMatchesExecution) {
  std::mt19937 rng(203);
  LayerChain chain = models::build_mini_resnet(2, 4, 3, 1, rng);
  const Shape in{2, 1, 16, 16};
  const std::vector<Shape> shapes = chain.shapes(in);
  ASSERT_EQ(static_cast<int>(shapes.size()), chain.size() + 1);

  RunContext ctx;
  ctx.save_for_backward = false;
  Tensor h = Tensor::randn(in, rng);
  for (int i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(h.shape(), shapes[static_cast<std::size_t>(i)]) << "step " << i;
    h = chain.layer(i).forward(h, ctx);
  }
  EXPECT_EQ(h.shape(), shapes.back());
}

TEST(LayerChain, WholeChainGradCheck) {
  std::mt19937 rng(207);
  LayerChain chain;
  chain.push(std::make_unique<Conv2d>(2, 3, 3, 1, 1, false, rng));
  chain.push(std::make_unique<ReLU>());
  chain.push(std::make_unique<GlobalAvgPool>());
  chain.push(std::make_unique<Linear>(3, 2, true, rng));

  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);
  Tensor cot = Tensor::randn(Shape{2, 2}, rng);

  RunContext ctx;
  (void)chain.forward(x, ctx);
  Tensor analytic = chain.backward(cot);

  auto f = [&](const Tensor& xx) {
    RunContext eval;
    eval.save_for_backward = false;
    Tensor y = chain.forward(xx, eval);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.at(i)) * cot.at(i);
    }
    return static_cast<float>(acc);
  };
  const GradCheckResult result = check_function(f, x, analytic);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(LayerChain, ParamCountSumsLayers) {
  std::mt19937 rng(211);
  LayerChain chain;
  chain.push(std::make_unique<Conv2d>(1, 4, 3, 1, 1, false, rng));  // 36
  chain.push(std::make_unique<BatchNorm2d>(4));                     // 8
  chain.push(std::make_unique<GlobalAvgPool>());                    // 0
  chain.push(std::make_unique<Linear>(4, 3, true, rng));            // 15
  EXPECT_EQ(chain.param_count(), 36 + 8 + 15);
  EXPECT_EQ(chain.params().size(), 5U);  // conv.w, bn.gamma, bn.beta, lin.w, lin.b
}

TEST(LayerChainRunner, FirstVisitOnlyOncePerPass) {
  std::mt19937 rng(213);
  LayerChain chain;
  chain.push(std::make_unique<BatchNorm2d>(2));
  LayerChainRunner runner(chain, Phase::Train);
  runner.begin_pass();
  Tensor x = Tensor::randn(Shape{2, 2, 3, 3}, rng, 2.0F);

  auto* bn = dynamic_cast<BatchNorm2d*>(&chain.layer(0));
  ASSERT_NE(bn, nullptr);
  (void)runner.forward(0, x, false);
  Tensor mean_after_first = bn->running_mean().clone();
  // Recompute visit: stats must not move again.
  (void)runner.forward(0, x, true);
  EXPECT_EQ(Tensor::max_abs_diff(bn->running_mean(), mean_after_first), 0.0F);
  // New pass: stats move again.
  runner.begin_pass();
  (void)runner.forward(0, x, false);
  EXPECT_GT(Tensor::max_abs_diff(bn->running_mean(), mean_after_first), 0.0F);
}

TEST(LayerChain, ClearSavedDropsState) {
  std::mt19937 rng(217);
  LayerChain chain;
  chain.push(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false, rng));
  RunContext ctx;
  (void)chain.forward(Tensor::randn(Shape{1, 1, 4, 4}, rng), ctx);
  chain.clear_saved();
  EXPECT_THROW((void)chain.backward(Tensor::zeros(Shape{1, 2, 4, 4})),
               std::logic_error);
}

}  // namespace
}  // namespace edgetrain::nn
