// Per-layer numerical gradient checks and save-for-backward semantics.
#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <random>

#include "nn/gradcheck.hpp"

namespace edgetrain::nn {
namespace {

RunContext saving_ctx() {
  RunContext ctx;
  ctx.phase = Phase::Train;
  ctx.save_for_backward = true;
  ctx.first_visit = true;
  return ctx;
}

TEST(Conv2dLayer, GradCheck) {
  std::mt19937 rng(101);
  Conv2d layer(2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(Conv2dLayer, StridedGradCheck) {
  std::mt19937 rng(103);
  Conv2d layer(2, 4, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 8, 8}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(BatchNormLayer, GradCheck) {
  std::mt19937 rng(107);
  BatchNorm2d layer(3);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  const GradCheckResult result = check_layer(layer, x, rng, 1e-3F, 8e-2F);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(LinearLayer, GradCheck) {
  std::mt19937 rng(109);
  Linear layer(6, 4, true, rng);
  Tensor x = Tensor::randn(Shape{3, 6}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(BasicBlockLayer, GradCheckIdentityShortcut) {
  std::mt19937 rng(113);
  BasicBlock layer(4, 4, 1, rng);
  Tensor x = Tensor::randn(Shape{2, 4, 5, 5}, rng);
  const GradCheckResult result =
      check_layer(layer, x, rng, 1e-3F, 8e-2F, /*max_violations=*/2);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(BasicBlockLayer, GradCheckProjectionShortcut) {
  std::mt19937 rng(127);
  BasicBlock layer(3, 6, 2, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 6, 6}, rng);
  const GradCheckResult result =
      check_layer(layer, x, rng, 1e-3F, 8e-2F, /*max_violations=*/2);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(BottleneckLayer, GradCheck) {
  std::mt19937 rng(131);
  Bottleneck layer(4, 2, 2, rng);  // projection shortcut, stride 2
  Tensor x = Tensor::randn(Shape{2, 4, 6, 6}, rng);
  // Batch norm centres the pre-activations at zero, so a few probed
  // coordinates legitimately flip a ReLU kink within +-epsilon; allow a
  // handful of outliers (the per-op adjoints are verified tightly in
  // ops_test and the simpler layer checks above).
  const GradCheckResult result =
      check_layer(layer, x, rng, 1e-3F, 1e-1F, /*max_violations=*/4);
  EXPECT_TRUE(result.passed) << result.violations << "/" << result.checks
                             << " outliers, max rel err "
                             << result.max_rel_error;
}

TEST(MaxPoolLayer, GradCheck) {
  std::mt19937 rng(137);
  MaxPool2d layer(2, 2, 0);
  // Distinct values so argmax is stable under the FD perturbation.
  Tensor x = Tensor::uniform(Shape{1, 2, 6, 6}, rng, 0.0F, 10.0F);
  const GradCheckResult result = check_layer(layer, x, rng, 1e-4F, 8e-2F);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(GlobalAvgPoolLayer, GradCheck) {
  std::mt19937 rng(139);
  GlobalAvgPool layer;
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(ReLULayer, GradCheck) {
  std::mt19937 rng(149);
  ReLU layer;
  // Keep values away from the kink: |x| >= 0.2, alternating signs.
  Tensor x = Tensor::uniform(Shape{2, 3, 4, 4}, rng, 0.2F, 1.0F);
  for (std::int64_t i = 0; i < x.numel(); i += 2) x.at(i) = -x.at(i);
  const GradCheckResult result = check_layer(layer, x, rng, 1e-4F, 5e-2F);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(AvgPoolLayer, GradCheck) {
  std::mt19937 rng(191);
  AvgPool2d layer(2, 2, 0);
  Tensor x = Tensor::randn(Shape{2, 3, 6, 6}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(SigmoidLayer, GradCheck) {
  std::mt19937 rng(193);
  Sigmoid layer;
  Tensor x = Tensor::randn(Shape{2, 8}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(TanhLayer, GradCheck) {
  std::mt19937 rng(197);
  Tanh layer;
  Tensor x = Tensor::randn(Shape{2, 8}, rng);
  const GradCheckResult result = check_layer(layer, x, rng);
  EXPECT_TRUE(result.passed) << "max rel err " << result.max_rel_error;
}

TEST(DropoutLayer, IdentityInEval) {
  std::mt19937 rng(199);
  Dropout layer(0.5F);
  Tensor x = Tensor::randn(Shape{64}, rng);
  RunContext eval;
  eval.phase = Phase::Eval;
  eval.save_for_backward = false;
  Tensor y = layer.forward(x, eval);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0F);
}

TEST(DropoutLayer, SamePassTokenSameMask) {
  std::mt19937 rng(211);
  Dropout layer(0.5F);
  Tensor x = Tensor::randn(Shape{256}, rng);
  RunContext ctx = saving_ctx();
  ctx.pass_token = 42;
  Tensor a = layer.forward(x, ctx);
  ctx.first_visit = false;  // recomputation of the same pass
  Tensor b = layer.forward(x, ctx);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0F);
  ctx.pass_token = 43;  // next pass: fresh mask
  Tensor c = layer.forward(x, ctx);
  EXPECT_GT(Tensor::max_abs_diff(a, c), 0.0F);
}

TEST(DropoutLayer, BackwardAppliesForwardMask) {
  std::mt19937 rng(223);
  Dropout layer(0.5F);
  Tensor x = Tensor::full(Shape{128}, 1.0F);
  RunContext ctx = saving_ctx();
  ctx.pass_token = 9;
  Tensor y = layer.forward(x, ctx);
  Tensor gx = layer.backward(Tensor::full(Shape{128}, 1.0F));
  for (std::int64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(gx.at(i) == 0.0F, y.at(i) == 0.0F) << i;
  }
}

TEST(DropoutLayer, RejectsBadRate) {
  EXPECT_THROW(Dropout{1.0F}, std::invalid_argument);
}

TEST(Layer, BackwardWithoutSaveThrows) {
  std::mt19937 rng(151);
  Conv2d layer(1, 1, 3, 1, 1, false, rng);
  RunContext ctx = saving_ctx();
  ctx.save_for_backward = false;
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  (void)layer.forward(x, ctx);
  EXPECT_THROW((void)layer.backward(Tensor::zeros(Shape{1, 1, 4, 4})),
               std::logic_error);
}

TEST(Layer, NonSavingForwardRetainsNothing) {
  std::mt19937 rng(157);
  Conv2d layer(4, 4, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 16, 16}, rng);
  RunContext ctx = saving_ctx();
  ctx.save_for_backward = false;
  const std::size_t before = MemoryTracker::instance().current_bytes();
  Tensor y = layer.forward(x, ctx);
  const std::size_t after = MemoryTracker::instance().current_bytes();
  // Only the output should remain allocated (plus nothing retained inside).
  EXPECT_LE(after - before, y.bytes() + 64);
}

TEST(Layer, ParamCountsMatchFormulas) {
  std::mt19937 rng(163);
  Conv2d conv(3, 8, 3, 1, 1, false, rng);
  EXPECT_EQ(conv.param_count(), 3 * 8 * 9);
  Conv2d conv_bias(3, 8, 5, 1, 2, true, rng);
  EXPECT_EQ(conv_bias.param_count(), 3 * 8 * 25 + 8);
  BatchNorm2d bn(16);
  EXPECT_EQ(bn.param_count(), 32);
  Linear linear(10, 7, true, rng);
  EXPECT_EQ(linear.param_count(), 77);
  BasicBlock block(8, 8, 1, rng);  // identity shortcut
  EXPECT_EQ(block.param_count(), 8 * 8 * 9 * 2 + 16 * 2);
}

TEST(Layer, OutputShapes) {
  std::mt19937 rng(167);
  Conv2d conv(3, 8, 3, 2, 1, false, rng);
  EXPECT_EQ(conv.output_shape(Shape{2, 3, 32, 32}), (Shape{2, 8, 16, 16}));
  MaxPool2d pool(3, 2, 1);
  EXPECT_EQ(pool.output_shape(Shape{2, 8, 16, 16}), (Shape{2, 8, 8, 8}));
  GlobalAvgPool gap;
  EXPECT_EQ(gap.output_shape(Shape{2, 8, 7, 7}), (Shape{2, 8}));
  Flatten flatten;
  EXPECT_EQ(flatten.output_shape(Shape{2, 8, 4, 4}), (Shape{2, 128}));
  Bottleneck bottleneck(4, 2, 2, rng);
  EXPECT_EQ(bottleneck.output_shape(Shape{1, 4, 8, 8}), (Shape{1, 8, 4, 4}));
}

TEST(Layer, ZeroGradClearsGradients) {
  std::mt19937 rng(173);
  Linear layer(4, 2, true, rng);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  (void)layer.forward(x, saving_ctx());
  (void)layer.backward(Tensor::full(Shape{2, 2}, 1.0F));
  std::vector<ParamRef> params;
  layer.collect_params(params);
  EXPECT_GT(params[0].grad->max_abs(), 0.0F);
  layer.zero_grad();
  EXPECT_EQ(params[0].grad->max_abs(), 0.0F);
}

TEST(Layer, GradientsAccumulateAcrossBackwardCalls) {
  std::mt19937 rng(179);
  Linear layer(3, 2, false, rng);
  Tensor x = Tensor::randn(Shape{1, 3}, rng);
  Tensor g = Tensor::full(Shape{1, 2}, 1.0F);
  (void)layer.forward(x, saving_ctx());
  (void)layer.backward(g);
  std::vector<ParamRef> params;
  layer.collect_params(params);
  Tensor once = params[0].grad->clone();
  (void)layer.forward(x, saving_ctx());
  (void)layer.backward(g);
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_FLOAT_EQ(params[0].grad->at(i), 2.0F * once.at(i));
  }
}

TEST(BatchNormLayer, EvalModeUsesRunningStats) {
  std::mt19937 rng(181);
  BatchNorm2d layer(2);
  Tensor x = Tensor::randn(Shape{4, 2, 3, 3}, rng, 2.0F);
  // A few training passes to move the running stats.
  for (int i = 0; i < 5; ++i) (void)layer.forward(x, saving_ctx());
  RunContext eval;
  eval.phase = Phase::Eval;
  eval.save_for_backward = false;
  Tensor y1 = layer.forward(x, eval);
  Tensor y2 = layer.forward(x, eval);
  EXPECT_EQ(Tensor::max_abs_diff(y1, y2), 0.0F);  // deterministic in eval
}

}  // namespace
}  // namespace edgetrain::nn
