#include "nn/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "tensor/alloc.hpp"

namespace edgetrain::nn {
namespace {

/// One-parameter quadratic f(w) = 0.5 * ||w - target||^2.
struct Quadratic {
  Tensor w = Tensor::zeros(Shape{4});
  Tensor grad = Tensor::zeros(Shape{4});
  Tensor target = Tensor::from_values({1.0F, -2.0F, 3.0F, 0.5F});

  [[nodiscard]] std::vector<ParamRef> params() {
    return {{"w", &w, &grad}};
  }
  void compute_grad() {
    for (std::int64_t i = 0; i < 4; ++i) {
      grad.at(i) = w.at(i) - target.at(i);
    }
  }
  [[nodiscard]] float loss() const {
    float acc = 0.0F;
    for (std::int64_t i = 0; i < 4; ++i) {
      const float d = w.at(i) - target.at(i);
      acc += 0.5F * d * d;
    }
    return acc;
  }
};

TEST(SGD, ConvergesOnQuadratic) {
  Quadratic problem;
  SGD opt(problem.params(), 0.2F);
  for (int i = 0; i < 200; ++i) {
    problem.compute_grad();
    opt.step();
  }
  EXPECT_LT(problem.loss(), 1e-8F);
}

TEST(SGD, MomentumConvergesFaster) {
  Quadratic plain;
  Quadratic heavy;
  SGD opt_plain(plain.params(), 0.02F);
  SGD opt_heavy(heavy.params(), 0.02F, 0.9F);
  for (int i = 0; i < 60; ++i) {
    plain.compute_grad();
    opt_plain.step();
    heavy.compute_grad();
    opt_heavy.step();
  }
  EXPECT_LT(heavy.loss(), plain.loss());
}

TEST(SGD, SingleStepMatchesHandComputation) {
  Quadratic problem;
  problem.w.fill(2.0F);
  SGD opt(problem.params(), 0.1F);
  problem.compute_grad();
  opt.step();
  // w <- w - lr * (w - target)
  EXPECT_FLOAT_EQ(problem.w.at(0), 2.0F - 0.1F * (2.0F - 1.0F));
  EXPECT_FLOAT_EQ(problem.w.at(1), 2.0F - 0.1F * (2.0F + 2.0F));
}

TEST(SGD, WeightDecayShrinksWeights) {
  Quadratic problem;
  problem.w.fill(1.0F);
  problem.target.fill(1.0F);  // gradient zero; only decay acts
  SGD opt(problem.params(), 0.1F, 0.0F, 0.5F);
  problem.compute_grad();
  opt.step();
  EXPECT_FLOAT_EQ(problem.w.at(0), 1.0F - 0.1F * 0.5F);
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic problem;
  Adam opt(problem.params(), 0.05F);
  for (int i = 0; i < 500; ++i) {
    problem.compute_grad();
    opt.step();
  }
  EXPECT_LT(problem.loss(), 1e-6F);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Bias correction makes the first update ~lr * sign(grad).
  for (const float scale : {1e-3F, 1.0F, 1e3F}) {
    Quadratic problem;
    problem.w.fill(0.0F);
    problem.target.fill(-scale);  // grad = scale
    Adam opt(problem.params(), 0.01F);
    problem.compute_grad();
    opt.step();
    EXPECT_NEAR(problem.w.at(0), -0.01F, 1e-4F) << "scale " << scale;
  }
}

TEST(Optimizer, ZeroGradClears) {
  Quadratic problem;
  SGD opt(problem.params(), 0.1F);
  problem.compute_grad();
  EXPECT_GT(problem.grad.max_abs(), 0.0F);
  opt.zero_grad();
  EXPECT_EQ(problem.grad.max_abs(), 0.0F);
}

TEST(Optimizer, StateBytesMatchTheory) {
  // The paper's fixed-memory model: SGD+momentum adds 1x weights, Adam 2x.
  Quadratic p1;
  Quadratic p2;
  Quadratic p3;
  SGD plain(p1.params(), 0.1F);
  SGD momentum(p2.params(), 0.1F, 0.9F);
  Adam adam(p3.params(), 0.1F);
  const std::size_t wbytes = p1.w.bytes();
  EXPECT_EQ(plain.state_bytes(), 0U);
  EXPECT_EQ(momentum.state_bytes(), wbytes);
  EXPECT_EQ(adam.state_bytes(), 2 * wbytes);
}

TEST(Optimizer, AdamStateIsTracked) {
  // Optimizer state must go through the tracked allocator (it is part of
  // the paper's fixed footprint).
  Quadratic problem;
  const std::size_t before = MemoryTracker::instance().current_bytes();
  Adam opt(problem.params(), 0.1F);
  EXPECT_GE(MemoryTracker::instance().current_bytes() - before,
            2 * problem.w.bytes());
}

}  // namespace
}  // namespace edgetrain::nn
