#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "models/small_nets.hpp"
#include "nn/layers.hpp"

namespace edgetrain::nn {
namespace {

LayerChain make_net(std::uint32_t seed) {
  std::mt19937 rng(seed);
  return models::build_mini_resnet(1, 4, 3, 1, rng);
}

TEST(Serialize, RoundTripRestoresExactWeights) {
  LayerChain source = make_net(1);
  LayerChain target = make_net(2);  // different init

  const std::vector<std::uint8_t> bytes = serialize_weights(source);
  deserialize_weights(target, bytes);

  const auto src_params = source.params();
  const auto dst_params = target.params();
  ASSERT_EQ(src_params.size(), dst_params.size());
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(*src_params[i].value, *dst_params[i].value),
              0.0F)
        << src_params[i].name;
  }
}

TEST(Serialize, RestoredNetComputesIdenticalOutputs) {
  LayerChain source = make_net(3);
  LayerChain target = make_net(4);
  deserialize_weights(target, serialize_weights(source));

  std::mt19937 rng(5);
  Tensor x = Tensor::randn(Shape{2, 1, 12, 12}, rng);
  RunContext ctx;
  ctx.phase = Phase::Eval;
  ctx.save_for_backward = false;
  // Eval mode depends on running stats too; copy them via a second round
  // trip is not needed here because both nets are freshly constructed
  // (identical default running stats).
  Tensor ya = source.forward(x, ctx);
  Tensor yb = target.forward(x, ctx);
  EXPECT_EQ(Tensor::max_abs_diff(ya, yb), 0.0F);
}

TEST(Serialize, ArchitectureMismatchThrows) {
  LayerChain source = make_net(6);
  std::mt19937 rng(7);
  LayerChain other = models::build_mini_resnet(1, 8, 3, 1, rng);  // wider
  const auto bytes = serialize_weights(source);
  EXPECT_THROW(deserialize_weights(other, bytes), std::runtime_error);
}

TEST(Serialize, ParamCountMismatchThrows) {
  LayerChain source = make_net(8);
  std::mt19937 rng(9);
  LayerChain shallow = models::build_mlp(4, 4, 1, 2, rng);
  EXPECT_THROW(deserialize_weights(shallow, serialize_weights(source)),
               std::runtime_error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  LayerChain source = make_net(10);
  std::vector<std::uint8_t> bytes = serialize_weights(source);
  bytes.resize(bytes.size() / 2);
  LayerChain target = make_net(11);
  EXPECT_THROW(deserialize_weights(target, bytes), std::runtime_error);
}

TEST(Serialize, BadMagicThrows) {
  LayerChain source = make_net(12);
  std::vector<std::uint8_t> bytes = serialize_weights(source);
  bytes[0] ^= 0xFF;
  LayerChain target = make_net(13);
  EXPECT_THROW(deserialize_weights(target, bytes), std::runtime_error);
}

TEST(Serialize, TrailingBytesThrow) {
  LayerChain source = make_net(14);
  std::vector<std::uint8_t> bytes = serialize_weights(source);
  bytes.push_back(0);
  LayerChain target = make_net(15);
  EXPECT_THROW(deserialize_weights(target, bytes), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/edgetrain_weights.bin";
  LayerChain source = make_net(16);
  save_weights(source, path);
  LayerChain target = make_net(17);
  load_weights(target, path);
  const auto src_params = source.params();
  const auto dst_params = target.params();
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(*src_params[i].value, *dst_params[i].value),
              0.0F);
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  LayerChain net = make_net(18);
  EXPECT_THROW(load_weights(net, "/nonexistent/path/weights.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace edgetrain::nn
