#include <gtest/gtest.h>

#include <cmath>

#include "edge/device.hpp"
#include "edge/power.hpp"
#include "edge/scheduler.hpp"
#include "edge/storage.hpp"

namespace edgetrain::edge {
namespace {

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

TEST(Device, WaggleMatchesPaperSectionII) {
  const EdgeDevice waggle = EdgeDevice::waggle_odroid_xu4();
  EXPECT_EQ(waggle.memory_bytes, 2ULL << 30);  // 2 GB LPDDR3
  EXPECT_EQ(waggle.big_cores, 4);              // A15
  EXPECT_EQ(waggle.little_cores, 4);           // A7
  EXPECT_EQ(waggle.total_cores(), 8);
  EXPECT_GT(waggle.storage_bytes, 0ULL);       // SD card
}

TEST(Device, UplinkSeconds) {
  EdgeDevice d = EdgeDevice::waggle_odroid_xu4();
  d.uplink_mbps = 8.0;
  EXPECT_NEAR(d.uplink_seconds(1e6), 1.0, 1e-9);  // 1 MB at 8 Mbps = 1 s
}

TEST(Device, DiskCostUnitsScaleWithCheckpointSize) {
  const EdgeDevice d = EdgeDevice::waggle_odroid_xu4();
  const double small = d.disk_write_cost_units(1e6, 1e9);
  const double large = d.disk_write_cost_units(4e6, 1e9);
  EXPECT_NEAR(large / small, 4.0, 1e-9);
  // Reads are faster than writes on SD cards.
  EXPECT_LT(d.disk_read_cost_units(1e6, 1e9), small);
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

TEST(ImageStore, PaperStorageBudgetHolds) {
  // "Storing even about 100,000 of these images would require about 1GB":
  // at 10 kB per image, 100k images use ~0.95 GiB of a 1 GiB card.
  ImageStore store(1ULL << 30, /*evict_oldest=*/false);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(store.add(i % 4, 10 * 1024).has_value()) << i;
  }
  EXPECT_EQ(store.size(), 100000U);
  EXPECT_LE(store.used_bytes(), 1ULL << 30);
}

TEST(ImageStore, RejectsWhenFullWithoutEviction) {
  ImageStore store(30, false);
  EXPECT_TRUE(store.add(0, 10).has_value());
  EXPECT_TRUE(store.add(0, 10).has_value());
  EXPECT_TRUE(store.add(0, 10).has_value());
  EXPECT_FALSE(store.add(0, 10).has_value());
  EXPECT_EQ(store.size(), 3U);
}

TEST(ImageStore, EvictsOldestWhenAllowed) {
  ImageStore store(30, true);
  const auto first = store.add(1, 10);
  (void)store.add(2, 10);
  (void)store.add(3, 10);
  const auto fourth = store.add(4, 10);
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(store.size(), 3U);
  EXPECT_EQ(store.evicted_count(), 1U);
  EXPECT_NE(store.images().front().id, first.value());
}

TEST(ImageStore, OversizedImageRejected) {
  ImageStore store(100, true);
  EXPECT_FALSE(store.add(0, 200).has_value());
}

TEST(ImageStore, LabelHistogram) {
  ImageStore store(1000, false);
  (void)store.add(0, 10);
  (void)store.add(1, 10);
  (void)store.add(1, 10);
  const auto histogram = store.label_histogram(3);
  EXPECT_EQ(histogram[0], 1U);
  EXPECT_EQ(histogram[1], 2U);
  EXPECT_EQ(histogram[2], 0U);
}

TEST(ImageStore, ReserveCarvesSnapshotBudgetOutOfDataset) {
  ImageStore store(100, /*evict_oldest=*/true);
  for (int i = 0; i < 10; ++i) (void)store.add(0, 10);
  EXPECT_EQ(store.used_bytes(), 100U);

  // Reserving 35 bytes for trainer snapshots shrinks the dataset budget;
  // oldest images are evicted until the dataset fits.
  store.reserve(35);
  EXPECT_EQ(store.reserved_bytes(), 35U);
  EXPECT_EQ(store.dataset_capacity_bytes(), 65U);
  EXPECT_EQ(store.used_bytes(), 60U);
  EXPECT_EQ(store.evicted_count(), 4U);

  // add() and fits() respect the shrunken budget.
  EXPECT_FALSE(store.fits(10));
  EXPECT_TRUE(store.fits(5));
  EXPECT_TRUE(store.add(1, 5).has_value());
  EXPECT_EQ(store.used_bytes(), 65U);
}

TEST(ImageStore, ReserveBeyondCapacityThrows) {
  ImageStore store(100, false);
  EXPECT_THROW(store.reserve(101), std::invalid_argument);
  EXPECT_NO_THROW(store.reserve(100));
  EXPECT_EQ(store.dataset_capacity_bytes(), 0U);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(IdleScheduler, IdleWindowsTileTheTrainingTimeline) {
  IdleScheduler scheduler(1.0);
  scheduler.add_task({"inference", 3.0, 2.0, 1});
  scheduler.add_task({"sense", 9.0, 1.0, 1});
  const std::vector<IdleWindow> windows = scheduler.idle_windows(12.0);
  // Foreground owns [3,5) and [9,10); training owns the rest.
  ASSERT_EQ(windows.size(), 3U);
  EXPECT_DOUBLE_EQ(windows[0].begin_seconds, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].end_seconds, 3.0);
  EXPECT_DOUBLE_EQ(windows[1].begin_seconds, 5.0);
  EXPECT_DOUBLE_EQ(windows[1].end_seconds, 9.0);
  EXPECT_DOUBLE_EQ(windows[2].begin_seconds, 10.0);
  EXPECT_DOUBLE_EQ(windows[2].end_seconds, 12.0);
  EXPECT_EQ(windows[1].steps(1.0), 4);
  EXPECT_EQ(windows[2].steps(1.5), 1);

  // The windows' total duration equals the report's training seconds.
  const ScheduleReport report = scheduler.run(12.0);
  double total = 0.0;
  for (const IdleWindow& w : windows) total += w.duration();
  EXPECT_NEAR(total, report.training_seconds, 1e-9);
}

TEST(IdleScheduler, BusyNodeHasNoIdleWindows) {
  IdleScheduler scheduler(1.0);
  for (const ForegroundTask& task :
       periodic_tasks("inference", 2.0, 2.0, 5, 20.0)) {
    scheduler.add_task(task);
  }
  EXPECT_TRUE(scheduler.idle_windows(20.0).empty());
}

TEST(IdleScheduler, EmptyForegroundTrainsWholeHorizon) {
  const IdleScheduler scheduler(1.0);
  const ScheduleReport report = scheduler.run(100.0);
  EXPECT_EQ(report.training_steps, 100);
  EXPECT_DOUBLE_EQ(report.foreground_seconds, 0.0);
  EXPECT_NEAR(report.idle_fraction, 1.0, 1e-9);
}

TEST(IdleScheduler, ForegroundPreemptsTraining) {
  IdleScheduler scheduler(1.0);
  scheduler.add_task({"inference", 10.0, 5.0, 1});
  const ScheduleReport report = scheduler.run(20.0);
  EXPECT_DOUBLE_EQ(report.foreground_seconds, 5.0);
  // 15 seconds remain for training.
  EXPECT_NEAR(report.training_seconds, 15.0, 1e-9);
  EXPECT_EQ(report.training_steps, 15);
}

TEST(IdleScheduler, PartialStepsAreAbandoned) {
  IdleScheduler scheduler(3.0);  // a step takes 3 s
  scheduler.add_task({"sense", 4.0, 1.0, 1});
  const ScheduleReport report = scheduler.run(10.0);
  // [0,3) one step; [3,4) abandoned partial (preempted); [4,5) foreground;
  // [5,8) one step; [8,10) tail too short to finish a step.
  EXPECT_EQ(report.training_steps, 2);
  EXPECT_EQ(report.preemptions, 1);
}

TEST(IdleScheduler, BusyNodeStarvesTraining) {
  IdleScheduler scheduler(1.0);
  for (const ForegroundTask& task :
       periodic_tasks("inference", 2.0, 2.0, 5, 60.0)) {
    scheduler.add_task(task);
  }
  const ScheduleReport report = scheduler.run(60.0);
  EXPECT_EQ(report.training_steps, 0);
  EXPECT_NEAR(report.foreground_seconds, 60.0, 1e-9);
}

TEST(IdleScheduler, DutyCycleSplitsProportionally) {
  IdleScheduler scheduler(0.5);
  // 1 s of work every 4 s -> 75% idle.
  for (const ForegroundTask& task :
       periodic_tasks("sample", 4.0, 1.0, 2, 400.0)) {
    scheduler.add_task(task);
  }
  const ScheduleReport report = scheduler.run(400.0);
  EXPECT_NEAR(report.idle_fraction, 0.75, 0.02);
  EXPECT_NEAR(static_cast<double>(report.training_steps), 600.0, 10.0);
}

TEST(IdleScheduler, TimelineCoversHorizonInOrder) {
  IdleScheduler scheduler(1.0);
  scheduler.add_task({"a", 2.0, 3.0, 1});
  scheduler.add_task({"b", 12.0, 1.0, 1});
  const ScheduleReport report = scheduler.run(20.0);
  double cursor = 0.0;
  for (const TimelineSlice& slice : report.timeline) {
    EXPECT_GE(slice.begin_seconds, cursor - 1e-9);
    EXPECT_GT(slice.end_seconds, slice.begin_seconds);
    cursor = slice.end_seconds;
  }
  EXPECT_LE(cursor, 20.0 + 1e-9);
}

TEST(IdleScheduler, RejectsNonPositiveStep) {
  EXPECT_THROW(IdleScheduler{0.0}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PeriodicIdleProfile
// ---------------------------------------------------------------------------

TEST(PeriodicIdleProfile, MatchesTheSchedulerOverOnePeriod) {
  IdleScheduler scheduler(0.5);
  for (const ForegroundTask& task :
       periodic_tasks("sample", 4.0, 1.0, 2, 400.0)) {
    scheduler.add_task(task);
  }
  const PeriodicIdleProfile profile(scheduler, 400.0);
  const ScheduleReport report = scheduler.run(400.0);
  EXPECT_NEAR(profile.training_seconds_per_period(), report.training_seconds,
              1e-9);
  EXPECT_NEAR(profile.idle_fraction(), report.idle_fraction, 1e-9);
  EXPECT_NEAR(profile.training_seconds(0.0, 400.0), report.training_seconds,
              1e-9);
}

TEST(PeriodicIdleProfile, TilesPeriodically) {
  IdleScheduler scheduler(0.5);
  for (const ForegroundTask& task :
       periodic_tasks("sample", 4.0, 1.0, 2, 40.0)) {
    scheduler.add_task(task);
  }
  const PeriodicIdleProfile profile(scheduler, 40.0);
  const double one = profile.training_seconds_per_period();
  EXPECT_NEAR(profile.training_seconds(0.0, 400.0), 10.0 * one, 1e-9);
  EXPECT_NEAR(profile.training_seconds(40.0, 80.0), one, 1e-9);
  // Any window is the difference of cumulative queries: additivity.
  const double split = profile.training_seconds(13.0, 57.0) -
                       (profile.training_seconds(13.0, 30.0) +
                        profile.training_seconds(30.0, 57.0));
  EXPECT_NEAR(split, 0.0, 1e-9);
}

TEST(PeriodicIdleProfile, PhaseShiftsTheCycleNotTheTotal) {
  IdleScheduler scheduler(0.5);
  for (const ForegroundTask& task :
       periodic_tasks("sample", 10.0, 4.0, 2, 40.0)) {
    scheduler.add_task(task);
  }
  const PeriodicIdleProfile profile(scheduler, 40.0);
  // Whole periods are phase-invariant...
  EXPECT_NEAR(profile.training_seconds(0.0, 40.0, 17.0),
              profile.training_seconds(0.0, 40.0, 0.0), 1e-9);
  // ...while partial windows generally are not (the phase moves the busy
  // stretches around inside the window).
  EXPECT_NE(profile.training_seconds(0.0, 5.0, 0.0),
            profile.training_seconds(0.0, 5.0, 5.0));
  // A phase of exactly one period is a no-op.
  EXPECT_NEAR(profile.training_seconds(3.0, 17.0, 40.0),
              profile.training_seconds(3.0, 17.0, 0.0), 1e-9);
}

TEST(PeriodicIdleProfile, FullyIdleAndFullyBusyExtremes) {
  IdleScheduler idle(1.0);
  const PeriodicIdleProfile all_idle(idle, 100.0);
  EXPECT_NEAR(all_idle.idle_fraction(), 1.0, 1e-9);
  EXPECT_NEAR(all_idle.training_seconds(12.5, 62.5), 50.0, 1e-9);

  IdleScheduler busy(1.0);
  busy.add_task({"wall", 0.0, 100.0, 5});
  const PeriodicIdleProfile all_busy(busy, 100.0);
  EXPECT_NEAR(all_busy.idle_fraction(), 0.0, 1e-9);
  EXPECT_NEAR(all_busy.training_seconds(0.0, 1000.0), 0.0, 1e-9);
}

TEST(PeriodicIdleProfile, EmptyAndBackwardIntervalsAreZero) {
  IdleScheduler scheduler(1.0);
  const PeriodicIdleProfile profile(scheduler, 60.0);
  EXPECT_EQ(profile.training_seconds(10.0, 10.0), 0.0);
  EXPECT_EQ(profile.training_seconds(20.0, 10.0), 0.0);
}

// ---------------------------------------------------------------------------
// Power
// ---------------------------------------------------------------------------

TEST(EnergyModel, CompareIsConsistent) {
  const EnergyModel model(EdgeDevice::waggle_odroid_xu4());
  const EnergyReport report = model.compare(1e9, 1e12);
  EXPECT_DOUBLE_EQ(report.transmit_joules, model.transmit_joules(1e9));
  EXPECT_DOUBLE_EQ(report.compute_joules, model.compute_joules(1e12));
}

TEST(EnergyModel, BreakEvenIsFixedPoint) {
  const EnergyModel model(EdgeDevice::waggle_odroid_xu4());
  const double flops = 5e12;
  const double bytes = model.break_even_bytes(flops);
  EXPECT_NEAR(model.transmit_joules(bytes), model.compute_joules(flops),
              1e-6 * model.compute_joules(flops));
}

TEST(EnergyModel, BigDatasetsFavourEdgeTraining) {
  // The paper's Section I motivation: shipping a large on-node dataset
  // upstream costs more energy than training on it locally.
  const EnergyModel model(EdgeDevice::waggle_odroid_xu4());
  const double dataset = 1e9;            // 1 GB of harvested images
  const double epoch_flops = 1e12;       // a few epochs of a small CNN
  EXPECT_TRUE(model.compare(dataset, epoch_flops).edge_cheaper());
}

}  // namespace
}  // namespace edgetrain::edge
