// Validation of the memory model against the paper's Tables I-III.
//
// The paper's exact per-op inventory is not recoverable, but reverse
// engineering its tables fixes the *structure* exactly:
//   total = fixed + batch * act(img),  act(img) = act(224) * (img/224)^2,
//   fixed ~= 4x weight bytes.
// Our two activation policies bracket the paper's constant for every model
// (OutputsOnly < paper < OutputsPlusGradients), and the default policy's
// totals stay within ~10% at batch 1. Per-cell deviations are recorded in
// EXPERIMENTS.md by bench_table{1,2,3}.
#include "models/memory_model.hpp"

#include <gtest/gtest.h>

#include <array>

namespace edgetrain::models {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

// Paper Table I (MB), batch sizes {1,3,5,10,30,50} x ResNet{18,34,50,101,152}.
constexpr std::array<std::int64_t, 6> kTable1Batches{1, 3, 5, 10, 30, 50};
constexpr double kTable1[6][5] = {
    {230.05, 413.00, 620.27, 1027.21, 1410.62},
    {340.05, 580.42, 1091.11, 1732.33, 2405.14},
    {450.06, 747.85, 1561.94, 2437.45, 3399.67},
    {725.07, 1166.42, 2739.04, 4200.25, 5885.98},
    {1825.13, 2840.70, 7447.42, 11251.43, 15831.23},
    {2925.18, 4514.97, 12155.79, 18302.62, 25776.48},
};

// Paper Table II (MB), batch 1, image sizes {224,350,500,650,1100,1500}.
constexpr std::array<int, 6> kTable2Images{224, 350, 500, 650, 1100, 1500};
constexpr double kTable2[6][5] = {
    {230.05, 413.00, 620.27, 1027.21, 1410.62},
    {309.83, 534.96, 964.66, 1543.72, 2139.75},
    {449.21, 749.73, 1570.93, 2472.72, 3458.50},
    {639.07, 1039.08, 2387.54, 3682.00, 5161.76},
    {1496.10, 2346.95, 6073.06, 9208.30, 12961.96},
    {2628.70, 4075.07, 10944.42, 16515.11, 23277.27},
};

ResNetMemoryModel model_for(int index, ActivationPolicy policy,
                            SpatialMode mode) {
  return ResNetMemoryModel(ResNetSpec::make(all_resnet_variants()[
                               static_cast<std::size_t>(index)]),
                           policy, mode);
}

TEST(MemoryModel, FixedIsFourTimesWeights) {
  for (const ResNetVariant v : all_resnet_variants()) {
    const ResNetMemoryModel m(ResNetSpec::make(v));
    EXPECT_DOUBLE_EQ(m.fixed_bytes(), 4.0 * m.weight_bytes());
  }
}

TEST(MemoryModel, PaperFixedWithinTwoPercent) {
  // Reverse-engineered paper intercepts (MB): total at k -> 0.
  constexpr double kPaperFixed[5] = {175.04, 329.29, 384.85, 674.65, 913.36};
  for (int i = 0; i < 5; ++i) {
    const ResNetMemoryModel m = model_for(i, ActivationPolicy::OutputsOnly,
                                          SpatialMode::Exact);
    const double ours = m.fixed_bytes() / kMiB;
    EXPECT_NEAR(ours / kPaperFixed[i], 1.0, 0.025) << "model " << i;
  }
}

TEST(MemoryModel, PoliciesBracketPaperActivations) {
  // Reverse-engineered per-batch activation slopes from Table I (MB).
  constexpr double kPaperAct[5] = {55.00, 83.71, 235.42, 352.56, 497.26};
  for (int i = 0; i < 5; ++i) {
    const double lower = model_for(i, ActivationPolicy::OutputsOnly,
                                   SpatialMode::Exact)
                             .activation_bytes(224, 1) /
                         kMiB;
    const double upper = model_for(i, ActivationPolicy::OutputsPlusGradients,
                                   SpatialMode::Exact)
                             .activation_bytes(224, 1) /
                         kMiB;
    EXPECT_LT(lower, kPaperAct[i]) << "model " << i;
    EXPECT_GT(upper, kPaperAct[i]) << "model " << i;
  }
}

TEST(MemoryModel, Table1Batch1WithinTenPercent) {
  for (int m = 0; m < 5; ++m) {
    const ResNetMemoryModel model =
        model_for(m, ActivationPolicy::OutputsPlusGradients,
                  SpatialMode::Exact);
    const double ours = model.estimate(224, 1).total_mib();
    EXPECT_NEAR(ours / kTable1[0][m], 1.0, 0.10) << "model " << m;
  }
}

TEST(MemoryModel, Table1AllCellsWithinTwentyFivePercent) {
  for (int b = 0; b < 6; ++b) {
    for (int m = 0; m < 5; ++m) {
      const ResNetMemoryModel model =
          model_for(m, ActivationPolicy::OutputsPlusGradients,
                    SpatialMode::Exact);
      const double ours =
          model.estimate(224, kTable1Batches[static_cast<std::size_t>(b)])
              .total_mib();
      EXPECT_NEAR(ours / kTable1[b][m], 1.0, 0.25)
          << "batch " << kTable1Batches[static_cast<std::size_t>(b)]
          << " model " << m;
    }
  }
}

TEST(MemoryModel, Table2AreaScaledMatchesPaperStructure) {
  // The paper scales activations exactly with image area; in AreaScaled
  // mode every Table II cell must deviate from the paper only by the
  // activation-constant offset already present at 224 (same relative
  // deviation across image sizes, within numerical noise).
  for (int m = 0; m < 5; ++m) {
    const ResNetMemoryModel model = model_for(
        m, ActivationPolicy::OutputsPlusGradients, SpatialMode::AreaScaled);
    for (int row = 0; row < 6; ++row) {
      const double ours =
          model.estimate(kTable2Images[static_cast<std::size_t>(row)], 1)
              .total_mib();
      EXPECT_NEAR(ours / kTable2[row][m], 1.0, 0.25)
          << "image " << kTable2Images[static_cast<std::size_t>(row)]
          << " model " << m;
    }
  }
}

TEST(MemoryModel, FeasibilityBoundaryMatchesPaperAwayFromEdge) {
  // The 2 GB shading must agree with the paper for every cell whose value
  // is more than 15% away from the boundary.
  constexpr double kLimitMb = 2048.0;
  int checked = 0;
  for (int b = 0; b < 6; ++b) {
    for (int m = 0; m < 5; ++m) {
      if (std::abs(kTable1[b][m] - kLimitMb) / kLimitMb < 0.15) continue;
      const ResNetMemoryModel model =
          model_for(m, ActivationPolicy::OutputsPlusGradients,
                    SpatialMode::Exact);
      const double ours =
          model.estimate(224, kTable1Batches[static_cast<std::size_t>(b)])
              .total_mib();
      EXPECT_EQ(ours > kLimitMb, kTable1[b][m] > kLimitMb)
          << "batch " << kTable1Batches[static_cast<std::size_t>(b)]
          << " model " << m;
      ++checked;
    }
  }
  EXPECT_GE(checked, 25);  // nearly every cell is away from the boundary
}

TEST(MemoryModel, ExactModeVsAreaScaledAgreeAt224) {
  for (int m = 0; m < 5; ++m) {
    const ResNetMemoryModel exact =
        model_for(m, ActivationPolicy::OutputsPlusGradients,
                  SpatialMode::Exact);
    const ResNetMemoryModel scaled =
        model_for(m, ActivationPolicy::OutputsPlusGradients,
                  SpatialMode::AreaScaled);
    EXPECT_DOUBLE_EQ(exact.activation_bytes(224, 4),
                     scaled.activation_bytes(224, 4));
  }
}

TEST(MemoryModel, TotalsDecomposeExactly) {
  const ResNetMemoryModel m = model_for(2, ActivationPolicy::OutputsPlusGradients,
                                        SpatialMode::Exact);
  const MemoryBreakdown breakdown = m.estimate(350, 8);
  EXPECT_DOUBLE_EQ(breakdown.total_bytes(),
                   breakdown.fixed_bytes + breakdown.activation_bytes);
  EXPECT_DOUBLE_EQ(breakdown.fixed_bytes, 4.0 * breakdown.weight_bytes);
}

TEST(MemoryModel, WaggleConstantIsTwoGiB) {
  EXPECT_DOUBLE_EQ(kWaggleMemoryBytes, 2147483648.0);
}

}  // namespace
}  // namespace edgetrain::models
