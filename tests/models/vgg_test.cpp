#include "models/vgg.hpp"

#include <gtest/gtest.h>

#include "models/memory_model.hpp"

namespace edgetrain::models {
namespace {

// Canonical torchvision parameter counts (plain VGG, 1000 classes).
struct VggCase {
  VggVariant variant;
  std::int64_t params;
};

class VggParamTest : public ::testing::TestWithParam<VggCase> {};

TEST_P(VggParamTest, MatchesCanonicalValue) {
  const VggCase c = GetParam();
  EXPECT_EQ(VggSpec::make(c.variant).param_count(), c.params);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VggParamTest,
    ::testing::Values(VggCase{VggVariant::Vgg11, 132863336},
                      VggCase{VggVariant::Vgg13, 133047848},
                      VggCase{VggVariant::Vgg16, 138357544},
                      VggCase{VggVariant::Vgg19, 143667240}));

TEST(VggSpec, ActivationsLinearInBatch) {
  const VggSpec spec = VggSpec::make(VggVariant::Vgg16);
  const std::int64_t one = spec.activation_elems(224, 1);
  EXPECT_EQ(spec.activation_elems(224, 4), 4 * one);
}

TEST(VggSpec, DeeperVariantsUseMoreActivations) {
  std::int64_t prev = 0;
  for (const VggVariant v : all_vgg_variants()) {
    const std::int64_t elems = VggSpec::make(v).activation_elems(224, 1);
    EXPECT_GT(elems, prev) << name_of(v);
    prev = elems;
  }
}

TEST(VggSpec, FixedStateDominatesWaggleBudget) {
  // The edge-relevant headline: VGG's fixed training state (weights, grads,
  // two Adam moments = 16 bytes/param) consumes ~99% of the 2 GB budget
  // for every variant, and strictly exceeds it for VGG-16/19. Activation
  // checkpointing cannot reduce fixed state, so the VGG family is
  // effectively untrainable on the Waggle node no matter the schedule --
  // unlike every ResNet, whose fixed state tops out at ~45% of the budget.
  for (const VggVariant v : all_vgg_variants()) {
    const VggSpec spec = VggSpec::make(v);
    const double fixed_bytes =
        4.0 * static_cast<double>(spec.param_count()) * 4.0;
    EXPECT_GT(fixed_bytes, 0.98 * kWaggleMemoryBytes) << name_of(v);
    if (v == VggVariant::Vgg16 || v == VggVariant::Vgg19) {
      EXPECT_GT(fixed_bytes, kWaggleMemoryBytes) << name_of(v);
    }
  }
  // ResNet contrast: even ResNet-152's fixed state is under half the budget.
  const ResNetMemoryModel biggest(ResNetSpec::make(ResNetVariant::ResNet152));
  EXPECT_LT(biggest.fixed_bytes(), 0.5 * kWaggleMemoryBytes);
}

TEST(VggSpec, NamesAndDepths) {
  EXPECT_EQ(name_of(VggVariant::Vgg16), "VGG16");
  EXPECT_EQ(depth_of(VggVariant::Vgg19), 19);
  EXPECT_EQ(VggSpec::make(VggVariant::Vgg11).depth(), 11);
}

}  // namespace
}  // namespace edgetrain::models
