#include "models/linear_resnet.hpp"

#include <gtest/gtest.h>

#include "core/planner.hpp"

namespace edgetrain::models {
namespace {

ResNetMemoryModel model_of(ResNetVariant v) {
  return ResNetMemoryModel(ResNetSpec::make(v));
}

TEST(LinearResNet, DepthEqualsX) {
  EXPECT_EQ(LinearResNet::from_resnet(model_of(ResNetVariant::ResNet18), 224, 1)
                .depth,
            18);
  EXPECT_EQ(
      LinearResNet::from_resnet(model_of(ResNetVariant::ResNet152), 224, 1)
          .depth,
      152);
}

TEST(LinearResNet, PreservesTotalMemory) {
  // The homogenisation must keep fixed and total activation memory equal to
  // the source ResNet (the paper's defining property).
  for (const ResNetVariant v : all_resnet_variants()) {
    const ResNetMemoryModel model = model_of(v);
    const LinearResNet linear = LinearResNet::from_resnet(model, 500, 8);
    EXPECT_DOUBLE_EQ(linear.fixed_bytes, model.fixed_bytes());
    EXPECT_NEAR(linear.act_bytes_per_step * linear.depth,
                model.activation_bytes(500, 8),
                1.0);  // divide/multiply rounding only
  }
}

TEST(LinearResNet, BatchScalesPerStepActivation) {
  const ResNetMemoryModel model = model_of(ResNetVariant::ResNet34);
  const LinearResNet one = LinearResNet::from_resnet(model, 224, 1);
  const LinearResNet eight = LinearResNet::from_resnet(model, 224, 8);
  EXPECT_NEAR(eight.act_bytes_per_step / one.act_bytes_per_step, 8.0, 1e-9);
}

TEST(LinearResNet, ChainSpecRoundTrip) {
  const LinearResNet linear =
      LinearResNet::from_resnet(model_of(ResNetVariant::ResNet50), 224, 1);
  const core::ChainSpec spec = linear.to_chain_spec();
  EXPECT_EQ(spec.depth, 50);
  EXPECT_EQ(spec.name, "LinearResNet50");
  EXPECT_DOUBLE_EQ(spec.fixed_bytes, linear.fixed_bytes);
  EXPECT_DOUBLE_EQ(spec.activation_bytes_per_step, linear.act_bytes_per_step);
}

TEST(LinearResNet, PlannerFullStorageMatchesFullStorageBytes) {
  const LinearResNet linear =
      LinearResNet::from_resnet(model_of(ResNetVariant::ResNet18), 224, 1);
  const core::MemoryPlanner planner(linear.to_chain_spec());
  EXPECT_DOUBLE_EQ(planner.no_checkpoint_bytes(), linear.full_storage_bytes());
}

// The paper's Figure 1d headline: at batch 8 / image 500 nothing fits 2 GB
// without checkpointing ("even ResNet18 does not fit"), yet everything fits
// with a moderate recompute factor.
TEST(LinearResNet, Figure1dHeadline) {
  for (const ResNetVariant v : all_resnet_variants()) {
    const LinearResNet linear =
        LinearResNet::from_resnet(model_of(v), 500, 8);
    const core::MemoryPlanner planner(linear.to_chain_spec());
    EXPECT_GT(planner.no_checkpoint_bytes(), kWaggleMemoryBytes)
        << linear.name << " should NOT fit at rho=1";
    // The paper reads rho > 1.6 off Figure 1d; our activation constant is
    // ~20% above the paper's (see EXPERIMENTS.md), which shifts the largest
    // model's crossing to rho ~ 2.1. Assert a 2.5 budget fits everything
    // and that the crossing stays in the same moderate-rho regime.
    const core::PlanPoint at25 = planner.plan_for_rho(2.5);
    EXPECT_LT(at25.peak_bytes, kWaggleMemoryBytes)
        << linear.name << " should fit at rho=2.5";
    const core::PlanReport report =
        planner.report_for_device(kWaggleMemoryBytes);
    EXPECT_LT(report.min_rho_to_fit, 2.3) << linear.name;
  }
}

// Figure 1a: at batch 1 / image 224 everything fits even at rho = 1.
TEST(LinearResNet, Figure1aHeadline) {
  for (const ResNetVariant v : all_resnet_variants()) {
    const LinearResNet linear = LinearResNet::from_resnet(model_of(v), 224, 1);
    EXPECT_LT(linear.full_storage_bytes(), kWaggleMemoryBytes) << linear.name;
  }
}

}  // namespace
}  // namespace edgetrain::models
