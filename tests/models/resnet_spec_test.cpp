#include "models/resnet.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace edgetrain::models {
namespace {

// The canonical torchvision trainable-parameter counts (1000 classes).
struct ParamCase {
  ResNetVariant variant;
  std::int64_t params;
  int depth;
  int blocks;
};

class ParamCountTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ParamCountTest, MatchesCanonicalValue) {
  const ParamCase c = GetParam();
  const ResNetSpec spec = ResNetSpec::make(c.variant);
  EXPECT_EQ(spec.param_count(), c.params);
  EXPECT_EQ(spec.depth(), c.depth);
  // chain steps = stem + blocks + head
  EXPECT_EQ(spec.num_chain_steps(), c.blocks + 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParamCountTest,
    ::testing::Values(
        ParamCase{ResNetVariant::ResNet18, 11689512, 18, 8},
        ParamCase{ResNetVariant::ResNet34, 21797672, 34, 16},
        ParamCase{ResNetVariant::ResNet50, 25557032, 50, 16},
        ParamCase{ResNetVariant::ResNet101, 44549160, 101, 33},
        ParamCase{ResNetVariant::ResNet152, 60192808, 152, 50}));

TEST(ResNetSpec, ActivationsLinearInBatch) {
  const ResNetSpec spec = ResNetSpec::make(ResNetVariant::ResNet34);
  const std::int64_t one = spec.activation_elems(224, 1);
  for (const std::int64_t k : {2, 3, 8, 30}) {
    EXPECT_EQ(spec.activation_elems(224, k), k * one);
  }
}

TEST(ResNetSpec, ActivationsGrowWithImageSize) {
  const ResNetSpec spec = ResNetSpec::make(ResNetVariant::ResNet50);
  std::int64_t prev = 0;
  for (const int image : {64, 128, 224, 350, 500}) {
    const std::int64_t elems = spec.activation_elems(image, 1);
    EXPECT_GT(elems, prev);
    prev = elems;
  }
}

TEST(ResNetSpec, ActivationsApproximatelyAreaScaled) {
  // The exact conv arithmetic should track (s/224)^2 within a few percent
  // for sizes that are multiples of the stride structure.
  const ResNetSpec spec = ResNetSpec::make(ResNetVariant::ResNet18);
  const double base = static_cast<double>(spec.activation_elems(224, 1));
  for (const int image : {448, 896}) {
    const double scale = static_cast<double>(image) / 224.0;
    const double expect = base * scale * scale;
    const double got = static_cast<double>(spec.activation_elems(image, 1));
    EXPECT_NEAR(got / expect, 1.0, 0.03) << "image " << image;
  }
}

TEST(ResNetSpec, ChainStepActivationsSumToTotal) {
  for (const ResNetVariant v : all_resnet_variants()) {
    const ResNetSpec spec = ResNetSpec::make(v);
    const auto per_step = spec.chain_step_activation_elems(224, 2);
    const std::int64_t sum =
        std::accumulate(per_step.begin(), per_step.end(), std::int64_t{0});
    EXPECT_EQ(sum, spec.activation_elems(224, 2)) << spec.name();
    EXPECT_EQ(static_cast<int>(per_step.size()), spec.num_chain_steps());
  }
}

TEST(ResNetSpec, ChainStepCostsArePositiveAndConvDominated) {
  const ResNetSpec spec = ResNetSpec::make(ResNetVariant::ResNet18);
  const auto costs = spec.chain_step_forward_costs(224, 1);
  ASSERT_EQ(static_cast<int>(costs.size()), spec.num_chain_steps());
  double total = 0.0;
  for (const double c : costs) {
    EXPECT_GT(c, 0.0);
    total += c;
  }
  // ResNet-18 at 224 is ~1.8 GMAC; our op-level count should be in range.
  EXPECT_GT(total, 1.5e9);
  EXPECT_LT(total, 2.5e9);
}

TEST(ResNetSpec, BottleneckFlagMatchesVariant) {
  EXPECT_FALSE(uses_bottleneck(ResNetVariant::ResNet18));
  EXPECT_FALSE(uses_bottleneck(ResNetVariant::ResNet34));
  EXPECT_TRUE(uses_bottleneck(ResNetVariant::ResNet50));
  EXPECT_TRUE(uses_bottleneck(ResNetVariant::ResNet101));
  EXPECT_TRUE(uses_bottleneck(ResNetVariant::ResNet152));
}

TEST(ResNetSpec, CustomClassCountChangesOnlyHead) {
  const ResNetSpec base = ResNetSpec::make(ResNetVariant::ResNet18, 1000);
  const ResNetSpec small = ResNetSpec::make(ResNetVariant::ResNet18, 10);
  EXPECT_EQ(base.param_count() - small.param_count(),
            512 * 990 + 990);  // fc weight + bias delta
}

TEST(BuildResNetChain, ParamsMatchSpecAndForwardRuns) {
  std::mt19937 rng(401);
  // Use the 18-layer variant with a small class count on a small image.
  nn::LayerChain chain =
      build_resnet_chain(ResNetVariant::ResNet18, 10, 3, rng);
  const ResNetSpec spec = ResNetSpec::make(ResNetVariant::ResNet18, 10);
  EXPECT_EQ(chain.param_count(), spec.param_count());
  // The executable chain splits the stem into 4 layers and the head into 2.
  EXPECT_EQ(chain.size(), spec.num_chain_steps() + 4);

  Tensor x = Tensor::randn(Shape{1, 3, 64, 64}, rng);
  nn::RunContext ctx;
  ctx.save_for_backward = false;
  Tensor y = chain.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 10}));
}

}  // namespace
}  // namespace edgetrain::models
