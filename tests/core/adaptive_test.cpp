// Dynamic-ratio adaptive re-planning: the AdaptiveReplanner must start
// from the codec's worst-case planning ratio, latch measured per-slot
// drift past the threshold through the executor hooks, re-solve the slot
// count from the measured vector at the pass boundary, and leave the
// gradients bit-identical across the plan switch (checkpointing is exact;
// only the footprint/recompute trade changes).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "core/adaptive.hpp"
#include "core/executor.hpp"
#include "core/slot_codec.hpp"
#include "core/slot_store.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::core {
namespace {

/// Wraps a RamSlotStore (which is final) but reports a configurable
/// measured ratio for every slot -- drives the latch deterministically
/// without a real codec.
class FakeRatioStore : public SlotStore {
 public:
  explicit FakeRatioStore(int num_slots) : inner_(num_slots) {}
  void put(std::int32_t slot, const Tensor& value) override {
    inner_.put(slot, value);
  }
  [[nodiscard]] Tensor get(std::int32_t slot) override {
    return inner_.get(slot);
  }
  void drop(std::int32_t slot) override { inner_.drop(slot); }
  [[nodiscard]] std::size_t resident_bytes() const override {
    return inner_.resident_bytes();
  }
  [[nodiscard]] std::size_t external_bytes() const override { return 0; }
  [[nodiscard]] double measured_slot_ratio(std::int32_t) const override {
    return ratio;
  }
  double ratio = 1.0;

 private:
  RamSlotStore inner_;
};

AdaptiveReplannerOptions unit_options(double capacity) {
  AdaptiveReplannerOptions options;
  options.capacity_bytes = capacity;
  options.fixed_bytes = 0.0;
  options.activation_bytes_per_step = 1.0;
  options.fallback_ratio = 1.0;  // SlotCodec::Bitmap's planning ratio
  options.drift_threshold = 0.10;
  return options;
}

struct ToyPass {
  // Replays the replanner's current schedule on a tiny chain with the
  // hooks armed, so Store actions flow through the drift latch.
  static void run(AdaptiveReplanner& replanner, SlotStore& store,
                  nn::LayerChain& chain, const Tensor& input) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const std::vector<std::int32_t> labels{0};
    const LossGradFn loss_grad = [&](const Tensor& logits) {
      const ops::SoftmaxXentResult r =
          ops::softmax_xent_forward(logits, labels);
      return ops::softmax_xent_backward(r.probs, labels);
    };
    (void)executor.run(runner, replanner.schedule(), input, loss_grad,
                       store, replanner.hooks(store));
  }
};

TEST(AdaptiveReplannerTest, InitialPlanUsesWorstCaseFallback) {
  // capacity 2 + eps at act 1, fallback 1: exactly one free slot.
  AdaptiveReplanner replanner(8, unit_options(2.0 + 1e-9));
  EXPECT_EQ(replanner.free_slots(), 1);
  EXPECT_EQ(replanner.replans(), 0);
  EXPECT_FALSE(replanner.drift_latched());
  ASSERT_EQ(replanner.planned_ratios().size(), 1U);
  EXPECT_DOUBLE_EQ(replanner.planned_ratios()[0], 1.0);
  EXPECT_EQ(replanner.schedule().validate(), std::nullopt);
}

TEST(AdaptiveReplannerTest, RejectsImpossibleCapacity) {
  EXPECT_THROW(AdaptiveReplanner(8, unit_options(0.5)),
               std::invalid_argument);
}

TEST(AdaptiveReplannerTest, MeasuredDriftGrowsThePlanAtPassBoundary) {
  std::mt19937 rng(11);
  nn::LayerChain chain = models::build_mlp(6, 8, 6, 3, rng);
  const Tensor input = Tensor::randn(Shape{1, 6}, rng);
  AdaptiveReplanner replanner(chain.size(), unit_options(2.0 + 1e-9));
  ASSERT_EQ(replanner.free_slots(), 1);

  FakeRatioStore store(replanner.schedule().num_slots());
  store.ratio = 0.25;  // 4x better than the worst-case plan: 75% drift
  ToyPass::run(replanner, store, chain, input);
  EXPECT_TRUE(replanner.finish_pass(store));
  EXPECT_EQ(replanner.replans(), 1);
  // room = 1 activation unit at ratio 0.25 -> 4 slots now fit.
  EXPECT_EQ(replanner.free_slots(), 4);
  for (const double ratio : replanner.planned_ratios()) {
    EXPECT_DOUBLE_EQ(ratio, 0.25);
  }
  EXPECT_EQ(replanner.schedule().validate(), std::nullopt);

  // Steady state: the measurement now matches the plan -- no more churn.
  FakeRatioStore next(replanner.schedule().num_slots());
  next.ratio = 0.25;
  ToyPass::run(replanner, next, chain, input);
  EXPECT_FALSE(replanner.finish_pass(next));
  EXPECT_EQ(replanner.replans(), 1);
}

TEST(AdaptiveReplannerTest, DriftBelowThresholdDoesNotReplan) {
  std::mt19937 rng(12);
  nn::LayerChain chain = models::build_mlp(6, 8, 6, 3, rng);
  const Tensor input = Tensor::randn(Shape{1, 6}, rng);
  // capacity 2.8 at fallback 1.0 still buys one slot; at ratio ~0.9 it
  // would buy two -- so the only thing gating the second slot is whether
  // the drift latch arms.
  AdaptiveReplanner replanner(chain.size(), unit_options(2.8));

  FakeRatioStore store(replanner.schedule().num_slots());
  store.ratio = 0.92;  // 8% below the planned 1.0: inside the band
  ToyPass::run(replanner, store, chain, input);
  EXPECT_FALSE(replanner.drift_latched());
  EXPECT_FALSE(replanner.finish_pass(store));
  EXPECT_EQ(replanner.replans(), 0);
  EXPECT_EQ(replanner.free_slots(), 1);

  // 12% drift crosses the 10% threshold and re-plans.
  store.ratio = 0.88;
  ToyPass::run(replanner, store, chain, input);
  EXPECT_TRUE(replanner.finish_pass(store));
  EXPECT_EQ(replanner.replans(), 1);
  EXPECT_GT(replanner.free_slots(), 1);
}

TEST(AdaptiveReplannerTest,
     BitmapStoreDriftReplansAndGradientsStayBitIdentical) {
  // End-to-end: a real bitmap store on a residual chain whose every
  // boundary is post-ReLU (~50% zeros) measures far below the worst-case
  // plan, the re-plan buys more slots, and the gradient is bit-identical
  // before and after the plan switch (and to full storage).
  std::mt19937 rng(4040);
  nn::LayerChain chain;
  for (int i = 0; i < 8; ++i) {
    chain.push(std::make_unique<nn::BasicBlock>(4, 4, 1, rng));
  }
  const Tensor input = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  const std::vector<std::int32_t> labels{1};
  const double act_bytes =
      static_cast<double>(input.numel()) * sizeof(float);

  auto run = [&](const Schedule& schedule, SlotStore& store,
                 const ExecutorHooks& hooks) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const LossGradFn loss_grad = [&](const Tensor& logits) {
      const ops::SoftmaxXentResult r =
          ops::softmax_xent_forward(logits, labels);
      return ops::softmax_xent_backward(r.probs, labels);
    };
    const ExecutionResult result =
        executor.run(runner, schedule, input, loss_grad, store, hooks);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  RamSlotStore full_store(chain.size() + 1);
  const std::vector<Tensor> reference =
      run(full_storage_schedule(chain.size()), full_store, ExecutorHooks{});

  AdaptiveReplannerOptions options;
  options.capacity_bytes = (1.0 + 2.0) * act_bytes + 1.0;
  options.fixed_bytes = 0.0;
  options.activation_bytes_per_step = act_bytes;
  options.fallback_ratio = planning_bytes_ratio(SlotCodec::Bitmap);  // 1.0
  options.drift_threshold = 0.10;
  AdaptiveReplanner replanner(chain.size(), options);
  ASSERT_EQ(replanner.free_slots(), 2);

  // Pass 1 under the conservative plan.
  CompressedSlotStore store1(replanner.schedule().num_slots(),
                             SlotCodec::Bitmap);
  const std::vector<Tensor> pass1 =
      run(replanner.schedule(), store1, replanner.hooks(store1));
  ASSERT_EQ(pass1.size(), reference.size());
  for (std::size_t g = 0; g < pass1.size(); ++g) {
    EXPECT_EQ(Tensor::max_abs_diff(pass1[g], reference[g]), 0.0F) << g;
  }
  // Post-ReLU boundaries pack well below plaintext: the latch armed
  // mid-pass through the hooks.
  EXPECT_TRUE(replanner.drift_latched());
  ASSERT_TRUE(replanner.finish_pass(store1));
  EXPECT_EQ(replanner.replans(), 1);
  EXPECT_GT(replanner.free_slots(), 2);  // measured ratios bought slots

  // Pass 2 under the re-planned schedule: bit-identical gradients.
  CompressedSlotStore store2(replanner.schedule().num_slots(),
                             SlotCodec::Bitmap);
  const std::vector<Tensor> pass2 =
      run(replanner.schedule(), store2, replanner.hooks(store2));
  ASSERT_EQ(pass2.size(), reference.size());
  for (std::size_t g = 0; g < pass2.size(); ++g) {
    EXPECT_EQ(Tensor::max_abs_diff(pass2[g], reference[g]), 0.0F) << g;
  }
}

}  // namespace
}  // namespace edgetrain::core
