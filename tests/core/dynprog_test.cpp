#include "core/dynprog.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/revolve.hpp"

namespace edgetrain::core::hetero {
namespace {

std::vector<double> uniform_costs(int l) {
  return std::vector<double>(static_cast<std::size_t>(l), 1.0);
}

// With unit costs the heterogeneous DP must reduce exactly to Revolve.
class UniformEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(UniformEquivalenceTest, MatchesHomogeneousRevolve) {
  const int l = GetParam();
  const HeteroSolver solver(uniform_costs(l), l - 1);
  const revolve::RevolveTable table(l, std::max(l - 1, 0));
  for (int s = 0; s <= l - 1; ++s) {
    EXPECT_DOUBLE_EQ(solver.forward_cost(s),
                     static_cast<double>(table.forward_cost(l, s)))
        << "l=" << l << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, UniformEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 52));

TEST(HeteroSolver, SweepCostIsTotal) {
  const HeteroSolver solver({1.0, 2.0, 3.0}, 2);
  EXPECT_DOUBLE_EQ(solver.sweep_cost(), 6.0);
  // Full storage: F equals one sweep.
  EXPECT_DOUBLE_EQ(solver.forward_cost(2), 6.0);
}

TEST(HeteroSolver, RhoOneAtFullStorage) {
  const HeteroSolver solver({2.0, 1.0, 4.0, 1.0}, 3);
  EXPECT_DOUBLE_EQ(solver.recompute_factor(3), 1.0);
  EXPECT_GT(solver.recompute_factor(0), 1.0);
}

TEST(HeteroSolver, MonotoneInSlots) {
  const std::vector<double> costs{5.0, 1.0, 1.0, 7.0, 2.0, 2.0, 1.0};
  const HeteroSolver solver(costs, 6);
  double prev = solver.forward_cost(0);
  for (int s = 1; s <= 6; ++s) {
    EXPECT_LE(solver.forward_cost(s), prev);
    prev = solver.forward_cost(s);
  }
}

TEST(HeteroSolver, PrefersCheckpointsBeforeExpensiveSteps) {
  // One step is vastly more expensive; with a single slot the optimal
  // schedule must avoid re-running it more than the minimum.
  // Chain: [1, 1, 100, 1, 1]. With s=1 the checkpoint should be placed so
  // the expensive step is advanced through as rarely as possible.
  const HeteroSolver expensive({1.0, 1.0, 100.0, 1.0, 1.0}, 4);
  const HeteroSolver cheap(uniform_costs(5), 4);
  // Normalised overhead (F - sweep) should be far below re-running the
  // expensive step l times.
  const double overhead = expensive.forward_cost(1) - expensive.sweep_cost();
  EXPECT_LT(overhead, 110.0);  // at most one extra pass over the big step
}

TEST(HeteroSolver, MinSlotsForRho) {
  const HeteroSolver solver(uniform_costs(30), 29);
  for (const double rho : {1.1, 1.3, 1.7, 2.5}) {
    const int s = solver.min_free_slots_for_rho(rho);
    EXPECT_LE(solver.recompute_factor(s), rho + 1e-9);
    if (s > 0) EXPECT_GT(solver.recompute_factor(s - 1), rho);
  }
}

TEST(HeteroSolver, BwdRatioShiftsRho) {
  const HeteroSolver solver(uniform_costs(16), 15);
  // More expensive backwards dilute the recompute overhead.
  EXPECT_LT(solver.recompute_factor(2, 2.0), solver.recompute_factor(2, 1.0));
}

TEST(HeteroSolver, RejectsBadArguments) {
  EXPECT_THROW(HeteroSolver({}, 1), std::invalid_argument);
  EXPECT_THROW(HeteroSolver({1.0, -2.0}, 1), std::invalid_argument);
}

// Golden DP tables on hand-computed non-uniform cost vectors. Worked by
// hand from the recurrences:
//   R(a,a+1,s) = 0, F(a,a+1,s) = f_a
//   R(a,b,0)   = sum_{k=a+1}^{b-1} span(a,k)
//   F(a,b,0)   = span(a,b) + R(a,b,0)
//   F(a,b,s)   = min_j span(a,j) + F(j,b,s-1) + R(a,j,s)
//
// Costs {4,2,1}, one slot. Candidate splits for F(0,3,1):
//   j=1: span(0,1) + F(1,3,0) + R(0,1,1) = 4 + (3+2) + 0 = 9
//   j=2: span(0,2) + F(2,3,0) + R(0,2,1) = 6 + 1 + 0     = 13
// so the optimum checkpoints right after the expensive step.
TEST(HeteroSolver, GoldenTableExpensiveFirst) {
  const HeteroSolver solver({4.0, 2.0, 1.0}, 1);
  EXPECT_DOUBLE_EQ(solver.sweep_cost(), 7.0);
  // s=0 base: F = span(0,3) + span(0,1) + span(0,2) = 7 + 4 + 6.
  EXPECT_DOUBLE_EQ(solver.forward_cost(0), 17.0);
  EXPECT_DOUBLE_EQ(solver.forward_cost(1), 9.0);
  // rho = (F + bwd) / (sweep + bwd) with bwd_ratio=1: (9+7)/(7+7).
  EXPECT_DOUBLE_EQ(solver.recompute_factor(1), 16.0 / 14.0);
  EXPECT_DOUBLE_EQ(solver.recompute_factor(1, 1.0), 16.0 / 14.0);
  // Interpreter-convention advance costs (save-free bases):
  //   E(0,3,0) = R(0,3,0) = 10; E(0,3,1): j=1 -> 4 + R(1,3,0) = 6.
  EXPECT_DOUBLE_EQ(solver.advance_cost(0), 10.0);
  EXPECT_DOUBLE_EQ(solver.advance_cost(1), 6.0);
}

// Mirrored costs {1,2,4}: the optimal checkpoint flips to the other side
// of the chain (j=2, just before the expensive tail step):
//   j=1: 1 + (2+4+2) + 0 = 9
//   j=2: 3 + 4 + 0       = 8
TEST(HeteroSolver, GoldenTableExpensiveLast) {
  const HeteroSolver solver({1.0, 2.0, 4.0}, 1);
  EXPECT_DOUBLE_EQ(solver.forward_cost(0), 11.0);  // 7 + 1 + 3
  EXPECT_DOUBLE_EQ(solver.forward_cost(1), 8.0);
  // Unit-cost Revolve on l=3, s=1 would charge 1 extra advance; here the
  // measured table pays less than one mean step extra over the sweep.
  EXPECT_DOUBLE_EQ(solver.forward_cost(1) - solver.sweep_cost(), 1.0);
}

struct HeteroCase {
  int l;
  int s;
};

class HeteroScheduleTest : public ::testing::TestWithParam<HeteroCase> {};

TEST_P(HeteroScheduleTest, SchedulesValidateAndFitSlots) {
  const auto [l, s] = GetParam();
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(l));
  for (int i = 0; i < l; ++i) {
    costs.push_back(1.0 + static_cast<double>((i * 7) % 5));
  }
  const HeteroSolver solver(costs, s);
  const Schedule schedule = solver.make_schedule(s);
  EXPECT_EQ(schedule.validate(), std::nullopt) << "l=" << l << " s=" << s;
  const ScheduleStats stats = schedule.stats();
  EXPECT_EQ(stats.backwards, l);
  EXPECT_LE(stats.peak_memory_units, std::min(s, l - 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HeteroScheduleTest,
    ::testing::Values(HeteroCase{1, 0}, HeteroCase{3, 1}, HeteroCase{6, 0},
                      HeteroCase{6, 2}, HeteroCase{10, 3}, HeteroCase{18, 4},
                      HeteroCase{52, 6}));

}  // namespace
}  // namespace edgetrain::core::hetero
