#include "core/online.hpp"

#include <gtest/gtest.h>

#include "core/periodic.hpp"
#include "core/revolve.hpp"

namespace edgetrain::core::online {
namespace {

TEST(OnlineCheckpointer, StoresEveryStateWhileSlotsLast) {
  OnlineCheckpointer policy(4);
  for (std::int32_t s = 1; s <= 4; ++s) EXPECT_TRUE(policy.advance(s));
  EXPECT_EQ(policy.current_stride(), 1);
  EXPECT_EQ(policy.stored_states(), (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(OnlineCheckpointer, DoublesStrideWhenFull) {
  OnlineCheckpointer policy(4);
  for (std::int32_t s = 1; s <= 4; ++s) (void)policy.advance(s);
  // State 5 is not on the doubled grid; the doubling still happens lazily
  // at the next on-grid candidate.
  EXPECT_FALSE(policy.advance(5));
  EXPECT_TRUE(policy.advance(6));
  EXPECT_EQ(policy.current_stride(), 2);
  EXPECT_EQ(policy.stored_states(), (std::vector<std::int32_t>{0, 2, 4, 6}));
  EXPECT_GT(policy.evictions(), 0);
}

TEST(OnlineCheckpointer, SlotBudgetNeverExceeded) {
  for (const int slots : {1, 2, 3, 5, 8}) {
    OnlineCheckpointer policy(slots);
    for (std::int32_t s = 1; s <= 500; ++s) {
      (void)policy.advance(s);
      EXPECT_LE(static_cast<int>(policy.stored_states().size()), slots + 1)
          << "slots=" << slots << " state=" << s;
    }
  }
}

TEST(OnlineCheckpointer, PositionsStayEvenlySpread) {
  const OnlineCheckpointer policy = simulate_stream(333, 6);
  const auto states = policy.stored_states();
  // All stored states lie on the current stride grid.
  for (const std::int32_t s : states) {
    EXPECT_EQ(s % policy.current_stride(), 0);
  }
  // Largest gap (including the tail) is at most 2 * stride.
  std::int32_t prev = 0;
  std::int32_t max_gap = 0;
  for (std::size_t i = 1; i < states.size(); ++i) {
    max_gap = std::max(max_gap, states[i] - prev);
    prev = states[i];
  }
  max_gap = std::max(max_gap, 333 - prev);
  EXPECT_LE(max_gap, 2 * policy.current_stride());
}

TEST(OnlineCheckpointer, OutOfOrderStatesThrow) {
  OnlineCheckpointer policy(2);
  EXPECT_TRUE(policy.advance(1));
  EXPECT_THROW((void)policy.advance(3), std::logic_error);
}

TEST(OnlineCheckpointer, ZeroSlotsStoresNothing) {
  const OnlineCheckpointer policy = simulate_stream(40, 0);
  EXPECT_EQ(policy.stored_states(), (std::vector<std::int32_t>{0}));
  EXPECT_EQ(policy.reversal_cost(), 40LL * 39 / 2);
}

TEST(OnlineCheckpointer, ReversalCostWithinConstantOfOffline) {
  // Not knowing l in advance costs at most a small constant over offline
  // periodic placement with the same memory, and a bounded factor over the
  // offline-optimal Revolve.
  for (const int l : {37, 100, 152, 400}) {
    for (const int s : {2, 4, 8}) {
      const OnlineCheckpointer policy = simulate_stream(l, s);
      const std::int64_t online_total = l + policy.reversal_cost();
      const std::int64_t periodic_total = periodic::forward_cost(l, s);
      EXPECT_LE(online_total, 4 * periodic_total) << "l=" << l << " s=" << s;
      const std::int64_t optimal = revolve::forward_cost(l, s);
      EXPECT_GE(online_total, optimal);
    }
  }
}

struct OnlineCase {
  int l;
  int s;
};

class OnlineScheduleTest : public ::testing::TestWithParam<OnlineCase> {};

TEST_P(OnlineScheduleTest, SchedulesValidateAndFitMemory) {
  const auto [l, s] = GetParam();
  const OnlineCheckpointer policy = simulate_stream(l, s);
  const Schedule schedule = policy.make_schedule();
  EXPECT_EQ(schedule.validate(), std::nullopt) << "l=" << l << " s=" << s;
  const ScheduleStats stats = schedule.stats();
  EXPECT_EQ(stats.backwards, l);
  EXPECT_LE(stats.peak_memory_units, s + 2);
  // Executed advances = sweep + reversal re-advances.
  EXPECT_EQ(stats.advances, l + policy.reversal_cost());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OnlineScheduleTest,
    ::testing::Values(OnlineCase{1, 0}, OnlineCase{5, 2}, OnlineCase{16, 3},
                      OnlineCase{17, 3}, OnlineCase{64, 4}, OnlineCase{100, 6},
                      OnlineCase{152, 5}, OnlineCase{33, 1}));

}  // namespace
}  // namespace edgetrain::core::online
