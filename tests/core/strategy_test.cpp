#include "core/strategy.hpp"

#include <gtest/gtest.h>

namespace edgetrain::core {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

ChainSpec chain(double fixed_mib, double act_mib, int depth = 50) {
  ChainSpec spec;
  spec.name = "test-chain";
  spec.depth = depth;
  spec.fixed_bytes = fixed_mib * kMiB;
  spec.activation_bytes_per_step = act_mib * kMiB;
  return spec;
}

StrategyRequest request(ChainSpec spec, double device_mib,
                        double rho_budget = 2.0, bool storage = false) {
  StrategyRequest req;
  req.chain = std::move(spec);
  req.device_memory_bytes = device_mib * kMiB;
  req.rho_budget = rho_budget;
  req.has_local_storage = storage;
  return req;
}

TEST(Strategy, SmallModelNeedsNoCheckpointing) {
  const auto rec =
      recommend_strategy(request(chain(100.0, 1.0), 2048.0));
  EXPECT_EQ(rec.feasibility, Feasibility::FitsWithoutCheckpointing);
  EXPECT_DOUBLE_EQ(rec.rho, 1.0);
  EXPECT_GT(rec.recommended_batch, 1);
  EXPECT_NE(rec.rationale.find("rho=1"), std::string::npos);
}

TEST(Strategy, MidModelGetsRevolve) {
  // Full storage 400 + 50*30 = 1900 > 1024; fits checkpointed.
  const auto rec =
      recommend_strategy(request(chain(400.0, 30.0), 1024.0));
  EXPECT_EQ(rec.feasibility, Feasibility::FitsWithCheckpointing);
  EXPECT_GT(rec.rho, 1.0);
  EXPECT_LE(rec.rho, 2.0);
  EXPECT_LE(rec.peak_bytes, 1024.0 * kMiB);
  EXPECT_GT(rec.free_slots, 0);
}

TEST(Strategy, TightBudgetEscalatesToFp16) {
  // Full-precision Revolve within rho<=1.2 needs many slots; make the
  // device too small for them but big enough at half precision.
  ChainSpec spec = chain(400.0, 30.0, 101);
  const MemoryPlanner planner(spec);
  const PlanPoint full_precision = planner.plan_for_rho(1.2);
  // Pick a device between the fp32 and fp16 footprints at rho 1.2.
  const double device_mib =
      (full_precision.peak_bytes -
       0.45 * full_precision.total_slots * spec.activation_bytes_per_step) /
      kMiB;
  const auto rec =
      recommend_strategy(request(spec, device_mib, 1.2));
  EXPECT_EQ(rec.feasibility, Feasibility::FitsWithCompressedSlots);
  EXPECT_LE(rec.rho, 1.2);
  EXPECT_NE(rec.rationale.find("fp16"), std::string::npos);
}

TEST(Strategy, StorageEnablesDiskSpill) {
  // rho budget of 1.01 is unreachable in RAM for a big model, but a node
  // with an SD card can spill.
  const auto with_storage = recommend_strategy(
      request(chain(400.0, 30.0), 700.0, 1.01, /*storage=*/true));
  EXPECT_EQ(with_storage.feasibility, Feasibility::FitsWithDiskSpill);
  const auto without_storage = recommend_strategy(
      request(chain(400.0, 30.0), 700.0, 1.01, /*storage=*/false));
  EXPECT_EQ(without_storage.feasibility, Feasibility::Infeasible);
}

TEST(Strategy, FixedStateOverflowIsInfeasible) {
  const auto rec =
      recommend_strategy(request(chain(3000.0, 1.0), 2048.0, 4.0, true));
  EXPECT_EQ(rec.feasibility, Feasibility::Infeasible);
  EXPECT_NE(rec.rationale.find("fixed training state"), std::string::npos);
}

TEST(Strategy, FeasibilityNames) {
  EXPECT_EQ(to_string(Feasibility::FitsWithCheckpointing),
            "fits with Revolve checkpointing");
  EXPECT_EQ(to_string(Feasibility::Infeasible), "infeasible on this device");
}

TEST(Strategy, RationaleAlwaysNonEmpty) {
  for (const double device : {64.0, 500.0, 1024.0, 4096.0}) {
    const auto rec = recommend_strategy(request(chain(400.0, 20.0), device));
    EXPECT_FALSE(rec.rationale.empty()) << device;
  }
}

}  // namespace
}  // namespace edgetrain::core
