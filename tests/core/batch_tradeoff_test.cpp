#include "core/batch_tradeoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace edgetrain::core {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

BatchTradeoffConfig demo_config() {
  BatchTradeoffConfig config;
  config.depth = 50;
  config.capacity_bytes = 2048.0 * kMiB;
  config.fixed_bytes = 400.0 * kMiB;
  config.act_bytes_per_sample = 6.0 * kMiB;  // per chain step, batch 1
  config.efficiency_exponent = 1.0;
  config.efficiency_half_batch = 4.0;
  return config;
}

TEST(BatchTradeoff, SmallBatchFitsWithoutRecompute) {
  const BatchTradeoffPlanner planner(demo_config());
  // batch 1: 50 slots of 6 MB = 300 MB fits in 1648 MB of room.
  const BatchPoint point = planner.evaluate(1);
  EXPECT_TRUE(point.feasible);
  EXPECT_EQ(point.total_slots, 50);
  EXPECT_DOUBLE_EQ(point.rho, 1.0);
}

TEST(BatchTradeoff, RhoGrowsWithBatch) {
  const BatchTradeoffPlanner planner(demo_config());
  double prev = 0.0;
  for (const std::int64_t k : {1, 2, 4, 8, 16, 32}) {
    const BatchPoint point = planner.evaluate(k);
    ASSERT_TRUE(point.feasible) << "batch " << k;
    EXPECT_GE(point.rho, prev);
    EXPECT_LE(point.peak_bytes, demo_config().capacity_bytes);
    prev = point.rho;
  }
}

TEST(BatchTradeoff, InfeasibleWhenOneSlotExceedsRoom) {
  const BatchTradeoffPlanner planner(demo_config());
  // room = 1648 MB; one slot costs k*6 MB -> k > 274 is infeasible.
  EXPECT_TRUE(planner.evaluate(274).feasible);
  EXPECT_FALSE(planner.evaluate(275).feasible);
  EXPECT_TRUE(std::isinf(planner.evaluate(1000).time_per_sample));
}

TEST(BatchTradeoff, EfficiencySaturates) {
  const BatchTradeoffPlanner planner(demo_config());
  const BatchPoint small = planner.evaluate(1);
  const BatchPoint large = planner.evaluate(64);
  EXPECT_LT(small.efficiency, 0.3);
  EXPECT_GT(large.efficiency, 0.9);
}

// The paper's closing claim: despite rho growing with batch size, the
// optimal batch under a 2 GB cap is well above 1 once vectorisation
// efficiency is accounted for.
TEST(BatchTradeoff, OptimalBatchAboveOneWithEfficiency) {
  const BatchTradeoffPlanner planner(demo_config());
  const BatchPoint best = planner.best(128);
  EXPECT_TRUE(best.feasible);
  EXPECT_GT(best.batch, 1);
  EXPECT_LT(best.time_per_sample, planner.evaluate(1).time_per_sample);
}

TEST(BatchTradeoff, NoEfficiencyMeansBatchOne) {
  BatchTradeoffConfig config = demo_config();
  config.efficiency_exponent = 0.0;  // flat efficiency: recompute only
  const BatchTradeoffPlanner planner(config);
  const BatchPoint best = planner.best(64);
  EXPECT_EQ(best.batch, 1);  // rho is monotone in batch, so batch 1 wins
}

TEST(BatchTradeoff, SweepMatchesEvaluate) {
  const BatchTradeoffPlanner planner(demo_config());
  const auto points = planner.sweep({1, 3, 9});
  ASSERT_EQ(points.size(), 3U);
  EXPECT_EQ(points[1].batch, 3);
  EXPECT_DOUBLE_EQ(points[2].rho, planner.evaluate(9).rho);
}

TEST(BatchTradeoff, RejectsBadConfig) {
  BatchTradeoffConfig bad = demo_config();
  bad.depth = 0;
  EXPECT_THROW(BatchTradeoffPlanner{bad}, std::invalid_argument);
  bad = demo_config();
  bad.act_bytes_per_sample = 0.0;
  EXPECT_THROW(BatchTradeoffPlanner{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::core
