#include "core/revolve.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

namespace edgetrain::core::revolve {
namespace {

TEST(BinomialBeta, MatchesPascal) {
  // beta(s,t) = C(s+t, s): check the Pascal recurrence and known values.
  EXPECT_EQ(binomial_beta(0, 5), 1);
  EXPECT_EQ(binomial_beta(5, 0), 1);
  EXPECT_EQ(binomial_beta(1, 4), 5);
  EXPECT_EQ(binomial_beta(2, 2), 6);
  EXPECT_EQ(binomial_beta(3, 3), 20);
  EXPECT_EQ(binomial_beta(10, 10), 184756);
  for (int s = 1; s <= 8; ++s) {
    for (int t = 1; t <= 8; ++t) {
      EXPECT_EQ(binomial_beta(s, t),
                binomial_beta(s - 1, t) + binomial_beta(s, t - 1));
    }
  }
}

TEST(BinomialBeta, NegativeTIsZero) {
  EXPECT_EQ(binomial_beta(3, -1), 0);
}

TEST(ForwardCost, BaseCases) {
  // F(1, s) = 1 for any s.
  EXPECT_EQ(forward_cost(1, 0), 1);
  EXPECT_EQ(forward_cost(1, 5), 1);
  // F(l, 0) = l(l+1)/2 (re-advance from the input for every step).
  EXPECT_EQ(forward_cost(2, 0), 3);
  EXPECT_EQ(forward_cost(5, 0), 15);
  EXPECT_EQ(forward_cost(10, 0), 55);
  // Full storage: F(l, l-1) = l.
  for (const int l : {1, 2, 3, 7, 20}) {
    EXPECT_EQ(forward_cost(l, l - 1), l) << "l=" << l;
  }
}

TEST(ReversalCost, BaseCases) {
  EXPECT_EQ(reversal_cost(1, 0), 0);
  EXPECT_EQ(reversal_cost(2, 0), 1);
  EXPECT_EQ(reversal_cost(5, 0), 10);  // l(l-1)/2
  // Reversal starts with only the segment input stored, so even with
  // unlimited slots one full re-advance (l-1 steps, storing everything on
  // the way) is unavoidable.
  for (const int l : {2, 3, 7, 20}) {
    EXPECT_EQ(reversal_cost(l, l - 1), l - 1) << "l=" << l;
  }
}

// Theory check against Griewank-Walther: the classical binomial count
// t*l - beta(s+1, t-1) + 1 is the optimum of the *youturn* model (each
// backward re-runs its step's forward). Our activation-checkpoint model
// lets a Backward run directly off a stored boundary state, so the DP is
// bounded above by the closed form and meets it at full storage.
class ClosedFormTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormTest, DpBoundedByYouturnClosedForm) {
  const int s = GetParam();
  const int max_l = 240;
  const RevolveTable table(max_l, s);
  for (int l = 1; l <= max_l; ++l) {
    EXPECT_LE(table.forward_cost(l, s), closed_form_forward_cost(l, s))
        << "l=" << l << " s=" << s;
    // Both models agree on the sweep floor and full storage.
    EXPECT_GE(table.forward_cost(l, s), l);
    if (s >= l - 1) {
      EXPECT_EQ(table.forward_cost(l, s), closed_form_forward_cost(l, s));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, ClosedFormTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 10, 16, 25));

// ---------------------------------------------------------------------------
// Ground-truth optimality: exhaustive Dijkstra over the true machine model
// (stored-state set, current state, adjoint frontier) for small chains.
// ---------------------------------------------------------------------------

/// Minimal advances to fully reverse an l-chain with at most `cap` stored
/// states (input included), computed by uniform-cost search over the exact
/// state space. Backward(i) requires current == i and is free; Store /
/// Restore / Free are free; Forward costs 1.
std::int64_t brute_force_min_advances(int l, int cap) {
  struct State {
    std::uint32_t stored;  // bitmask over states 0..l
    std::int8_t current;   // -1 = none
    std::int8_t frontier;  // next backward is frontier-1
    bool swept;            // the loss at state_l has been computed
    bool operator==(const State&) const = default;
  };
  struct Hash {
    std::size_t operator()(const State& s) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(s.stored) << 18) ^
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(s.current))
           << 10) ^
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(s.frontier))
           << 2) ^
          static_cast<std::uint64_t>(s.swept));
    }
  };
  std::unordered_map<State, std::int64_t, Hash> best;
  using Entry = std::pair<std::int64_t, State>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);

  const State start{1U, 0, static_cast<std::int8_t>(l), false};
  best[start] = 0;
  queue.push({0, start});
  std::int64_t answer = -1;
  while (!queue.empty()) {
    const auto [cost, state] = queue.top();
    queue.pop();
    auto it = best.find(state);
    if (it != best.end() && it->second < cost) continue;
    if (state.frontier == 0) {
      answer = cost;
      break;
    }
    auto relax = [&](const State& next, std::int64_t c) {
      auto found = best.find(next);
      if (found == best.end() || found->second > c) {
        best[next] = c;
        queue.push({c, next});
      }
    };
    // Advance (only useful below the frontier).
    if (state.current >= 0 && state.current < state.frontier) {
      State next = state;
      next.current = static_cast<std::int8_t>(state.current + 1);
      if (next.current == l) next.swept = true;
      relax(next, cost + 1);
    }
    // Store current state (if capacity remains and it is not stored).
    if (state.current >= 0 &&
        (state.stored & (1U << state.current)) == 0U &&
        std::popcount(state.stored) < cap) {
      State next = state;
      next.stored |= 1U << state.current;
      relax(next, cost);
    }
    // Restore any stored state.
    for (int i = 0; i <= l; ++i) {
      if ((state.stored & (1U << i)) != 0U && state.current != i) {
        State next = state;
        next.current = static_cast<std::int8_t>(i);
        relax(next, cost);
      }
    }
    // Free any stored state except the input.
    for (int i = 1; i <= l; ++i) {
      if ((state.stored & (1U << i)) != 0U) {
        State next = state;
        next.stored &= ~(1U << i);
        relax(next, cost);
      }
    }
    // Backward (free): needs current == frontier-1 and, for the first
    // backward, the loss to have been computed (the sweep reached state_l).
    if (state.current == state.frontier - 1 && state.swept) {
      State next = state;
      next.frontier = static_cast<std::int8_t>(state.frontier - 1);
      // The consumed state is no longer useful; drop it if stored.
      next.stored &= ~(1U << state.current);
      next.current = -1;
      relax(next, cost);
    }
  }
  return answer;
}

struct BruteCase {
  int l;
  int s;  // free slots (input excluded), cap = s + 1
};

class BruteForceTest : public ::testing::TestWithParam<BruteCase> {};

TEST_P(BruteForceTest, DpIsOptimal) {
  const auto [l, s] = GetParam();
  // brute force counts advances for sweep + reversal; our F counts total
  // forward executions: they are the same quantity (the sweep is advances).
  const std::int64_t brute = brute_force_min_advances(l, s + 1);
  EXPECT_EQ(forward_cost(l, s), brute) << "l=" << l << " s=" << s;
}

INSTANTIATE_TEST_SUITE_P(
    SmallChains, BruteForceTest,
    ::testing::Values(BruteCase{1, 0}, BruteCase{2, 0}, BruteCase{2, 1},
                      BruteCase{3, 0}, BruteCase{3, 1}, BruteCase{3, 2},
                      BruteCase{4, 1}, BruteCase{4, 2}, BruteCase{5, 1},
                      BruteCase{5, 2}, BruteCase{6, 1}, BruteCase{6, 2},
                      BruteCase{7, 2}, BruteCase{7, 3}, BruteCase{8, 2},
                      BruteCase{9, 3}, BruteCase{10, 2}, BruteCase{11, 3}));

TEST(ForwardCost, MonotoneNonIncreasingInSlots) {
  const int l = 64;
  const RevolveTable table(l, l - 1);
  for (int s = 1; s <= l - 1; ++s) {
    EXPECT_LE(table.forward_cost(l, s), table.forward_cost(l, s - 1));
  }
}

TEST(ForwardCost, MonotoneNondecreasingInLength) {
  const RevolveTable table(100, 6);
  for (int l = 2; l <= 100; ++l) {
    EXPECT_GE(table.forward_cost(l, 6), table.forward_cost(l - 1, 6));
  }
}

TEST(ForwardCost, ClampsSlotsAboveLMinusOne) {
  EXPECT_EQ(forward_cost(5, 100), 5);
}

TEST(RecomputeFactor, OneAtFullStorageAndDecreasing) {
  const int l = 50;
  EXPECT_DOUBLE_EQ(recompute_factor(l, l - 1), 1.0);
  double prev = recompute_factor(l, 0);
  EXPECT_GT(prev, 1.0);
  for (int s = 1; s < l; ++s) {
    const double rho = recompute_factor(l, s);
    EXPECT_LE(rho, prev + 1e-12);
    prev = rho;
  }
}

TEST(MinFreeSlots, AchievesBudgetTightly) {
  const int l = 152;  // ResNet-152's LinearResNet depth
  for (const double rho : {1.05, 1.2, 1.5, 2.0, 3.0}) {
    const int s = min_free_slots_for_rho(l, rho);
    EXPECT_LE(recompute_factor(l, s), rho + 1e-12);
    if (s > 0) {
      EXPECT_GT(recompute_factor(l, s - 1), rho) << "not minimal at rho=" << rho;
    }
  }
}

TEST(MinFreeSlots, RhoOneRequiresFullStorage) {
  EXPECT_EQ(min_free_slots_for_rho(20, 1.0), 19);
  EXPECT_EQ(min_free_slots_for_rho(20, 0.5), 19);
}

TEST(MinFreeSlots, ForCostSemantics) {
  EXPECT_EQ(min_free_slots_for_cost(10, 9), -1);   // below the sweep cost
  EXPECT_EQ(min_free_slots_for_cost(10, 10), 9);   // rho = 1
  EXPECT_EQ(min_free_slots_for_cost(10, 55), 0);   // quadratic fallback fits
}

// The classic sub-linear memory result: with s ~ log2(l) slots the work
// stays within a small constant of the ideal.
TEST(ForwardCost, LogarithmicSlotsGiveSmallRho) {
  const int l = 512;
  const RevolveTable table(l, 12);
  const double rho =
      static_cast<double>(table.forward_cost(l, 10) + l) / (2.0 * l);
  EXPECT_LT(rho, 3.0);
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

struct ScheduleCase {
  int l;
  int s;
};

class RevolveScheduleTest
    : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(RevolveScheduleTest, ValidatesAndMeetsBounds) {
  const auto [l, s] = GetParam();
  const Schedule schedule = make_schedule(l, s);
  EXPECT_EQ(schedule.validate(), std::nullopt) << "l=" << l << " s=" << s;

  const ScheduleStats stats = schedule.stats();
  EXPECT_EQ(stats.backwards, l);
  EXPECT_EQ(stats.forward_saves, l);  // one re-materialisation per backward
  // Analytic model: peak memory = (s+1) checkpoints (input discounted, live
  // frontier counted); the emitted schedule must replay to exactly that.
  const int s_eff = std::min(s, l - 1);
  EXPECT_EQ(stats.peak_memory_units, s_eff + 1);
  // The executor's advances never exceed the analytic forward count (the
  // analytic count pays for re-materialisations the executor folds into
  // its ForwardSaves).
  EXPECT_LE(stats.advances, forward_cost(l, s));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RevolveScheduleTest,
    ::testing::Values(ScheduleCase{1, 0}, ScheduleCase{2, 0},
                      ScheduleCase{2, 1}, ScheduleCase{3, 1},
                      ScheduleCase{5, 0}, ScheduleCase{5, 2},
                      ScheduleCase{8, 3}, ScheduleCase{16, 1},
                      ScheduleCase{16, 4}, ScheduleCase{16, 15},
                      ScheduleCase{33, 5}, ScheduleCase{64, 7},
                      ScheduleCase{101, 3}, ScheduleCase{152, 10}));

TEST(RevolveSchedule, AdvancesDecreaseWithMoreSlots) {
  const int l = 40;
  std::int64_t prev = make_schedule(l, 0).stats().advances;
  for (int s = 1; s < l; ++s) {
    const std::int64_t advances = make_schedule(l, s).stats().advances;
    EXPECT_LE(advances, prev);
    prev = advances;
  }
  // Revolve-style execution always pays the sweep as plain advances and one
  // ForwardSave per backward; at full slots only the sweep remains.
  EXPECT_EQ(prev, l - 1);
}

TEST(RevolveSchedule, RejectsBadArguments) {
  EXPECT_THROW((void)make_schedule(0, 1), std::invalid_argument);
}

TEST(RevolveTable, RejectsBadArguments) {
  EXPECT_THROW(RevolveTable(0, 1), std::invalid_argument);
  EXPECT_THROW(RevolveTable(5, -1), std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::core::revolve
