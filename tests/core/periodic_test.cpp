#include "core/periodic.hpp"

#include <gtest/gtest.h>

#include "core/revolve.hpp"
#include "core/sequential.hpp"

namespace edgetrain::core::periodic {
namespace {

TEST(PeriodicCost, BaseCases) {
  // s = 0: one segment of length l -> l + l(l-1)/2 (same as Revolve's base).
  EXPECT_EQ(forward_cost(1, 0), 1);
  EXPECT_EQ(forward_cost(4, 0), 4 + 6);
  EXPECT_EQ(forward_cost(10, 0), 10 + 45);
  // s >= l-1: segments of length 1, no re-advances.
  EXPECT_EQ(forward_cost(7, 6), 7);
  EXPECT_EQ(forward_cost(7, 100), 7);
}

TEST(PeriodicCost, EvenSplitExample) {
  // l = 12, s = 2 -> 3 segments of 4: 12 + 3 * (4*3/2) = 12 + 18.
  EXPECT_EQ(forward_cost(12, 2), 30);
  // l = 10, s = 2 -> segments 4,3,3: 10 + 6 + 3 + 3 = 22.
  EXPECT_EQ(forward_cost(10, 2), 22);
}

TEST(PeriodicCost, MonotoneInSlots) {
  for (const int l : {5, 18, 64, 152}) {
    std::int64_t prev = forward_cost(l, 0);
    for (int s = 1; s < l; ++s) {
      const std::int64_t cost = forward_cost(l, s);
      EXPECT_LE(cost, prev) << "l=" << l << " s=" << s;
      prev = cost;
    }
  }
}

TEST(PeriodicCost, RevolveDominatesEverywhere) {
  for (const int l : {5, 18, 34, 50, 101, 152}) {
    const revolve::RevolveTable table(l, l - 1);
    for (int s = 0; s < l; ++s) {
      EXPECT_LE(table.forward_cost(l, s), forward_cost(l, s))
          << "l=" << l << " s=" << s;
    }
  }
}

TEST(PeriodicCost, RejectsBadArguments) {
  EXPECT_THROW((void)forward_cost(0, 1), std::invalid_argument);
  EXPECT_THROW((void)forward_cost(5, -1), std::invalid_argument);
}

TEST(PeriodicRho, OneOnlyAtFullStorage) {
  EXPECT_DOUBLE_EQ(recompute_factor(20, 19), 1.0);
  EXPECT_GT(recompute_factor(20, 5), 1.0);
}

struct PeriodicCase {
  int l;
  int s;
};

class PeriodicScheduleTest : public ::testing::TestWithParam<PeriodicCase> {};

TEST_P(PeriodicScheduleTest, ValidatesAndFitsMemory) {
  const auto [l, s] = GetParam();
  const Schedule schedule = make_schedule(l, s);
  EXPECT_EQ(schedule.validate(), std::nullopt) << "l=" << l << " s=" << s;
  const ScheduleStats stats = schedule.stats();
  EXPECT_EQ(stats.backwards, l);
  EXPECT_EQ(stats.forward_saves, l);
  const int s_eff = std::min(s, l - 1);
  EXPECT_EQ(stats.peak_memory_units, s_eff + 1);
  // The emitter folds the last backward into the sweep, so executed
  // advances stay at or below the analytic figure.
  EXPECT_LE(stats.advances, forward_cost(l, s));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PeriodicScheduleTest,
    ::testing::Values(PeriodicCase{1, 0}, PeriodicCase{2, 0},
                      PeriodicCase{5, 1}, PeriodicCase{10, 2},
                      PeriodicCase{12, 3}, PeriodicCase{13, 3},
                      PeriodicCase{33, 7}, PeriodicCase{152, 11},
                      PeriodicCase{20, 19}));

TEST(PeriodicVsSequential, TradeoffDirections) {
  // At the same slot count, periodic uses less memory (s+1 units vs
  // s + last-segment) but more work.
  const int l = 60;
  for (const int s : {2, 4, 6}) {
    const std::int64_t periodic_mem =
        make_schedule(l, s).stats().peak_memory_units;
    const std::int64_t seq_mem = seq::memory_units(l, s + 1);
    EXPECT_LT(periodic_mem, seq_mem) << "s=" << s;
    EXPECT_GT(forward_cost(l, s), seq::forward_cost(l, s + 1)) << "s=" << s;
  }
}

}  // namespace
}  // namespace edgetrain::core::periodic
