// The keystone integration test: checkpointed execution of a real network
// must produce bit-identical gradients to full storage, stay within the
// schedule's slot bound, and use measurably less memory.
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/revolve.hpp"
#include "core/sequential.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::core {
namespace {

struct GradSnapshot {
  Tensor input_grad;
  std::vector<Tensor> param_grads;
};

/// Runs one training pass of `chain` under `schedule` and snapshots all
/// gradients. Parameters are NOT updated.
GradSnapshot run_pass(nn::LayerChain& chain, const Schedule& schedule,
                      const Tensor& input,
                      const std::vector<std::int32_t>& labels,
                      std::size_t* peak_bytes = nullptr) {
  chain.zero_grad();
  chain.clear_saved();
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  runner.begin_pass();
  ScheduleExecutor executor;
  const LossGradFn loss_grad = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult result =
        ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(result.probs, labels);
  };
  const ExecutionResult result =
      executor.run(runner, schedule, input, loss_grad);
  if (peak_bytes != nullptr) {
    *peak_bytes = result.peak_tracked_bytes - result.baseline_bytes;
  }
  GradSnapshot snapshot;
  snapshot.input_grad = result.input_grad.clone();
  for (const nn::ParamRef& p : chain.params()) {
    snapshot.param_grads.push_back(p.grad->clone());
  }
  return snapshot;
}

void expect_identical(const GradSnapshot& a, const GradSnapshot& b) {
  EXPECT_EQ(Tensor::max_abs_diff(a.input_grad, b.input_grad), 0.0F);
  ASSERT_EQ(a.param_grads.size(), b.param_grads.size());
  for (std::size_t i = 0; i < a.param_grads.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(a.param_grads[i], b.param_grads[i]), 0.0F)
        << "param " << i;
  }
}

class RevolveGradEquivalenceTest : public ::testing::TestWithParam<int> {};

// Bit-identical gradients for every Revolve slot count on a CNN chain with
// conv, batch-norm, pooling and residual blocks.
TEST_P(RevolveGradEquivalenceTest, MatchesFullStorage) {
  const int free_slots = GetParam();
  std::mt19937 rng(99);
  nn::LayerChain chain =
      models::build_mini_resnet(1, 4, 3, 1, rng);  // 8 chain steps
  const int l = chain.size();
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, rng);
  const std::vector<std::int32_t> labels{0, 2};

  const GradSnapshot reference =
      run_pass(chain, full_storage_schedule(l), input, labels);
  const GradSnapshot checkpointed = run_pass(
      chain, revolve::make_schedule(l, std::min(free_slots, l - 1)), input,
      labels);
  expect_identical(reference, checkpointed);
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, RevolveGradEquivalenceTest,
                         ::testing::Values(0, 1, 2, 3, 5, 7));

class SequentialGradEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SequentialGradEquivalenceTest, MatchesFullStorage) {
  const int segments = GetParam();
  std::mt19937 rng(77);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, rng);
  const int l = chain.size();
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, rng);
  const std::vector<std::int32_t> labels{1, 2};

  const GradSnapshot reference =
      run_pass(chain, full_storage_schedule(l), input, labels);
  const GradSnapshot checkpointed =
      run_pass(chain, seq::make_schedule(l, std::min(segments, l)), input,
               labels);
  expect_identical(reference, checkpointed);
}

INSTANTIATE_TEST_SUITE_P(Segments, SequentialGradEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Executor, BatchNormRunningStatsNotDoubleUpdated) {
  // Run the same pass full-storage and checkpointed on two identically
  // initialised chains; running statistics must end up identical even
  // though the checkpointed pass re-forwards BN layers.
  auto make_chain = [] {
    std::mt19937 rng(123);
    return models::build_mini_resnet(1, 4, 3, 1, rng);
  };
  nn::LayerChain full = make_chain();
  nn::LayerChain ckpt = make_chain();
  std::mt19937 rng(5);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, rng);
  const std::vector<std::int32_t> labels{0, 1};

  (void)run_pass(full, full_storage_schedule(full.size()), input, labels);
  (void)run_pass(ckpt, revolve::make_schedule(ckpt.size(), 1), input, labels);

  // Compare the BN running stats layer by layer.
  for (int i = 0; i < full.size(); ++i) {
    auto* bn_full = dynamic_cast<nn::BatchNorm2d*>(&full.layer(i));
    auto* bn_ckpt = dynamic_cast<nn::BatchNorm2d*>(&ckpt.layer(i));
    ASSERT_EQ(bn_full == nullptr, bn_ckpt == nullptr);
    if (bn_full == nullptr) continue;
    EXPECT_EQ(Tensor::max_abs_diff(bn_full->running_mean(),
                                   bn_ckpt->running_mean()),
              0.0F);
    EXPECT_EQ(Tensor::max_abs_diff(bn_full->running_var(),
                                   bn_ckpt->running_var()),
              0.0F);
  }
}

TEST(Executor, DropoutGradsIdenticalUnderCheckpointing) {
  // Stochastic layers must replay their masks during recomputation: a chain
  // with dropout still yields bit-identical gradients to full storage.
  auto build = [] {
    std::mt19937 rng(555);
    nn::LayerChain chain;
    chain.push(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, false, rng));
    chain.push(std::make_unique<nn::ReLU>());
    chain.push(std::make_unique<nn::Dropout>(0.4F));
    chain.push(std::make_unique<nn::Conv2d>(4, 4, 3, 1, 1, false, rng));
    chain.push(std::make_unique<nn::Dropout>(0.4F, /*seed=*/77));
    chain.push(std::make_unique<nn::GlobalAvgPool>());
    chain.push(std::make_unique<nn::Linear>(4, 3, true, rng));
    return chain;
  };
  nn::LayerChain chain = build();
  std::mt19937 rng(556);
  Tensor input = Tensor::randn(Shape{2, 1, 10, 10}, rng);
  const std::vector<std::int32_t> labels{0, 2};

  const GradSnapshot reference =
      run_pass(chain, full_storage_schedule(chain.size()), input, labels);
  const GradSnapshot checkpointed = run_pass(
      chain, revolve::make_schedule(chain.size(), 1), input, labels);
  expect_identical(reference, checkpointed);
}

TEST(Executor, DropoutMasksDifferAcrossPasses) {
  std::mt19937 rng(557);
  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Dropout>(0.5F));
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  Tensor x = Tensor::full(Shape{1, 256}, 1.0F).reshaped(Shape{1, 256});

  runner.begin_pass();
  Tensor first = runner.forward(0, x, false);
  runner.begin_pass();
  Tensor second = runner.forward(0, x, false);
  EXPECT_GT(Tensor::max_abs_diff(first, second), 0.0F);
}

TEST(Executor, CheckpointingReducesMeasuredPeakMemory) {
  // A deep homogeneous conv chain: the measured footprint of a one-slot
  // Revolve pass must be well below full storage.
  std::mt19937 rng(11);
  nn::LayerChain chain = models::build_conv_chain(40, 8, rng);
  Tensor input = Tensor::randn(Shape{1, 8, 16, 16}, rng);
  // Conv chains have no classifier; seed with a ones cotangent.
  const LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };

  auto measure = [&](const Schedule& schedule) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const ExecutionResult result = executor.run(runner, schedule, input, seed);
    return result.peak_tracked_bytes - result.baseline_bytes;
  };

  const std::size_t full = measure(full_storage_schedule(40));
  const std::size_t tight = measure(revolve::make_schedule(40, 1));
  EXPECT_LT(static_cast<double>(tight), 0.6 * static_cast<double>(full));
}

TEST(Executor, MeasuredPeakTracksSlotCount) {
  std::mt19937 rng(13);
  nn::LayerChain chain = models::build_conv_chain(20, 8, rng);
  Tensor input = Tensor::randn(Shape{1, 8, 12, 12}, rng);
  const LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };
  std::size_t prev = 0;
  for (const int s : {1, 3, 7, 15, 19}) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const ExecutionResult result =
        executor.run(runner, revolve::make_schedule(20, s), input, seed);
    const std::size_t peak =
        result.peak_tracked_bytes - result.baseline_bytes;
    if (prev != 0) EXPECT_GE(peak, prev);  // more slots -> more memory
    prev = peak;
  }
}

TEST(Executor, OutputIsChainOutput) {
  std::mt19937 rng(17);
  nn::LayerChain chain = models::build_conv_chain(4, 4, rng);
  Tensor input = Tensor::randn(Shape{1, 4, 6, 6}, rng);
  const LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 0.0F);
  };
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  runner.begin_pass();
  ScheduleExecutor executor;
  const ExecutionResult result =
      executor.run(runner, revolve::make_schedule(4, 1), input, seed);
  ASSERT_TRUE(result.output.defined());
  // Reference forward.
  chain.clear_saved();
  nn::RunContext ctx;
  ctx.save_for_backward = false;
  ctx.first_visit = false;
  Tensor reference = chain.forward(input, ctx);
  EXPECT_LT(Tensor::max_abs_diff(result.output, reference), 1e-6F);
}

// Failure injection: malformed schedules must surface as exceptions, never
// as silent wrong results or undefined behaviour.
class ExecutorFailureTest : public ::testing::Test {
 protected:
  ExecutorFailureTest() : rng_(91) {
    chain_ = models::build_conv_chain(3, 4, rng_);
    input_ = Tensor::randn(Shape{1, 4, 6, 6}, rng_);
  }

  void expect_throws(const Schedule& schedule) {
    nn::LayerChainRunner runner(chain_, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const LossGradFn seed = [](const Tensor& output) {
      return Tensor::full(output.shape(), 0.0F);
    };
    EXPECT_THROW((void)executor.run(runner, schedule, input_, seed),
                 std::logic_error);
    chain_.clear_saved();
  }

  std::mt19937 rng_;
  nn::LayerChain chain_;
  Tensor input_;
};

TEST_F(ExecutorFailureTest, ForwardFromWrongState) {
  Schedule bad(3, 1);
  bad.store(0, 0);
  bad.forward(1);  // current state is 0
  expect_throws(bad);
}

TEST_F(ExecutorFailureTest, RestoreFromEmptySlot) {
  Schedule bad(3, 2);
  bad.store(0, 0);
  bad.restore(0, 1);
  bad.forward_save(0);
  expect_throws(bad);
}

TEST_F(ExecutorFailureTest, BackwardBeforeOutputExists) {
  Schedule bad(3, 1);
  bad.store(0, 0);
  bad.forward_save(0);
  bad.backward(0);  // seeding requires the chain output first
  expect_throws(bad);
}

TEST_F(ExecutorFailureTest, BackwardWithoutSavedInternals) {
  Schedule bad(3, 1);
  bad.store(0, 0);
  bad.forward(0);
  bad.forward(1);
  bad.forward(2);
  bad.restore(0, 0);
  // Step 2 was never run in saving mode; the layer must refuse.
  Schedule seeded(3, 1);
  seeded.store(0, 0);
  seeded.forward(0);
  seeded.forward(1);
  seeded.forward_save(2);
  seeded.backward(2);
  seeded.backward(1);  // no ForwardSave(1) happened
  expect_throws(seeded);
}

TEST_F(ExecutorFailureTest, ScheduleNeverReachingOutput) {
  Schedule bad(3, 1);
  bad.store(0, 0);
  bad.forward(0);
  expect_throws(bad);
}

TEST(Executor, MismatchedStepsThrows) {
  std::mt19937 rng(19);
  nn::LayerChain chain = models::build_conv_chain(4, 4, rng);
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  ScheduleExecutor executor;
  Tensor input = Tensor::randn(Shape{1, 4, 6, 6}, rng);
  const LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 0.0F);
  };
  EXPECT_THROW(
      (void)executor.run(runner, revolve::make_schedule(5, 1), input, seed),
      std::logic_error);
}

}  // namespace
}  // namespace edgetrain::core
