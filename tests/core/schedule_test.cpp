#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "core/executor.hpp"

namespace edgetrain::core {
namespace {

Schedule tiny_valid_schedule() {
  // l = 2, 2 slots: store input, save-forward both steps, reverse.
  Schedule s(2, 2);
  s.store(0, 0);
  s.forward_save(0);
  s.forward_save(1);
  s.backward(1);
  s.backward(0);
  s.free(0);
  return s;
}

TEST(Schedule, ValidScheduleValidates) {
  EXPECT_EQ(tiny_valid_schedule().validate(), std::nullopt);
}

TEST(Schedule, StatsCountsActions) {
  const ScheduleStats stats = tiny_valid_schedule().stats();
  EXPECT_EQ(stats.advances, 0);
  EXPECT_EQ(stats.forward_saves, 2);
  EXPECT_EQ(stats.backwards, 2);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_EQ(stats.restores, 0);
  EXPECT_EQ(stats.peak_slots_in_use, 1);
  // input slot discounted: peak units = 1 slot + 2 live saves - 1 = 2.
  EXPECT_EQ(stats.peak_memory_units, 2);
}

TEST(Schedule, FullStorageHelperValidatesAndReplaysToL) {
  for (const int l : {1, 2, 3, 5, 9, 17}) {
    const Schedule s = full_storage_schedule(l);
    EXPECT_EQ(s.validate(), std::nullopt) << "l=" << l;
    const ScheduleStats stats = s.stats();
    EXPECT_EQ(stats.advances, 0);
    EXPECT_EQ(stats.forward_saves, l);
    EXPECT_EQ(stats.backwards, l);
    EXPECT_EQ(stats.peak_memory_units, l);
    EXPECT_DOUBLE_EQ(stats.recompute_factor_strict(l), 1.0);
  }
}

TEST(Schedule, RejectsForwardFromWrongState) {
  Schedule s(2, 1);
  s.store(0, 0);
  s.forward_save(1);  // current state is 0
  const auto error = s.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("current state"), std::string::npos);
}

TEST(Schedule, RejectsBackwardWithoutSavedIntermediates) {
  Schedule s(1, 1);
  s.store(0, 0);
  s.forward(0);  // plain advance, nothing saved
  s.backward(0);
  ASSERT_TRUE(s.validate().has_value());
}

TEST(Schedule, RejectsOutOfOrderBackward) {
  Schedule s(2, 1);
  s.store(0, 0);
  s.forward_save(0);
  s.backward(0);  // must reverse step 1 first
  ASSERT_TRUE(s.validate().has_value());
}

TEST(Schedule, RejectsRestoreFromEmptySlot) {
  Schedule s(1, 2);
  s.restore(0, 1);
  ASSERT_TRUE(s.validate().has_value());
}

TEST(Schedule, RejectsRestoreOfWrongState) {
  Schedule s(2, 1);
  s.store(0, 0);
  s.forward(0);
  s.restore(1, 0);  // slot holds state 0, not 1
  ASSERT_TRUE(s.validate().has_value());
}

TEST(Schedule, RejectsSlotOutOfRange) {
  Schedule s(1, 1);
  s.store(0, 3);
  ASSERT_TRUE(s.validate().has_value());
}

TEST(Schedule, RejectsIncompleteReversal) {
  Schedule s(2, 1);
  s.store(0, 0);
  s.forward(0);
  s.forward_save(1);
  s.backward(1);
  const auto error = s.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("incomplete"), std::string::npos);
}

TEST(Schedule, RejectsDoubleForwardSaveOfLiveStep) {
  Schedule s(2, 2);
  s.store(0, 0);
  s.forward_save(0);
  s.restore(0, 0);
  s.forward_save(0);  // intermediates of step 0 already live
  ASSERT_TRUE(s.validate().has_value());
}

TEST(Schedule, ToStringMentionsEveryAction) {
  const Schedule s = tiny_valid_schedule();
  const std::string text = s.to_string();
  EXPECT_NE(text.find("Store"), std::string::npos);
  EXPECT_NE(text.find("ForwardSave"), std::string::npos);
  EXPECT_NE(text.find("Backward"), std::string::npos);
  EXPECT_NE(text.find("Free"), std::string::npos);
}

TEST(Schedule, ActionTypeNames) {
  EXPECT_EQ(to_string(ActionType::Forward), "Forward");
  EXPECT_EQ(to_string(ActionType::Restore), "Restore");
}

TEST(ScheduleStats, StrictRecomputeFactorCountsEverything) {
  Schedule s(2, 2);
  s.store(0, 0);
  s.forward(0);
  s.store(1, 1);
  s.forward_save(1);
  s.backward(1);
  s.restore(0, 0);
  s.forward_save(0);
  s.backward(0);
  EXPECT_EQ(s.validate(), std::nullopt);
  const ScheduleStats stats = s.stats();
  // (1 advance + 2 saves + 2 backwards) / 4
  EXPECT_DOUBLE_EQ(stats.recompute_factor_strict(2), 1.25);
}

}  // namespace
}  // namespace edgetrain::core
