// Fuzz coverage: randomly-structured (but valid-by-construction) schedules
// must validate, pass the schedule abstract interpreter's invariant checks,
// respect their slot bound, and produce gradients bit-identical to full
// storage on a real network. This guards the executor and layer
// save/backward contracts against schedule shapes none of the
// deterministic schedulers happen to emit, and cross-checks the
// interpreter itself against execution ground truth: a schedule the
// interpreter proves sound must in fact reproduce the reference gradient.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "analysis/interp.hpp"
#include "core/async_slot_store.hpp"
#include "core/disk_revolve.hpp"
#include "core/dynprog.hpp"
#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "core/sequential.hpp"
#include "core/slot_store.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::core {
namespace {

/// Emits a random reversal of [a, b) with random split points, using the
/// free slots in `pool`. Mirrors the revolve emitter's structure but picks
/// splits (and occasional slot-less fallbacks) at random.
class RandomScheduleBuilder {
 public:
  RandomScheduleBuilder(int num_steps, int free_slots, std::mt19937& rng)
      : schedule_(num_steps, free_slots + 1), rng_(rng) {
    for (std::int32_t slot = free_slots; slot >= 1; --slot) {
      pool_.push_back(slot);
    }
  }

  Schedule build() {
    schedule_.store(0, 0);
    sweep(0, schedule_.num_steps(), 0);
    schedule_.free(0);
    return std::move(schedule_);
  }

 private:
  void reverse_one(std::int32_t step) {
    schedule_.forward_save(step);
    schedule_.backward(step);
  }

  void quadratic_base(std::int32_t a, std::int32_t b, std::int32_t input_slot,
                      bool from_sweep) {
    if (from_sweep) {
      for (std::int32_t i = a; i < b - 1; ++i) schedule_.forward(i);
      reverse_one(b - 1);
      for (std::int32_t i = b - 2; i >= a; --i) {
        schedule_.restore(a, input_slot);
        for (std::int32_t k = a; k < i; ++k) schedule_.forward(k);
        reverse_one(i);
      }
    } else {
      for (std::int32_t i = b - 1; i >= a; --i) {
        if (i != b - 1) schedule_.restore(a, input_slot);
        for (std::int32_t k = a; k < i; ++k) schedule_.forward(k);
        reverse_one(i);
      }
    }
  }

  void sweep(std::int32_t a, std::int32_t b, std::int32_t input_slot) {
    if (b - a == 1) {
      reverse_one(a);
      return;
    }
    if (pool_.empty() || coin(0.25F)) {  // random slot-less fallback
      quadratic_base(a, b, input_slot, /*from_sweep=*/true);
      return;
    }
    const std::int32_t j = pick_split(a, b);
    for (std::int32_t i = a; i < j; ++i) schedule_.forward(i);
    const std::int32_t slot = take_slot();
    schedule_.store(j, slot);
    sweep(j, b, slot);
    give_slot(slot);
    schedule_.restore(a, input_slot);
    reverse(a, j, input_slot);
  }

  void reverse(std::int32_t a, std::int32_t b, std::int32_t input_slot) {
    if (b - a == 1) {
      reverse_one(a);
      return;
    }
    if (pool_.empty() || coin(0.25F)) {
      quadratic_base(a, b, input_slot, /*from_sweep=*/false);
      return;
    }
    const std::int32_t j = pick_split(a, b);
    for (std::int32_t i = a; i < j; ++i) schedule_.forward(i);
    const std::int32_t slot = take_slot();
    schedule_.store(j, slot);
    reverse(j, b, slot);
    give_slot(slot);
    schedule_.restore(a, input_slot);
    reverse(a, j, input_slot);
  }

  bool coin(float p) {
    return std::uniform_real_distribution<float>(0.0F, 1.0F)(rng_) < p;
  }
  std::int32_t pick_split(std::int32_t a, std::int32_t b) {
    return std::uniform_int_distribution<std::int32_t>(a + 1, b - 1)(rng_);
  }
  std::int32_t take_slot() {
    const std::int32_t slot = pool_.back();
    pool_.pop_back();
    return slot;
  }
  void give_slot(std::int32_t slot) { pool_.push_back(slot); }

  Schedule schedule_;
  std::mt19937& rng_;
  std::vector<std::int32_t> pool_;
};

class ScheduleFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleFuzzTest, RandomSchedulesValidateAndMatchFullStorage) {
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam()));
  std::uniform_int_distribution<int> l_dist(1, 12);
  std::uniform_int_distribution<int> s_dist(0, 5);

  // A fixed small network reused across the fuzz iterations of this seed.
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};

  auto run = [&](const Schedule& schedule) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const LossGradFn loss_grad = [&](const Tensor& logits) {
      const ops::SoftmaxXentResult r =
          ops::softmax_xent_forward(logits, labels);
      return ops::softmax_xent_backward(r.probs, labels);
    };
    const ExecutionResult result =
        executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const int l = chain.size();
  const std::vector<Tensor> reference = run(full_storage_schedule(l));

  for (int iter = 0; iter < 6; ++iter) {
    const int s = s_dist(rng);
    (void)l_dist;
    RandomScheduleBuilder builder(l, s, rng);
    const Schedule schedule = builder.build();
    ASSERT_EQ(schedule.validate(), std::nullopt)
        << "seed=" << GetParam() << " iter=" << iter << "\n"
        << schedule.to_string();
    const ScheduleStats stats = schedule.stats();
    EXPECT_LE(stats.peak_slots_in_use, s + 1);
    EXPECT_EQ(stats.backwards, l);

    // The abstract interpreter must prove the schedule sound: every
    // backward consumes a live intermediate, every restore reads claimed
    // state, and the activation peak stays within the slot budget.
    analysis::Bounds bounds;
    bounds.max_memory_units = s + 1;
    bounds.max_ram_slots = s + 1;
    const analysis::Report verdict =
        analysis::interpret(schedule, analysis::CostModel{}, bounds);
    EXPECT_EQ(verdict.error_count(), 0)
        << "seed=" << GetParam() << " iter=" << iter << "\n"
        << verdict.summary();

    const std::vector<Tensor> grads = run(schedule);
    ASSERT_EQ(grads.size(), reference.size());
    for (std::size_t g = 0; g < grads.size(); ++g) {
      EXPECT_EQ(Tensor::max_abs_diff(grads[g], reference[g]), 0.0F)
          << "seed=" << GetParam() << " iter=" << iter << " grad=" << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzzTest,
                         ::testing::Range(1, 13));

// Two-level (RAM + disk) Revolve schedules, fuzzed over the solver's
// parameter space: every schedule must validate, earn a clean interpreter
// verdict under the two-tier cost model, and reproduce the full-storage
// gradient bit-for-bit when executed (disk slots are held by a RAM store
// here; slot *placement* is what is under test, not the spill IO itself,
// which slot_store_test covers).
TEST(ScheduleFuzzDiskTest, DiskRevolveSchedulesInterpretCleanAndMatch) {
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};

  auto run = [&](const Schedule& schedule) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const LossGradFn loss_grad = [&](const Tensor& logits) {
      const ops::SoftmaxXentResult r =
          ops::softmax_xent_forward(logits, labels);
      return ops::softmax_xent_backward(r.probs, labels);
    };
    const ExecutionResult result =
        executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const int l = chain.size();
  const std::vector<Tensor> reference = run(full_storage_schedule(l));

  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> ram_dist(1, 3);
  std::uniform_real_distribution<double> io_dist(0.5, 8.0);
  for (int iter = 0; iter < 8; ++iter) {
    disk::DiskRevolveOptions options;
    options.ram_slots = ram_dist(rng);
    options.write_cost = io_dist(rng);
    options.read_cost = io_dist(rng);
    options.allow_disk = iter % 4 != 3;  // mix in the single-level fallback
    const disk::DiskRevolveSolver solver(l, options);
    const int ram = solver.options().ram_slots;  // clamped to l - 1
    const Schedule schedule = solver.make_schedule();
    ASSERT_EQ(schedule.validate(), std::nullopt)
        << "iter=" << iter << "\n" << schedule.to_string();

    analysis::CostModel cost;
    cost.first_disk_slot = ram + 1;
    cost.disk_write_cost = options.write_cost;
    cost.disk_read_cost = options.read_cost;
    analysis::Bounds bounds;
    bounds.max_memory_units = ram + 1;
    bounds.max_ram_slots = ram + 1;
    bounds.max_total_cost =
        solver.forward_cost() + static_cast<double>(l);
    const analysis::Report verdict =
        analysis::interpret(schedule, cost, bounds);
    EXPECT_EQ(verdict.error_count(), 0)
        << "iter=" << iter << " ram=" << ram << "\n" << verdict.summary();

    const std::vector<Tensor> grads = run(schedule);
    ASSERT_EQ(grads.size(), reference.size());
    for (std::size_t g = 0; g < grads.size(); ++g) {
      EXPECT_EQ(Tensor::max_abs_diff(grads[g], reference[g]), 0.0F)
          << "iter=" << iter << " grad=" << g;
    }
  }
}

// Two-level schedules solved with overlap pricing and *executed through the
// async store*: gradients must stay bit-identical to full storage while the
// spills round-trip through real background IO, the sampled peak
// resident_bytes() must stay within the planner's activation bound plus the
// staging budget, and the overlapped-IO abstract interpretation must come
// back clean against sound bounds (the serial wall-clock of the same
// schedule; planner memory + write staging).
TEST(ScheduleFuzzDiskTest, AsyncStoreMatchesFullStorageWithinStagingBudget) {
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};
  const int l = chain.size();

  const LossGradFn loss_grad = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(r.probs, labels);
  };

  auto run = [&](const Schedule& schedule, SlotStore* store,
                 std::size_t* peak_resident) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    ExecutorHooks hooks;
    if (store != nullptr && peak_resident != nullptr) {
      hooks.on_action = [&](std::int64_t, const Action&) {
        *peak_resident = std::max(*peak_resident, store->resident_bytes());
      };
    }
    const ExecutionResult result =
        store != nullptr
            ? executor.run(runner, schedule, input, loss_grad, *store, hooks)
            : executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const std::vector<Tensor> reference =
      run(full_storage_schedule(l), nullptr, nullptr);

  // Largest boundary activation: the unit behind the planner's byte bound.
  std::size_t unit_bytes = input.bytes();
  {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    Tensor cur = input;
    for (int i = 0; i < l; ++i) {
      cur = runner.forward(static_cast<std::int32_t>(i), cur, false);
      unit_bytes = std::max(unit_bytes, cur.bytes());
    }
  }

  const std::string dir =
      std::string(::testing::TempDir()) + "/fuzz_async_store";
  std::filesystem::create_directories(dir);

  std::mt19937 rng(4321);
  std::uniform_int_distribution<int> ram_dist(1, 3);
  std::uniform_real_distribution<double> io_dist(0.5, 8.0);
  for (int iter = 0; iter < 6; ++iter) {
    disk::DiskRevolveOptions options;
    options.ram_slots = ram_dist(rng);
    options.write_cost = io_dist(rng);
    options.read_cost = io_dist(rng);
    options.overlap_io = true;
    const disk::DiskRevolveSolver solver(l, options);
    const int ram = solver.options().ram_slots;
    const Schedule schedule = solver.make_schedule();
    ASSERT_EQ(schedule.validate(), std::nullopt)
        << "iter=" << iter << "\n" << schedule.to_string();

    // Overlapped-IO abstract interpretation against sound bounds: stalls
    // only accrue while the IO worker is busy, so the pipeline wall-clock
    // can never exceed the serial total of the same schedule; staging adds
    // at most the write budget on top of the planner's activation units.
    analysis::CostModel cost;
    cost.first_disk_slot = ram + 1;
    cost.disk_write_cost = options.write_cost;
    cost.disk_read_cost = options.read_cost;
    cost.overlapped_io = true;
    analysis::CostModel serial = cost;
    serial.overlapped_io = false;
    const analysis::Report serial_verdict =
        analysis::interpret(schedule, serial, analysis::Bounds{});
    analysis::Bounds bounds;
    bounds.max_memory_units = ram + 1 + cost.write_staging_slots;
    bounds.max_ram_slots = ram + 1;
    bounds.max_total_cost = serial_verdict.facts.total_cost();
    const analysis::Report verdict =
        analysis::interpret(schedule, cost, bounds);
    EXPECT_EQ(verdict.error_count(), 0)
        << "iter=" << iter << " ram=" << ram << "\n" << verdict.summary();
    EXPECT_LE(verdict.facts.io_cost, verdict.facts.io_busy_cost + 1e-9)
        << "iter=" << iter;
    EXPECT_LE(verdict.facts.peak_staged_slots,
              cost.write_staging_slots + cost.read_staging_slots)
        << "iter=" << iter;

    // Execute the same schedule through real background IO.
    AsyncDiskSlotStore store(schedule.num_slots(), ram + 1, dir);
    std::size_t peak_resident = 0;
    const std::vector<Tensor> grads = run(schedule, &store, &peak_resident);
    store.flush();

    ASSERT_EQ(grads.size(), reference.size());
    for (std::size_t g = 0; g < grads.size(); ++g) {
      EXPECT_EQ(Tensor::max_abs_diff(grads[g], reference[g]), 0.0F)
          << "iter=" << iter << " grad=" << g;
    }
    // Planner bound (ram slots + input) + one write-behind + one prefetch
    // staging buffer, in units of the largest boundary activation.
    const std::size_t budget_units = static_cast<std::size_t>(ram + 1 + 2);
    EXPECT_LE(peak_resident, budget_units * unit_bytes)
        << "iter=" << iter << " ram=" << ram
        << " peak=" << peak_resident << " unit=" << unit_bytes;
  }
}

// Schedules from all four scheduler families executed through the
// byte-plane RLE lossless slot codec: gradients must stay bit-identical to
// full storage (the codec's whole contract), the sampled peak
// resident_bytes() must respect the schedule's slot bound (compression can
// only shrink it), and the measured encoded footprint must land strictly
// below plaintext on real (post-conv/ReLU) activations.
TEST(ScheduleFuzzCodecTest, AllFamiliesBitIdenticalUnderLosslessCodec) {
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};
  const int l = chain.size();

  const LossGradFn loss_grad = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(r.probs, labels);
  };

  auto run = [&](const Schedule& schedule, SlotStore* store,
                 std::size_t* peak_resident) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    ExecutorHooks hooks;
    if (store != nullptr && peak_resident != nullptr) {
      hooks.on_action = [&](std::int64_t, const Action&) {
        *peak_resident = std::max(*peak_resident, store->resident_bytes());
      };
    }
    const ExecutionResult result =
        store != nullptr
            ? executor.run(runner, schedule, input, loss_grad, *store, hooks)
            : executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const std::vector<Tensor> reference =
      run(full_storage_schedule(l), nullptr, nullptr);

  // Largest boundary activation: the byte unit behind the slot bound.
  std::size_t unit_bytes = input.bytes();
  {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    Tensor cur = input;
    for (int i = 0; i < l; ++i) {
      cur = runner.forward(static_cast<std::int32_t>(i), cur, false);
      unit_bytes = std::max(unit_bytes, cur.bytes());
    }
  }

  std::vector<std::pair<std::string, Schedule>> schedules;
  schedules.emplace_back("revolve(s=2)", revolve::make_schedule(l, 2));
  schedules.emplace_back("revolve(s=0)", revolve::make_schedule(l, 0));
  schedules.emplace_back("sequential(k=3)", seq::make_schedule(l, 3));
  {
    const hetero::HeteroSolver solver(
        std::vector<double>(static_cast<std::size_t>(l), 1.0), 2);
    schedules.emplace_back("hetero(s=2)", solver.make_schedule(2));
  }
  {
    disk::DiskRevolveOptions options;
    options.ram_slots = 2;
    schedules.emplace_back("disk(ram=2)",
                           disk::DiskRevolveSolver(l, options).make_schedule());
  }

  for (const auto& [name, schedule] : schedules) {
    ASSERT_EQ(schedule.validate(), std::nullopt)
        << name << "\n" << schedule.to_string();
    CompressedSlotStore store(schedule.num_slots(), SlotCodec::Lossless);
    std::size_t peak_resident = 0;
    const std::vector<Tensor> grads = run(schedule, &store, &peak_resident);

    ASSERT_EQ(grads.size(), reference.size()) << name;
    for (std::size_t g = 0; g < grads.size(); ++g) {
      EXPECT_EQ(Tensor::max_abs_diff(grads[g], reference[g]), 0.0F)
          << name << " grad=" << g;
    }

    // The encoded footprint can never exceed the plaintext slot bound
    // (raw fallback adds 1 mode byte per resident blob at worst)...
    const ScheduleStats stats = schedule.stats();
    EXPECT_LE(peak_resident,
              static_cast<std::size_t>(stats.peak_slots_in_use) * unit_bytes +
                  static_cast<std::size_t>(schedule.num_slots()))
        << name << " peak=" << peak_resident << " unit=" << unit_bytes;
    // ...and on real post-conv/ReLU activations it must be strictly
    // smaller in aggregate: compression with teeth, not just a
    // pass-through. revolve(s=0) is exempt: its only checkpoint is the
    // network *input* -- white randn noise, incompressible by design --
    // where the raw fallback's 1 mode byte per put is the whole story.
    EXPECT_GT(store.plain_bytes_seen(), 0U) << name;
    if (stats.peak_slots_in_use > 1) {
      EXPECT_LT(store.encoded_bytes_seen(), store.plain_bytes_seen()) << name;
      EXPECT_LT(store.measured_ratio(), 1.0) << name;
    }
  }
}

// Schedules from all four scheduler families executed through the sparse
// bitmap codec: "nonzero" is the 32-bit pattern, so restore is bit-exact
// and every family's gradients must match full storage exactly. The store
// must also have recorded a measured per-slot ratio strictly below the
// codec's worst-case planning ratio on these (post-conv/ReLU, zero-heavy)
// activations -- that measurement is what core/adaptive.hpp re-plans from.
TEST(ScheduleFuzzCodecTest, AllFamiliesBitIdenticalUnderBitmapCodec) {
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};
  const int l = chain.size();

  const LossGradFn loss_grad = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(r.probs, labels);
  };

  auto run = [&](const Schedule& schedule, SlotStore* store) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const ExecutionResult result =
        store != nullptr
            ? executor.run(runner, schedule, input, loss_grad, *store)
            : executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const std::vector<Tensor> reference =
      run(full_storage_schedule(l), nullptr);

  std::vector<std::pair<std::string, Schedule>> schedules;
  schedules.emplace_back("revolve(s=2)", revolve::make_schedule(l, 2));
  schedules.emplace_back("revolve(s=0)", revolve::make_schedule(l, 0));
  schedules.emplace_back("sequential(k=3)", seq::make_schedule(l, 3));
  {
    const hetero::HeteroSolver solver(
        std::vector<double>(static_cast<std::size_t>(l), 1.0), 2);
    schedules.emplace_back("hetero(s=2)", solver.make_schedule(2));
  }
  {
    disk::DiskRevolveOptions options;
    options.ram_slots = 2;
    schedules.emplace_back("disk(ram=2)",
                           disk::DiskRevolveSolver(l, options).make_schedule());
  }

  // measured_slot_ratio reflects the *last* put into a slot, and some
  // families end a slot's life on a dense (post-conv) boundary, so the
  // per-slot evidence is accumulated across families: at least one family
  // must leave a slot measured strictly below the worst-case planning
  // ratio -- the signal core/adaptive.hpp re-plans from.
  bool saw_compressed_slot = false;
  for (const auto& [name, schedule] : schedules) {
    ASSERT_EQ(schedule.validate(), std::nullopt)
        << name << "\n" << schedule.to_string();
    CompressedSlotStore store(schedule.num_slots(), SlotCodec::Bitmap);
    const std::vector<Tensor> grads = run(schedule, &store);

    ASSERT_EQ(grads.size(), reference.size()) << name;
    for (std::size_t g = 0; g < grads.size(); ++g) {
      EXPECT_EQ(Tensor::max_abs_diff(grads[g], reference[g]), 0.0F)
          << name << " grad=" << g;
    }

    EXPECT_GT(store.plain_bytes_seen(), 0U) << name;
    // Checkpoint slots (>= 1) hold zero-heavy post-ReLU boundaries often
    // enough that the aggregate footprint must land below plaintext. Slot
    // 0 (white-noise input) is exempt -- its dense fallback measures
    // ~1.0, which is exactly why the planners never re-price slot 0.
    if (schedule.stats().peak_slots_in_use > 1) {
      EXPECT_LT(store.measured_ratio(), 1.0) << name;
      for (std::int32_t slot = 1; slot < schedule.num_slots(); ++slot) {
        if (store.measured_slot_ratio(slot) <
            planning_bytes_ratio(SlotCodec::Bitmap)) {
          saw_compressed_slot = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_compressed_slot);
}

// The fp16 cast codec end-to-end: resting checkpoints at half precision
// must land the final gradients within gradcheck-style tolerance of the
// full-precision reference, at exactly half the resident checkpoint bytes.
TEST(ScheduleFuzzCodecTest, Fp16CodecStaysWithinGradcheckTolerance) {
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};
  const int l = chain.size();

  const LossGradFn loss_grad = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(r.probs, labels);
  };

  auto run = [&](const Schedule& schedule, SlotStore* store) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const ExecutionResult result =
        store != nullptr
            ? executor.run(runner, schedule, input, loss_grad, *store)
            : executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const std::vector<Tensor> reference =
      run(full_storage_schedule(l), nullptr);

  const Schedule schedule = revolve::make_schedule(l, 2);
  CompressedSlotStore store(schedule.num_slots(), SlotCodec::Fp16);
  const std::vector<Tensor> grads = run(schedule, &store);

  EXPECT_DOUBLE_EQ(store.measured_ratio(), 0.5);
  ASSERT_EQ(grads.size(), reference.size());
  for (std::size_t g = 0; g < grads.size(); ++g) {
    float ref_scale = 0.0F;
    const Tensor& ref = reference[g];
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ref_scale = std::max(ref_scale, std::abs(ref.data()[i]));
    }
    // fp16 casts on resting checkpoints perturb restored activations by
    // <= 2^-11 relative; the gradcheck suite tolerates 5e-2 relative on
    // these nets, and the cast error lands orders of magnitude below it.
    EXPECT_LE(Tensor::max_abs_diff(grads[g], ref),
              std::max(ref_scale * 5e-2F, 1e-4F))
        << "grad=" << g;
    // But it must not be bit-identical by accident of an unused slot:
    // sanity that the store actually carried checkpoints.
    EXPECT_GT(store.plain_bytes_seen(), 0U);
  }
}

// The async store with the lossless codec: encoded blobs staged by
// write-behind, spilled as ETSC files, prefetched back, and decoded on
// every read path must still give bit-identical gradients.
TEST(ScheduleFuzzCodecTest, AsyncStoreLosslessCodecBitIdentical) {
  std::mt19937 net_rng(4040);
  nn::LayerChain chain = models::build_mini_resnet(1, 4, 3, 1, net_rng);
  Tensor input = Tensor::randn(Shape{2, 1, 12, 12}, net_rng);
  const std::vector<std::int32_t> labels{0, 2};
  const int l = chain.size();

  const LossGradFn loss_grad = [&](const Tensor& logits) {
    const ops::SoftmaxXentResult r = ops::softmax_xent_forward(logits, labels);
    return ops::softmax_xent_backward(r.probs, labels);
  };

  auto run = [&](const Schedule& schedule, SlotStore* store) {
    chain.zero_grad();
    chain.clear_saved();
    nn::LayerChainRunner runner(chain, nn::Phase::Train);
    runner.begin_pass();
    ScheduleExecutor executor;
    const ExecutionResult result =
        store != nullptr
            ? executor.run(runner, schedule, input, loss_grad, *store)
            : executor.run(runner, schedule, input, loss_grad);
    std::vector<Tensor> grads{result.input_grad.clone()};
    for (const nn::ParamRef& p : chain.params()) {
      grads.push_back(p.grad->clone());
    }
    return grads;
  };

  const std::vector<Tensor> reference =
      run(full_storage_schedule(l), nullptr);

  const std::string dir =
      std::string(::testing::TempDir()) + "/fuzz_codec_async_store";
  std::filesystem::create_directories(dir);

  disk::DiskRevolveOptions options;
  options.ram_slots = 2;
  options.overlap_io = true;
  options.spill_bytes_ratio = planning_bytes_ratio(SlotCodec::Lossless);
  const disk::DiskRevolveSolver solver(l, options);
  const Schedule schedule = solver.make_schedule();
  ASSERT_EQ(schedule.validate(), std::nullopt) << schedule.to_string();

  AsyncDiskSlotStoreOptions store_options;
  store_options.codec = SlotCodec::Lossless;
  AsyncDiskSlotStore store(schedule.num_slots(), /*first_disk_slot=*/3, dir,
                           store_options);
  const std::vector<Tensor> grads = run(schedule, &store);
  store.flush();

  ASSERT_EQ(grads.size(), reference.size());
  for (std::size_t g = 0; g < grads.size(); ++g) {
    EXPECT_EQ(Tensor::max_abs_diff(grads[g], reference[g]), 0.0F)
        << "grad=" << g;
  }
}

}  // namespace
}  // namespace edgetrain::core
