#include "core/slot_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "models/small_nets.hpp"
#include "persist/fault.hpp"
#include "nn/chain_runner.hpp"
#include "nn/layers.hpp"
#include "tensor/alloc.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::core {
namespace {

// ---------------------------------------------------------------------------
// Half-precision conversions
// ---------------------------------------------------------------------------

TEST(HalfFloat, ExactValuesRoundTrip) {
  for (const float v : {0.0F, 1.0F, -1.0F, 0.5F, 2.0F, -1024.0F, 0.25F}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(HalfFloat, RelativeErrorWithinHalfUlp) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(-100.0F, 100.0F);
  for (int i = 0; i < 2000; ++i) {
    const float v = dist(rng);
    const float r = half_to_float(float_to_half(v));
    EXPECT_NEAR(r, v, std::fabs(v) * 1e-3F + 1e-6F);
  }
}

TEST(HalfFloat, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e10F))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e10F))));
  EXPECT_LT(half_to_float(float_to_half(-1e10F)), 0.0F);
}

TEST(HalfFloat, SubnormalsSurvive) {
  const float tiny = 1e-5F;
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_NEAR(r, tiny, 1e-6F);
}

TEST(HalfFloat, NanPropagates) {
  EXPECT_TRUE(std::isnan(
      half_to_float(float_to_half(std::numeric_limits<float>::quiet_NaN()))));
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

TEST(RamSlotStore, PutGetDrop) {
  RamSlotStore store(3);
  Tensor t = Tensor::full(Shape{4}, 2.0F);
  store.put(1, t);
  EXPECT_EQ(Tensor::max_abs_diff(store.get(1), t), 0.0F);
  EXPECT_EQ(store.resident_bytes(), t.bytes());
  store.drop(1);
  EXPECT_EQ(store.resident_bytes(), 0U);
  EXPECT_THROW((void)store.get(1), std::logic_error);
}

TEST(RamSlotStore, SharesStorageWithoutCopy) {
  RamSlotStore store(1);
  Tensor t = Tensor::zeros(Shape{8});
  store.put(0, t);
  Tensor out = store.get(0);
  out.at(0) = 5.0F;
  EXPECT_EQ(t.at(0), 5.0F);
}

TEST(DiskSlotStore, RoundTripsThroughFiles) {
  std::mt19937 rng(7);
  DiskSlotStore store(4, /*first_disk_slot=*/2, ::testing::TempDir());
  Tensor ram_tensor = Tensor::randn(Shape{2, 3}, rng);
  Tensor disk_tensor = Tensor::randn(Shape{4, 5}, rng);
  store.put(0, ram_tensor);
  store.put(3, disk_tensor);
  EXPECT_EQ(store.disk_writes(), 1);
  EXPECT_EQ(store.external_bytes(), disk_tensor.bytes());
  EXPECT_EQ(store.resident_bytes(), ram_tensor.bytes());

  Tensor back = store.get(3);
  EXPECT_EQ(Tensor::max_abs_diff(back, disk_tensor), 0.0F);
  EXPECT_EQ(store.disk_reads(), 1);

  store.drop(3);
  EXPECT_EQ(store.external_bytes(), 0U);
  EXPECT_THROW((void)store.get(3), std::logic_error);
}

TEST(DiskSlotStore, OverwriteReplacesBytes) {
  DiskSlotStore store(2, 0, ::testing::TempDir());
  store.put(0, Tensor::zeros(Shape{16}));
  store.put(0, Tensor::zeros(Shape{4}));
  EXPECT_EQ(store.external_bytes(), 16U);
}

TEST(DiskSlotStore, BitFlippedSpillFileFailsChecksum) {
  std::mt19937 rng(29);
  DiskSlotStore store(2, /*first_disk_slot=*/0, ::testing::TempDir());
  Tensor t = Tensor::randn(Shape{16, 16}, rng);
  store.put(0, t);

  // An SD card flips one bit in the spill file behind the store's back.
  const std::string path =
      std::string(::testing::TempDir()) + "/slot_0.ckpt";
  persist::flip_bit(path, t.bytes() / 2, 2);
  try {
    (void)store.get(0);
    FAIL() << "corrupt spill file returned without error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos)
        << error.what();
  }

  // A clean rewrite of the slot recovers it.
  store.put(0, t);
  EXPECT_EQ(Tensor::max_abs_diff(store.get(0), t), 0.0F);
}

TEST(DiskSlotStore, TruncatedSpillFileReportsDescriptiveError) {
  std::mt19937 rng(31);
  DiskSlotStore store(2, /*first_disk_slot=*/0, ::testing::TempDir());
  Tensor t = Tensor::randn(Shape{8, 8}, rng);
  store.put(1, t);

  const std::string path =
      std::string(::testing::TempDir()) + "/slot_1.ckpt";
  persist::truncate_file(path, t.bytes() - 12);
  try {
    (void)store.get(1);
    FAIL() << "truncated spill file returned without error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("truncated or corrupt"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(t.bytes())), std::string::npos) << what;
  }
}

TEST(QuantizedSlotStore, HalfRoundTripAccuracy) {
  std::mt19937 rng(11);
  QuantizedSlotStore store(2, QuantizedSlotStore::Precision::Half);
  Tensor t = Tensor::randn(Shape{128}, rng);
  store.put(0, t);
  EXPECT_EQ(store.resident_bytes(), 256U);  // 2 bytes/element
  Tensor back = store.get(0);
  EXPECT_LT(Tensor::max_abs_diff(back, t), 5e-3F);
}

TEST(QuantizedSlotStore, Int8RoundTripAccuracy) {
  std::mt19937 rng(13);
  QuantizedSlotStore store(2, QuantizedSlotStore::Precision::Int8);
  Tensor t = Tensor::uniform(Shape{256}, rng, -2.0F, 2.0F);
  store.put(0, t);
  EXPECT_EQ(store.resident_bytes(), 256U);  // 1 byte/element
  Tensor back = store.get(0);
  // max error = half a quantisation step = range/255/2.
  EXPECT_LT(Tensor::max_abs_diff(back, t), 4.0F / 255.0F);
}

TEST(QuantizedSlotStore, TrackerSeesEncodedBytes) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current_bytes();
  {
    QuantizedSlotStore store(1, QuantizedSlotStore::Precision::Int8);
    Tensor t = Tensor::zeros(Shape{1024});
    store.put(0, t);
    t.reset();
    EXPECT_EQ(tracker.current_bytes(), before + 1024);  // encoded only
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(QuantizedSlotStore, DropFreesTrackedBytes) {
  QuantizedSlotStore store(1, QuantizedSlotStore::Precision::Half);
  store.put(0, Tensor::zeros(Shape{64}));
  EXPECT_GT(store.resident_bytes(), 0U);
  store.drop(0);
  EXPECT_EQ(store.resident_bytes(), 0U);
}

// ---------------------------------------------------------------------------
// Executor integration
// ---------------------------------------------------------------------------

struct StoreRun {
  Tensor input_grad;
  std::vector<Tensor> param_grads;
};

StoreRun run_with_store(nn::LayerChain& chain, const Schedule& schedule,
                        const Tensor& x, SlotStore& store) {
  chain.zero_grad();
  chain.clear_saved();
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  runner.begin_pass();
  ScheduleExecutor executor;
  const LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };
  const ExecutionResult result =
      executor.run(runner, schedule, x, seed, store);
  StoreRun run;
  run.input_grad = result.input_grad.clone();
  for (const nn::ParamRef& p : chain.params()) {
    run.param_grads.push_back(p.grad->clone());
  }
  return run;
}

TEST(ExecutorWithStores, DiskSpillGradsBitIdentical) {
  std::mt19937 rng(17);
  nn::LayerChain chain = models::build_conv_chain(8, 4, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  const Schedule schedule = revolve::make_schedule(8, 3);

  RamSlotStore ram(schedule.num_slots());
  const StoreRun reference = run_with_store(chain, schedule, x, ram);

  // Spill every non-input slot to disk: lossless, so grads stay identical.
  DiskSlotStore disk(schedule.num_slots(), 1, ::testing::TempDir());
  const StoreRun spilled = run_with_store(chain, schedule, x, disk);
  EXPECT_GT(disk.disk_writes(), 0);

  EXPECT_EQ(Tensor::max_abs_diff(reference.input_grad, spilled.input_grad),
            0.0F);
  for (std::size_t i = 0; i < reference.param_grads.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(reference.param_grads[i],
                                   spilled.param_grads[i]),
              0.0F);
  }
}

TEST(ExecutorWithStores, QuantizedCheckpointsGiveApproximateGrads) {
  // Needs nonlinearity: in a purely linear chain the gradients do not
  // depend on the activations at all, so lossy checkpoints would be
  // invisible. Conv+ReLU pairs make weight gradients activation-dependent.
  std::mt19937 rng(19);
  nn::LayerChain chain;
  for (int i = 0; i < 4; ++i) {
    chain.push(std::make_unique<nn::Conv2d>(4, 4, 3, 1, 1, true, rng));
    chain.push(std::make_unique<nn::ReLU>());
  }
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  const Schedule schedule = revolve::make_schedule(chain.size(), 3);

  auto max_param_err = [](const StoreRun& a, const StoreRun& b) {
    float err = 0.0F;
    for (std::size_t i = 0; i < a.param_grads.size(); ++i) {
      err = std::max(err,
                     Tensor::max_abs_diff(a.param_grads[i], b.param_grads[i]));
    }
    return err;
  };
  auto max_param_scale = [](const StoreRun& a) {
    float scale = 0.0F;
    for (const Tensor& g : a.param_grads) scale = std::max(scale, g.max_abs());
    return scale;
  };

  RamSlotStore ram(schedule.num_slots());
  const StoreRun reference = run_with_store(chain, schedule, x, ram);
  const float scale = max_param_scale(reference);

  QuantizedSlotStore half(schedule.num_slots(),
                          QuantizedSlotStore::Precision::Half);
  const StoreRun halved = run_with_store(chain, schedule, x, half);
  const float half_err = max_param_err(reference, halved);
  EXPECT_GT(half_err, 0.0F);          // lossy checkpoints are visible...
  EXPECT_LT(half_err, 0.01F * scale); // ...but small at fp16

  QuantizedSlotStore int8(schedule.num_slots(),
                          QuantizedSlotStore::Precision::Int8);
  const StoreRun quantised = run_with_store(chain, schedule, x, int8);
  const float int8_err = max_param_err(reference, quantised);
  EXPECT_GT(int8_err, half_err);       // int8 is coarser than fp16
  EXPECT_LT(int8_err, 0.25F * scale);  // yet still usable
}

TEST(ExecutorWithStores, QuantizedStoreHalvesCheckpointMemory) {
  std::mt19937 rng(23);
  nn::LayerChain chain = models::build_conv_chain(12, 8, rng);
  Tensor x = Tensor::randn(Shape{1, 8, 12, 12}, rng);
  const Schedule schedule = revolve::make_schedule(12, 5);

  RamSlotStore ram(schedule.num_slots());
  (void)run_with_store(chain, schedule, x, ram);
  QuantizedSlotStore half(schedule.num_slots(),
                          QuantizedSlotStore::Precision::Half);

  // Peak store occupancy: hold all slots with one activation each.
  Tensor act = Tensor::randn(Shape{1, 8, 12, 12}, rng);
  for (std::int32_t s = 0; s < schedule.num_slots(); ++s) {
    ram.put(s, act);
    half.put(s, act);
  }
  // Ram store shares one buffer; compare per-slot cost instead.
  EXPECT_EQ(half.resident_bytes(),
            static_cast<std::size_t>(schedule.num_slots()) * act.bytes() / 2);
}

}  // namespace
}  // namespace edgetrain::core
