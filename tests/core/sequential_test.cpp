#include "core/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/revolve.hpp"

namespace edgetrain::core::seq {
namespace {

TEST(MemoryUnits, MatchesPaperFormula) {
  // Memory(l, s) = (s-1) + (l - floor(l/s) * (s-1)).
  EXPECT_EQ(memory_units(10, 1), 10);   // one segment = full storage
  EXPECT_EQ(memory_units(10, 2), 6);    // 1 + (10 - 5)
  EXPECT_EQ(memory_units(10, 5), 6);    // 4 + (10 - 2*4)
  EXPECT_EQ(memory_units(12, 3), 6);    // 2 + (12 - 4*2)
  EXPECT_EQ(memory_units(100, 10), 19); // 9 + (100 - 90)
}

TEST(MemoryUnits, RejectsBadArguments) {
  EXPECT_THROW((void)memory_units(0, 1), std::invalid_argument);
  EXPECT_THROW((void)memory_units(5, 0), std::invalid_argument);
  EXPECT_THROW((void)memory_units(5, 6), std::invalid_argument);
}

TEST(ForwardCost, SweepPlusOneReforwardPerEarlySegment) {
  EXPECT_EQ(forward_cost(10, 1), 10);        // no recompute
  EXPECT_EQ(forward_cost(10, 2), 15);        // + floor(10/2)
  EXPECT_EQ(forward_cost(12, 3), 20);        // + 2*4
}

TEST(RecomputeFactor, BoundedByOnePointFive) {
  for (const int l : {4, 10, 31, 100, 152}) {
    for (int s = 1; s <= l; ++s) {
      const double rho = recompute_factor(l, s);
      EXPECT_GE(rho, 1.0);
      EXPECT_LE(rho, 1.5);
    }
  }
}

TEST(BestPlan, NearTwoSqrtL) {
  for (const int l : {16, 64, 100, 152, 400}) {
    const SegmentedPlan plan = best_plan(l);
    const double bound = memory_lower_bound(l);
    EXPECT_GE(static_cast<double>(plan.memory_units), bound - 2.0)
        << "l=" << l;
    // The optimum is close to the bound (within ~2x for these sizes).
    EXPECT_LE(static_cast<double>(plan.memory_units), 2.0 * bound + 2.0)
        << "l=" << l;
  }
}

TEST(BestPlan, OptimalOverAllSegmentCounts) {
  const int l = 97;
  const SegmentedPlan plan = best_plan(l);
  for (int s = 1; s <= l; ++s) {
    EXPECT_LE(plan.memory_units, memory_units(l, s));
  }
}

// The paper's Section V/VI punchline: at any memory budget the binomial
// scheduler needs no more work than uniform segmentation, and at the
// segmented scheduler's own memory it is never worse.
TEST(SequentialVsBinomial, BinomialDominatesAtEqualMemory) {
  for (const int l : {18, 34, 50, 101, 152}) {
    for (int s = 2; s <= l / 2; ++s) {
      const std::int64_t mem = memory_units(l, s);
      // Give Revolve the same number of activation units: free slots =
      // mem - 1 (one unit is the live frontier).
      const auto free_slots = static_cast<int>(mem - 1);
      const std::int64_t binomial_cost =
          revolve::forward_cost(l, free_slots);
      EXPECT_LE(binomial_cost, forward_cost(l, s))
          << "l=" << l << " segments=" << s;
    }
  }
}

TEST(SequentialVsBinomial, BinomialReachesFarBelowTwoSqrtL) {
  // Sequential memory is bounded below by ~2*sqrt(l); Revolve at the same
  // work budget (rho <= 1.5) gets well under it for deep chains.
  const int l = 152;
  const int s = revolve::min_free_slots_for_rho(l, 1.5);
  const double revolve_units = s + 1;
  EXPECT_LT(revolve_units, memory_lower_bound(l));
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

struct SeqCase {
  int l;
  int s;
};

class SeqScheduleTest : public ::testing::TestWithParam<SeqCase> {};

TEST_P(SeqScheduleTest, ValidatesAndReplaysToFormula) {
  const auto [l, s] = GetParam();
  const Schedule schedule = make_schedule(l, s);
  EXPECT_EQ(schedule.validate(), std::nullopt) << "l=" << l << " s=" << s;
  const ScheduleStats stats = schedule.stats();
  EXPECT_EQ(stats.backwards, l);
  EXPECT_EQ(stats.peak_memory_units, memory_units(l, s));
  // Strict forward executions equal the analytic cost exactly: the sweep
  // runs the last segment in saving mode, every earlier segment re-forwards
  // once in saving mode.
  EXPECT_EQ(stats.advances + stats.forward_saves, forward_cost(l, s));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeqScheduleTest,
    ::testing::Values(SeqCase{1, 1}, SeqCase{4, 2}, SeqCase{10, 1},
                      SeqCase{10, 2}, SeqCase{10, 3}, SeqCase{10, 5},
                      SeqCase{12, 4}, SeqCase{33, 6}, SeqCase{100, 10},
                      SeqCase{152, 12}, SeqCase{152, 152}));

}  // namespace
}  // namespace edgetrain::core::seq
