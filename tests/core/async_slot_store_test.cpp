// AsyncDiskSlotStore: write-behind spills, prefetched restores, and the
// failure paths that must stay as loud as the synchronous store's. The
// concurrency tests are written to run clean under TSan (tsan CI job);
// injected IO latency and faults go through AsyncDiskSlotStoreOptions so
// each test controls its own timing instead of sleeping and hoping.
#include "core/async_slot_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <thread>

#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/layers.hpp"
#include "persist/fault.hpp"
#include "tensor/ops.hpp"

namespace edgetrain::core {
namespace {

/// Per-test spill directory: async tests run in their own binary and may
/// execute concurrently with slot_store_test under `ctest -j`, so sharing
/// TempDir()'s flat slot_N.ckpt namespace would race on files.
std::string test_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/async_" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(AsyncDiskSlotStore, RoundTripsRamAndDiskSlots) {
  std::mt19937 rng(7);
  AsyncDiskSlotStore store(4, /*first_disk_slot=*/2, test_dir("roundtrip"));
  Tensor ram_tensor = Tensor::randn(Shape{2, 3}, rng);
  Tensor disk_tensor = Tensor::randn(Shape{4, 5}, rng);
  store.put(0, ram_tensor);
  store.put(3, disk_tensor);
  store.flush();
  EXPECT_EQ(store.disk_writes(), 1);
  EXPECT_EQ(store.external_bytes(), disk_tensor.bytes());
  EXPECT_EQ(store.resident_bytes(), ram_tensor.bytes());

  Tensor back = store.get(3);
  EXPECT_EQ(Tensor::max_abs_diff(back, disk_tensor), 0.0F);
  EXPECT_EQ(store.disk_reads(), 1);
  EXPECT_EQ(store.blocking_reads(), 1);  // no replay tape: nothing prefetches

  store.drop(3);
  EXPECT_EQ(store.external_bytes(), 0U);
  EXPECT_THROW((void)store.get(3), std::logic_error);
  EXPECT_THROW((void)store.get(1), std::logic_error);
}

TEST(AsyncDiskSlotStore, GetBeforeFlushIsServedFromStagingWithoutDiskRead) {
  std::mt19937 rng(11);
  AsyncDiskSlotStoreOptions options;
  options.io_fault = [](std::int32_t, bool is_write) {
    if (is_write) sleep_ms(30);  // hold the write in flight
  };
  AsyncDiskSlotStore store(2, 0, test_dir("writebehind"), options);
  Tensor t = Tensor::randn(Shape{32}, rng);
  store.put(0, t);
  Tensor back = store.get(0);  // while the background write still runs
  EXPECT_EQ(Tensor::max_abs_diff(back, t), 0.0F);
  EXPECT_EQ(store.write_behind_hits(), 1);
  EXPECT_EQ(store.disk_reads(), 0);
  store.flush();
  EXPECT_EQ(store.disk_writes(), 1);
}

TEST(AsyncDiskSlotStore, PutReturnsBeforeTheWriteCompletes) {
  std::atomic<bool> write_started{false};
  std::atomic<bool> write_released{false};
  AsyncDiskSlotStoreOptions options;
  options.io_fault = [&](std::int32_t, bool is_write) {
    if (!is_write) return;
    write_started = true;
    while (!write_released) sleep_ms(1);
  };
  AsyncDiskSlotStore store(1, 0, test_dir("nonblocking"), options);
  store.put(0, Tensor::zeros(Shape{16}));  // must not wait for the write
  EXPECT_EQ(store.disk_writes(), 0);
  write_released = true;
  store.flush();
  EXPECT_TRUE(write_started);
  EXPECT_EQ(store.disk_writes(), 1);
}

TEST(AsyncDiskSlotStore, StagingBudgetBackPressuresPut) {
  // With one write-staging slot, the second put can only return once the
  // first write has retired: after both puts, at least one write is on disk.
  AsyncDiskSlotStoreOptions options;
  options.write_staging_slots = 1;
  options.io_fault = [](std::int32_t, bool is_write) {
    if (is_write) sleep_ms(5);
  };
  AsyncDiskSlotStore store(2, 0, test_dir("backpressure"), options);
  store.put(0, Tensor::zeros(Shape{64}));
  store.put(1, Tensor::zeros(Shape{64}));
  EXPECT_GE(store.disk_writes(), 1);
  store.flush();
  EXPECT_EQ(store.disk_writes(), 2);
}

TEST(AsyncDiskSlotStore, ResidentBytesChargesStagedWrites) {
  AsyncDiskSlotStoreOptions options;
  std::atomic<bool> release{false};
  options.io_fault = [&](std::int32_t, bool is_write) {
    if (!is_write) return;
    while (!release) sleep_ms(1);
  };
  AsyncDiskSlotStore store(1, 0, test_dir("staging_ram"), options);
  Tensor t = Tensor::zeros(Shape{128});
  store.put(0, t);
  // The spill has been accepted but not flushed: its bytes are still RAM
  // and must be reported, not hidden.
  EXPECT_EQ(store.resident_bytes(), t.bytes());
  release = true;
  store.flush();
  EXPECT_EQ(store.resident_bytes(), 0U);
  EXPECT_EQ(store.external_bytes(), t.bytes());
}

TEST(AsyncDiskSlotStore, FailedBackgroundWriteRethrowsOnTheOwningGet) {
  AsyncDiskSlotStoreOptions options;
  options.io_fault = [](std::int32_t slot, bool is_write) {
    if (is_write && slot == 1) {
      throw std::runtime_error("injected write failure on slot 1");
    }
  };
  AsyncDiskSlotStore store(2, 0, test_dir("write_fail"), options);
  Tensor ok = Tensor::zeros(Shape{8});
  store.put(0, ok);
  store.put(1, Tensor::zeros(Shape{8}));
  store.flush();

  // The healthy slot is unaffected; the failed slot's error surfaces on
  // its own get -- and keeps surfacing until the slot is overwritten.
  EXPECT_EQ(Tensor::max_abs_diff(store.get(0), ok), 0.0F);
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      (void)store.get(1);
      FAIL() << "failed background write returned a tensor";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("injected write failure"),
                std::string::npos)
          << error.what();
    }
  }

  // Dropping the failed slot clears the error; the slot reads as empty.
  store.drop(1);
  EXPECT_THROW((void)store.get(1), std::logic_error);
}

TEST(AsyncDiskSlotStore, PrefetchedBitFlipRaisesDescriptiveChecksumError) {
  std::mt19937 rng(29);
  const std::string dir = test_dir("bitflip");
  AsyncDiskSlotStore store(2, 0, dir);
  Tensor t = Tensor::randn(Shape{16, 16}, rng);
  store.put(0, t);
  store.flush();

  // An SD card flips one bit behind the store's back...
  persist::flip_bit(dir + "/slot_0.ckpt", t.bytes() / 2, 2);

  // ...and the corrupt bytes come back through the *prefetch* path: a
  // replay tape whose only restore is this slot triggers the background
  // read, and the get that consumes it must rethrow the checksum error.
  Schedule tape(1, 2);
  tape.restore(0, 0);
  store.begin_replay(tape);
  store.on_replay_position(0);
  try {
    (void)store.get(0);
    FAIL() << "corrupt prefetched spill returned without error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos)
        << error.what();
  }
  store.end_replay();
  EXPECT_EQ(store.blocking_reads(), 0);

  // A clean rewrite of the slot recovers it.
  store.put(0, t);
  store.flush();
  EXPECT_EQ(Tensor::max_abs_diff(store.get(0), t), 0.0F);
}

TEST(AsyncDiskSlotStore, TruncatedSpillReportsDescriptiveError) {
  std::mt19937 rng(31);
  const std::string dir = test_dir("truncated");
  AsyncDiskSlotStore store(2, 0, dir);
  Tensor t = Tensor::randn(Shape{8, 8}, rng);
  store.put(1, t);
  store.flush();
  persist::truncate_file(dir + "/slot_1.ckpt", t.bytes() - 12);
  try {
    (void)store.get(1);
    FAIL() << "truncated spill file returned without error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("truncated or corrupt"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(t.bytes())), std::string::npos) << what;
  }
}

TEST(AsyncDiskSlotStore, DestructionJoinsWritesInFlight) {
  std::atomic<int> writes_entered{0};
  {
    AsyncDiskSlotStoreOptions options;
    options.write_staging_slots = 4;
    options.io_fault = [&](std::int32_t, bool is_write) {
      if (!is_write) return;
      ++writes_entered;
      sleep_ms(10);
    };
    AsyncDiskSlotStore store(4, 0, test_dir("dtor"), options);
    for (std::int32_t slot = 0; slot < 4; ++slot) {
      store.put(slot, Tensor::zeros(Shape{256}));
    }
    // Destruction now, with writes queued and in flight: must drain, not
    // crash or leak the worker.
  }
  EXPECT_EQ(writes_entered.load(), 4);
  // The destructor removes its spill files.
  EXPECT_FALSE(std::filesystem::exists(
      std::string(::testing::TempDir()) + "/async_dtor/slot_0.ckpt"));
}

TEST(AsyncDiskSlotStore, DropDuringInFlightWriteInvalidatesCleanly) {
  std::atomic<bool> release{false};
  AsyncDiskSlotStoreOptions options;
  options.io_fault = [&](std::int32_t, bool is_write) {
    if (!is_write) return;
    while (!release) sleep_ms(1);
  };
  AsyncDiskSlotStore store(1, 0, test_dir("drop_inflight"), options);
  store.put(0, Tensor::zeros(Shape{32}));
  store.drop(0);  // supersedes the write still sitting in the worker
  release = true;
  store.flush();
  EXPECT_THROW((void)store.get(0), std::logic_error);
  EXPECT_EQ(store.external_bytes(), 0U);
}

// The TSan target: concurrent puts, gets, drops, and replay-driven
// prefetches on overlapping slots must be free of data races. Logic errors
// (get of a slot another thread just dropped) are expected and caught;
// runtime errors are not (no corruption is injected here).
TEST(AsyncDiskSlotStore, ConcurrentPutGetDropHammer) {
  std::mt19937 seed_rng(101);
  AsyncDiskSlotStore store(6, /*first_disk_slot=*/2, test_dir("hammer"));

  // A replay tape touching the shared slots keeps the prefetcher engaged
  // while the hammer threads mutate the same slots.
  Schedule tape(1, 6);
  for (int i = 0; i < 64; ++i) {
    tape.restore(0, 2 + (i % 4));
  }
  store.begin_replay(tape);

  constexpr int kThreads = 4;
  constexpr int kIters = 60;
  std::atomic<std::int64_t> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(static_cast<std::uint32_t>(1000 + tid));
      Tensor mine = Tensor::full(Shape{64}, static_cast<float>(tid + 1));
      for (int it = 0; it < kIters; ++it) {
        const std::int32_t slot = 2 + ((tid + it) % 4);
        switch (it % 4) {
          case 0:
            store.put(slot, mine);
            break;
          case 1:
            try {
              Tensor got = store.get(slot);
              // Values are per-thread constants: whatever generation we
              // observed must be internally consistent.
              EXPECT_EQ(got.at(0), got.at(got.numel() - 1));
              ++served;
            } catch (const std::logic_error&) {
            }
            break;
          case 2:
            store.on_replay_position(it % 64);
            break;
          default:
            store.drop(slot);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  store.end_replay();
  store.flush();
  EXPECT_GT(served.load(), 0);
}

// ---------------------------------------------------------------------------
// Executor integration: lookahead-driven prefetch
// ---------------------------------------------------------------------------

struct StoreRun {
  Tensor input_grad;
  std::vector<Tensor> param_grads;
};

StoreRun run_with_store(nn::LayerChain& chain, const Schedule& schedule,
                        const Tensor& x, SlotStore& store) {
  chain.zero_grad();
  chain.clear_saved();
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  runner.begin_pass();
  ScheduleExecutor executor;
  const LossGradFn seed = [](const Tensor& output) {
    return Tensor::full(output.shape(), 1.0F);
  };
  const ExecutionResult result =
      executor.run(runner, schedule, x, seed, store);
  StoreRun run;
  run.input_grad = result.input_grad.clone();
  for (const nn::ParamRef& p : chain.params()) {
    run.param_grads.push_back(p.grad->clone());
  }
  return run;
}

TEST(AsyncDiskSlotStore, ExecutorReplayPrefetchesAndMatchesSyncGradients) {
  std::mt19937 rng(17);
  nn::LayerChain chain = models::build_conv_chain(8, 4, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  const Schedule schedule = revolve::make_schedule(8, 3);

  RamSlotStore ram(schedule.num_slots());
  const StoreRun reference = run_with_store(chain, schedule, x, ram);

  AsyncDiskSlotStore async(schedule.num_slots(), /*first_disk_slot=*/1,
                           test_dir("executor"));
  const StoreRun overlapped = run_with_store(chain, schedule, x, async);
  EXPECT_GT(async.disk_writes(), 0);
  // The executor announces the tape, so restores of flushed slots are
  // served by the prefetcher, not synchronous reads.
  EXPECT_GT(async.prefetch_hits(), 0);

  EXPECT_EQ(
      Tensor::max_abs_diff(reference.input_grad, overlapped.input_grad),
      0.0F);
  for (std::size_t i = 0; i < reference.param_grads.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(reference.param_grads[i],
                                   overlapped.param_grads[i]),
              0.0F);
  }
}

TEST(AsyncDiskSlotStore, ExecutorEndsReplayOnThrowingPaths) {
  // A loss hook that throws mid-replay must still unwind through the
  // executor's replay scope: the store's lookahead state is reset and the
  // next run starts clean (no stale prefetches from the aborted tape).
  std::mt19937 rng(23);
  nn::LayerChain chain = models::build_conv_chain(6, 4, rng);
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  const Schedule schedule = revolve::make_schedule(6, 2);

  AsyncDiskSlotStore async(schedule.num_slots(), 1, test_dir("abandon"));
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  runner.begin_pass();
  ScheduleExecutor executor;
  const LossGradFn bomb = [](const Tensor&) -> Tensor {
    throw std::runtime_error("injected mid-replay failure");
  };
  EXPECT_THROW((void)executor.run(runner, schedule, x, bomb, async),
               std::runtime_error);

  // The store is still usable for a full, successful replay.
  RamSlotStore ram(schedule.num_slots());
  const StoreRun reference = run_with_store(chain, schedule, x, ram);
  const StoreRun recovered = run_with_store(chain, schedule, x, async);
  EXPECT_EQ(
      Tensor::max_abs_diff(reference.input_grad, recovered.input_grad),
      0.0F);
}

// Regression: the RAM-tier fast path used to mutate ram_ without taking
// mu_, racing resident_bytes() (which walks ram_ under the lock from
// whatever thread polls memory). Clean under TSan only with the fix; the
// lockset race detector flags the unlocked variant deterministically.
TEST(AsyncDiskSlotStore, RamTierPutGetDropIsSafeAgainstResidentBytesPolling) {
  std::mt19937 rng(91);
  AsyncDiskSlotStore store(4, /*first_disk_slot=*/2, test_dir("ram_race"));
  const Tensor a = Tensor::randn(Shape{8, 8}, rng);
  const Tensor b = Tensor::randn(Shape{8, 8}, rng);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)store.resident_bytes();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  store.put(0, a);
  while (polls.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();  // make sure the poller really contends
  }
  for (int round = 0; round < 2000; ++round) {
    store.put(0, round % 2 == 0 ? a : b);
    store.put(1, a);
    EXPECT_EQ(Tensor::max_abs_diff(store.get(0), round % 2 == 0 ? a : b),
              0.0F);
    store.drop(1);
  }
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls.load(std::memory_order_relaxed), 0U);
  EXPECT_GE(store.resident_bytes(), a.bytes());  // slot 0 is still live
}

}  // namespace
}  // namespace edgetrain::core
