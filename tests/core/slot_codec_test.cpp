// Slot-codec unit coverage: the SIMD fp16/bf16 cast kernels against the
// repo's scalar IEEE reference (exhaustively over all 65536 half patterns),
// the byte-plane + RLE lossless codec's bit-exactness and raw-mode
// fallback bound, its measured compression on post-ReLU-like activations,
// structural-corruption detection on decode, and the CompressedSlotStore's
// accounting and guard poisoning.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/slot_codec.hpp"
#include "core/slot_store.hpp"
#include "tensor/convert.hpp"
#include "tensor/guards.hpp"

namespace edgetrain::core {
namespace {

// --- fp16 kernels vs the scalar IEEE reference ----------------------------

TEST(ConvertTest, Fp16DecodeMatchesReferenceExhaustively) {
  // Every one of the 65536 binary16 patterns must decode to the same float
  // as the repo's reference converter (NaNs compared as NaNs).
  for (std::uint32_t bits = 0; bits <= 0xFFFFU; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float expected = half_to_float(h);
    const float got = convert::fp16_to_fp32_scalar(h);
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(got)) << "half bits 0x" << std::hex << bits;
    } else {
      EXPECT_EQ(expected, got) << "half bits 0x" << std::hex << bits;
      // Signed zero must round-trip with its sign.
      if (expected == 0.0F) {
        EXPECT_EQ(std::signbit(expected), std::signbit(got))
            << "half bits 0x" << std::hex << bits;
      }
    }
  }
}

TEST(ConvertTest, Fp16EncodeMatchesReferenceOnAdversarialValues) {
  std::vector<float> values = {
      0.0F, -0.0F, 1.0F, -1.0F, 0.5F, 2.0F, 1.0F / 3.0F,
      65504.0F,   // largest finite half
      65519.0F,   // rounds to 65504 (RNE)
      65520.0F,   // ties to infinity
      65536.0F, 1e9F, -1e9F,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      6.103515625e-05F,   // smallest normal half
      6.0975552e-05F,     // subnormal half range
      5.960464477539063e-08F,  // smallest subnormal half
      2.9802322e-08F,          // ties to zero
      1e-10F, -1e-10F,
      std::numeric_limits<float>::denorm_min(),
  };
  std::mt19937 rng(99);
  std::uniform_real_distribution<float> uni(-70000.0F, 70000.0F);
  std::normal_distribution<float> narrow(0.0F, 1.0F);
  for (int i = 0; i < 20000; ++i) values.push_back(uni(rng));
  for (int i = 0; i < 20000; ++i) values.push_back(narrow(rng));
  for (float v : values) {
    EXPECT_EQ(float_to_half(v), convert::fp32_to_fp16_scalar(v))
        << "value " << v;
  }
}

TEST(ConvertTest, BulkKernelsMatchScalarBothThreadings) {
  std::mt19937 rng(7);
  std::normal_distribution<float> dist(0.0F, 10.0F);
  constexpr std::int64_t kN = 70001;  // not a multiple of the SIMD grain
  std::vector<float> src(kN);
  for (float& v : src) v = dist(rng);
  src[5] = std::numeric_limits<float>::quiet_NaN();
  src[6] = std::numeric_limits<float>::infinity();

  std::vector<std::uint16_t> expected(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    expected[static_cast<std::size_t>(i)] =
        convert::fp32_to_fp16_scalar(src[static_cast<std::size_t>(i)]);
  }
  for (const auto threading :
       {convert::Threading::Parallel, convert::Threading::Serial}) {
    std::vector<std::uint16_t> got(kN);
    convert::fp32_to_fp16(src.data(), got.data(), kN, threading);
    EXPECT_EQ(expected, got);

    std::vector<float> back(kN);
    convert::fp16_to_fp32(got.data(), back.data(), kN, threading);
    for (std::int64_t i = 0; i < kN; ++i) {
      const float ref =
          convert::fp16_to_fp32_scalar(expected[static_cast<std::size_t>(i)]);
      const float b = back[static_cast<std::size_t>(i)];
      if (std::isnan(ref)) {
        EXPECT_TRUE(std::isnan(b)) << i;
      } else {
        EXPECT_EQ(ref, b) << i;
      }
    }
  }
}

TEST(ConvertTest, Bf16RoundTripIsExactOnBf16Grid) {
  // Values already representable in bf16 must survive unchanged; NaN must
  // stay NaN (quieted), round-to-nearest-even on the rest.
  std::mt19937 rng(11);
  std::uniform_int_distribution<std::uint32_t> hi(0, 0xFFFFU);
  for (int i = 0; i < 20000; ++i) {
    const std::uint16_t pattern = static_cast<std::uint16_t>(hi(rng));
    const float v = convert::bf16_to_fp32_scalar(pattern);
    if (std::isnan(v)) continue;
    EXPECT_EQ(convert::fp32_to_bf16_scalar(v), pattern);
  }
  EXPECT_TRUE(std::isnan(convert::bf16_to_fp32_scalar(
      convert::fp32_to_bf16_scalar(std::numeric_limits<float>::quiet_NaN()))));
  // RNE halfway case: 1 + 2^-8 sits exactly between 0x3F80 (1.0) and
  // 0x3F81 (1.0078125) and must round to the even mantissa, 0x3F80.
  const float halfway = 1.00390625F;
  EXPECT_EQ(convert::fp32_to_bf16_scalar(halfway), 0x3F80);
  // Just above the tie rounds up.
  EXPECT_EQ(convert::fp32_to_bf16_scalar(1.00390637F), 0x3F81);
}

TEST(ConvertTest, BytePlaneSplitMergeRoundTrips) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> byte(0, 255);
  constexpr std::int64_t kWords = 12345;
  std::vector<std::uint8_t> src(4 * kWords);
  for (auto& b : src) b = static_cast<std::uint8_t>(byte(rng));
  std::vector<std::uint8_t> planes(4 * kWords);
  std::vector<std::uint8_t> back(4 * kWords);
  for (const auto threading :
       {convert::Threading::Parallel, convert::Threading::Serial}) {
    convert::byte_plane_split(src.data(), kWords, planes.data(), threading);
    // Plane b holds the b-th byte of every word.
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(planes[static_cast<std::size_t>(b) * kWords + 7],
                src[4 * 7 + static_cast<std::size_t>(b)]);
    }
    convert::byte_plane_merge(planes.data(), kWords, back.data(), threading);
    EXPECT_EQ(src, back);
  }
}

// --- lossless codec -------------------------------------------------------

Tensor tensor_from(const std::vector<float>& values) {
  Tensor t = Tensor::empty(Shape{static_cast<std::int64_t>(values.size())});
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

TEST(SlotCodecTest, LosslessRoundTripsBitExactly) {
  std::mt19937 rng(21);
  std::normal_distribution<float> dist(0.0F, 2.0F);
  std::uniform_real_distribution<float> coin(0.0F, 1.0F);
  for (const int n : {1, 2, 3, 64, 1000, 4097}) {
    for (const double zero_frac : {0.0, 0.5, 0.97}) {
      std::vector<float> values(static_cast<std::size_t>(n));
      for (float& v : values) {
        v = coin(rng) < zero_frac ? 0.0F : dist(rng);
      }
      const Tensor original = tensor_from(values);
      const std::vector<std::uint8_t> blob =
          codec::encode(SlotCodec::Lossless, original);
      EXPECT_LE(blob.size(),
                codec::max_encoded_bytes(SlotCodec::Lossless, n));
      const Tensor decoded = codec::decode(SlotCodec::Lossless, "test",
                                           original.shape(), blob.data(),
                                           blob.size());
      ASSERT_EQ(decoded.numel(), original.numel());
      EXPECT_EQ(std::memcmp(decoded.data(), original.data(),
                            original.bytes()),
                0)
          << "n=" << n << " zero_frac=" << zero_frac;
    }
  }
}

TEST(SlotCodecTest, LosslessRawFallbackBoundsIncompressibleInput) {
  // White-noise bytes defeat both the plane transform and the RLE; the raw
  // fallback must bound the blob at payload + 1 mode byte.
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::uint32_t> word(0, 0xFFFFFFFFU);
  constexpr int kN = 4096;
  std::vector<float> values(kN);
  for (float& v : values) {
    const std::uint32_t bits = word(rng);
    std::memcpy(&v, &bits, sizeof(bits));
  }
  const Tensor original = tensor_from(values);
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::Lossless, original);
  EXPECT_LE(blob.size(), original.bytes() + 1);
  const Tensor decoded = codec::decode(SlotCodec::Lossless, "test",
                                       original.shape(), blob.data(),
                                       blob.size());
  EXPECT_EQ(std::memcmp(decoded.data(), original.data(), original.bytes()),
            0);
}

TEST(SlotCodecTest, LosslessCompressesPostReluActivations) {
  // Post-ReLU activations are zero-heavy with clustered exponents: the
  // byte-plane RLE must land strictly below plaintext on them.
  std::mt19937 rng(31);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  constexpr int kN = 1 << 16;
  std::vector<float> values(kN);
  for (float& v : values) v = std::max(dist(rng), 0.0F);  // ~50% exact zeros
  const Tensor original = tensor_from(values);
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::Lossless, original);
  EXPECT_LT(blob.size(), original.bytes());
}

TEST(SlotCodecTest, DecodeRejectsStructuralCorruption) {
  std::mt19937 rng(41);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::vector<float> values(512);
  for (float& v : values) v = std::max(dist(rng), 0.0F);
  const Tensor original = tensor_from(values);
  const Shape& shape = original.shape();
  std::vector<std::uint8_t> blob = codec::encode(SlotCodec::Lossless, original);

  // Truncation, mode-byte corruption, and stream-length corruption must all
  // throw a descriptive error rather than returning garbage activations.
  EXPECT_THROW(codec::decode(SlotCodec::Lossless, "test", shape, blob.data(),
                             blob.size() - 1),
               std::runtime_error);
  EXPECT_THROW(
      codec::decode(SlotCodec::Lossless, "test", shape, blob.data(), 0),
      std::runtime_error);
  {
    std::vector<std::uint8_t> bad = blob;
    bad[0] = 0x7F;  // unknown mode
    EXPECT_THROW(codec::decode(SlotCodec::Lossless, "test", shape, bad.data(),
                               bad.size()),
                 std::runtime_error);
  }
  if (blob[0] == 1 && blob.size() > 20) {
    std::vector<std::uint8_t> bad = blob;
    bad[1] = 0xFF;  // inflate plane 0's recorded stream length
    bad[2] = 0xFF;
    EXPECT_THROW(codec::decode(SlotCodec::Lossless, "test", shape, bad.data(),
                               bad.size()),
                 std::runtime_error);
  }
  // Fp16 codec: a blob whose size disagrees with the shape is structural
  // corruption too.
  const std::vector<std::uint8_t> half_blob =
      codec::encode(SlotCodec::Fp16, original);
  EXPECT_THROW(codec::decode(SlotCodec::Fp16, "test", shape,
                             half_blob.data(), half_blob.size() - 2),
               std::runtime_error);
}

// --- lossy blob codecs ----------------------------------------------------

TEST(SlotCodecTest, Fp16BlobHalvesBytesAndMatchesScalarRoundTrip) {
  std::mt19937 rng(51);
  std::normal_distribution<float> dist(0.0F, 3.0F);
  std::vector<float> values(3333);
  for (float& v : values) v = dist(rng);
  const Tensor original = tensor_from(values);
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::Fp16, original);
  EXPECT_EQ(blob.size(), original.bytes() / 2);
  const Tensor decoded = codec::decode(SlotCodec::Fp16, "test",
                                       original.shape(), blob.data(),
                                       blob.size());
  const float* in = original.data();
  const float* out = decoded.data();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float expected = half_to_float(float_to_half(in[i]));
    EXPECT_EQ(expected, out[i]) << i;
    // Round-to-nearest-even error bound: 2^-11 relative for normal halves.
    EXPECT_LE(std::abs(out[i] - in[i]),
              std::max(std::abs(in[i]) * 4.9e-4F, 6.2e-05F))
        << i;
  }
}

TEST(SlotCodecTest, Bf16BlobErrorBound) {
  std::mt19937 rng(52);
  std::normal_distribution<float> dist(0.0F, 100.0F);
  std::vector<float> values(2048);
  for (float& v : values) v = dist(rng);
  const Tensor original = tensor_from(values);
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::Bf16, original);
  EXPECT_EQ(blob.size(), original.bytes() / 2);
  const Tensor decoded = codec::decode(SlotCodec::Bf16, "test",
                                       original.shape(), blob.data(),
                                       blob.size());
  const float* in = original.data();
  const float* out = decoded.data();
  for (std::size_t i = 0; i < values.size(); ++i) {
    // bf16 keeps 7 explicit mantissa bits: RNE error is <= 2^-8 relative.
    EXPECT_LE(std::abs(out[i] - in[i]), std::abs(in[i]) * 3.91e-3F) << i;
  }
}

// --- sparse bitmap codec --------------------------------------------------

std::vector<float> relu_like(int n, double density, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0F, 1.5F);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<float> values(static_cast<std::size_t>(n), 0.0F);
  for (float& v : values) {
    if (coin(rng) < density) {
      float x = dist(rng);
      if (x == 0.0F) x = 0.25F;
      v = x;
    }
  }
  return values;
}

TEST(SlotCodecTest, BitmapRoundTripsBitExactlyAcrossDensities) {
  for (const int n : {1, 2, 63, 64, 65, 512, 4097, 70001}) {
    for (const double density : {0.0, 0.01, 0.3, 0.5, 1.0}) {
      const Tensor original = tensor_from(
          relu_like(n, density, static_cast<std::uint32_t>(13 * n + 5)));
      const std::vector<std::uint8_t> blob =
          codec::encode(SlotCodec::Bitmap, original);
      EXPECT_LE(blob.size(), codec::max_encoded_bytes(SlotCodec::Bitmap, n))
          << "n=" << n << " d=" << density;
      const Tensor decoded =
          codec::decode(SlotCodec::Bitmap, "test", original.shape(),
                        blob.data(), blob.size());
      ASSERT_EQ(decoded.numel(), original.numel());
      EXPECT_EQ(std::memcmp(decoded.data(), original.data(),
                            original.bytes()),
                0)
          << "n=" << n << " d=" << density;
    }
  }
}

TEST(SlotCodecTest, BitmapCompressesSparseAndBoundsDense) {
  // 90%-sparse activations: bitmap + packed values is far below plaintext.
  const Tensor sparse = tensor_from(relu_like(1 << 16, 0.1, 71));
  const std::vector<std::uint8_t> sparse_blob =
      codec::encode(SlotCodec::Bitmap, sparse);
  EXPECT_LT(static_cast<double>(sparse_blob.size()),
            0.25 * static_cast<double>(sparse.bytes()));

  // Fully dense input defeats the bitmap; the raw fallback must bound the
  // blob at plaintext + 1 mode byte (the issue's fallback contract).
  const Tensor dense = tensor_from(relu_like(4096, 1.0, 72));
  const std::vector<std::uint8_t> dense_blob =
      codec::encode(SlotCodec::Bitmap, dense);
  EXPECT_LE(dense_blob.size(), dense.bytes() + 1);
  const Tensor back = codec::decode(SlotCodec::Bitmap, "test", dense.shape(),
                                    dense_blob.data(), dense_blob.size());
  EXPECT_EQ(std::memcmp(back.data(), dense.data(), dense.bytes()), 0);

  // BitmapFp16 dense fallback: half payload + 1 mode byte.
  const std::vector<std::uint8_t> half_blob =
      codec::encode(SlotCodec::BitmapFp16, dense);
  EXPECT_LE(half_blob.size(), dense.bytes() / 2 + 1);
}

TEST(SlotCodecTest, BitmapFp16MatchesScalarHalfRoundTripOnNonzeros) {
  const Tensor original = tensor_from(relu_like(3000, 0.25, 73));
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::BitmapFp16, original);
  EXPECT_LT(blob.size(), original.bytes() / 2);
  const Tensor decoded =
      codec::decode(SlotCodec::BitmapFp16, "test", original.shape(),
                    blob.data(), blob.size());
  const float* in = original.data();
  const float* out = decoded.data();
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    if (in[i] == 0.0F) {
      EXPECT_EQ(out[i], 0.0F) << i;
    } else {
      EXPECT_EQ(out[i], half_to_float(float_to_half(in[i]))) << i;
    }
  }
}

TEST(SlotCodecTest, BitmapRejectsEveryPrefixTruncation) {
  // Matching the RLE corpus: every proper prefix of a sparse-mode blob
  // must throw -- never crash, never return garbage activations.
  const Tensor original = tensor_from(relu_like(512, 0.3, 81));
  const Shape& shape = original.shape();
  for (const SlotCodec codec :
       {SlotCodec::Bitmap, SlotCodec::BitmapFp16}) {
    const std::vector<std::uint8_t> blob = codec::encode(codec, original);
    ASSERT_EQ(blob[0], 1U);  // sparse mode, the CRC-protected layout
    for (std::size_t size = 0; size < blob.size(); ++size) {
      EXPECT_THROW(
          codec::decode(codec, "test", shape, blob.data(), size),
          std::runtime_error)
          << "prefix size " << size;
    }
  }
}

TEST(SlotCodecTest, BitmapRejectsEverySingleBitFlip) {
  // CRC-32 over the mode byte + body catches every 1-bit error; flips
  // inside the stored CRC itself mismatch the recomputed value; mode-byte
  // flips land on an unknown mode or a dense blob of the wrong size.
  const Tensor original = tensor_from(relu_like(256, 0.3, 82));
  const Shape& shape = original.shape();
  for (const SlotCodec codec :
       {SlotCodec::Bitmap, SlotCodec::BitmapFp16}) {
    const std::vector<std::uint8_t> blob = codec::encode(codec, original);
    ASSERT_EQ(blob[0], 1U);
    for (std::size_t byte = 0; byte < blob.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> bad = blob;
        bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1U << bit));
        EXPECT_THROW(
            codec::decode(codec, "test", shape, bad.data(), bad.size()),
            std::runtime_error)
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(SlotCodecTest, BitmapRejectsShapeMismatchAndForgedCounts) {
  const Tensor original = tensor_from(relu_like(512, 0.3, 83));
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::Bitmap, original);
  ASSERT_EQ(blob[0], 1U);
  // Decoding under a larger or smaller shape is structural corruption.
  EXPECT_THROW(codec::decode(SlotCodec::Bitmap, "test", Shape{511},
                             blob.data(), blob.size()),
               std::runtime_error);
  EXPECT_THROW(codec::decode(SlotCodec::Bitmap, "test", Shape{513},
                             blob.data(), blob.size()),
               std::runtime_error);
  // Empty blobs and unknown modes are rejected before any field reads.
  EXPECT_THROW(
      codec::decode(SlotCodec::Bitmap, "test", original.shape(), nullptr, 0),
      std::runtime_error);
  std::vector<std::uint8_t> bad = blob;
  bad[0] = 0x7F;
  EXPECT_THROW(codec::decode(SlotCodec::Bitmap, "test", original.shape(),
                             bad.data(), bad.size()),
               std::runtime_error);
}

// --- parsing / planning ratios --------------------------------------------

TEST(SlotCodecTest, ParseAndToStringRoundTrip) {
  for (const SlotCodec codec : {SlotCodec::None, SlotCodec::Lossless,
                                SlotCodec::Fp16, SlotCodec::Bf16,
                                SlotCodec::Bitmap, SlotCodec::BitmapFp16}) {
    const auto parsed = parse_slot_codec(to_string(codec));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, codec);
  }
  EXPECT_FALSE(parse_slot_codec("zstd").has_value());
  EXPECT_FALSE(parse_slot_codec("").has_value());
}

TEST(SlotCodecTest, PlanningRatiosAreSound) {
  EXPECT_EQ(planning_bytes_ratio(SlotCodec::None), 1.0);
  EXPECT_EQ(planning_bytes_ratio(SlotCodec::Lossless), 1.0);  // conservative
  EXPECT_EQ(planning_bytes_ratio(SlotCodec::Fp16), 0.5);
  EXPECT_EQ(planning_bytes_ratio(SlotCodec::Bf16), 0.5);
  // Data-dependent codecs must plan at their worst-case fallback; the
  // achieved per-slot ratio feeds back through measured_slot_ratio.
  EXPECT_EQ(planning_bytes_ratio(SlotCodec::Bitmap), 1.0);
  EXPECT_EQ(planning_bytes_ratio(SlotCodec::BitmapFp16), 0.5);
}

TEST(CompressedSlotStoreTest, BitmapStoreRecordsMeasuredPerSlotRatio) {
  CompressedSlotStore store(3, SlotCodec::Bitmap);
  // Unwritten slots default to the conservative plaintext ratio.
  EXPECT_DOUBLE_EQ(store.measured_slot_ratio(0), 1.0);

  const Tensor sparse = tensor_from(relu_like(1 << 14, 0.1, 91));
  store.put(1, sparse);
  const double sparse_ratio = store.measured_slot_ratio(1);
  EXPECT_GT(sparse_ratio, 0.0);
  EXPECT_LT(sparse_ratio, 0.3);  // ~90% zeros pack far below plaintext

  const Tensor dense = tensor_from(relu_like(1 << 14, 1.0, 92));
  store.put(2, dense);
  EXPECT_GT(store.measured_slot_ratio(2), 0.9);

  // Round trip stays bit-exact through the store.
  const Tensor back = store.get(1);
  EXPECT_EQ(std::memcmp(back.data(), sparse.data(), sparse.bytes()), 0);

  // Overwriting a slot re-measures it.
  store.put(1, dense);
  EXPECT_GT(store.measured_slot_ratio(1), 0.9);
}

// --- CompressedSlotStore --------------------------------------------------

TEST(CompressedSlotStoreTest, LosslessPutGetIsBitExactAndAccounted) {
  std::mt19937 rng(61);
  CompressedSlotStore store(4, SlotCodec::Lossless);
  Tensor a = Tensor::randn(Shape{2, 3, 8, 8}, rng);
  // ReLU-like sparsity so the encoded footprint is measurably smaller.
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.data()[i] = std::max(a.data()[i], 0.0F);
  }
  store.put(1, a);
  EXPECT_GT(store.resident_bytes(), 0U);
  EXPECT_LT(store.resident_bytes(), a.bytes());
  EXPECT_LT(store.measured_ratio(), 1.0);

  const Tensor back = store.get(1);
  EXPECT_EQ(std::memcmp(back.data(), a.data(), a.bytes()), 0);

  store.drop(1);
  EXPECT_EQ(store.resident_bytes(), 0U);
  EXPECT_THROW((void)store.get(1), std::logic_error);
  EXPECT_THROW((void)store.get(99), std::out_of_range);
}

TEST(CompressedSlotStoreTest, Fp16StoreHalvesResidentBytes) {
  std::mt19937 rng(62);
  CompressedSlotStore store(2, SlotCodec::Fp16);
  const Tensor a = Tensor::randn(Shape{64, 32}, rng);
  store.put(0, a);
  EXPECT_EQ(store.resident_bytes(), a.bytes() / 2);
  EXPECT_DOUBLE_EQ(store.measured_ratio(), 0.5);
  const Tensor back = store.get(0);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(back.data()[i], half_to_float(float_to_half(a.data()[i])));
  }
}

TEST(CompressedSlotStoreTest, DropPoisonsEncodedBlobUnderGuards) {
  if (!guards::kEnabled) GTEST_SKIP() << "guards disabled in this build";
  std::mt19937 rng(63);
  CompressedSlotStore store(2, SlotCodec::Lossless);
  const Tensor a = Tensor::randn(Shape{256}, rng);
  store.put(0, a);
  const std::int64_t fills_before = guards::poison_fill_count();
  store.drop(0);
  // The release path must poison the encoded bytes (kPoisonByte fill) so no
  // stale plaintext-derived data survives the drop.
  EXPECT_GT(guards::poison_fill_count(), fills_before);
}

}  // namespace
}  // namespace edgetrain::core
