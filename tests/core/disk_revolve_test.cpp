#include "core/disk_revolve.hpp"

#include <gtest/gtest.h>

#include "core/revolve.hpp"

namespace edgetrain::core::disk {
namespace {

DiskRevolveOptions ram_only(int slots) {
  DiskRevolveOptions options;
  options.ram_slots = slots;
  options.allow_disk = false;
  return options;
}

// With disk disabled the two-level DP must reduce to single-level Revolve.
class RamOnlyTest : public ::testing::TestWithParam<int> {};

TEST_P(RamOnlyTest, ReducesToRevolve) {
  const int l = GetParam();
  for (int s = 0; s <= std::min(l - 1, 6); ++s) {
    const DiskRevolveSolver solver(l, ram_only(s));
    EXPECT_DOUBLE_EQ(solver.forward_cost(),
                     static_cast<double>(revolve::forward_cost(l, s)))
        << "l=" << l << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RamOnlyTest,
                         ::testing::Values(1, 2, 4, 9, 17, 40, 101));

TEST(DiskRevolve, FreeDiskCollapsesToFullStorageWork) {
  // Zero-cost disk with any RAM: every boundary can be checkpointed, so the
  // sweep is all the forward work needed.
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 0.0;
  options.read_cost = 0.0;
  const DiskRevolveSolver solver(40, options);
  EXPECT_DOUBLE_EQ(solver.forward_cost(), 40.0);
  EXPECT_DOUBLE_EQ(solver.recompute_factor(), 1.0);
}

TEST(DiskRevolve, DiskNeverHurts) {
  for (const int l : {8, 20, 64, 152}) {
    for (const int s : {1, 2, 4}) {
      DiskRevolveOptions with_disk;
      with_disk.ram_slots = s;
      with_disk.write_cost = 3.0;
      with_disk.read_cost = 3.0;
      const DiskRevolveSolver two_level(l, with_disk);
      const DiskRevolveSolver one_level(l, ram_only(s));
      EXPECT_LE(two_level.forward_cost(), one_level.forward_cost() + 1e-9)
          << "l=" << l << " s=" << s;
    }
  }
}

TEST(DiskRevolve, DiskHelpsWhenRamIsScarce) {
  // Deep chain, 1 RAM slot, moderately priced disk: the quadratic
  // re-advance blowup should be avoided.
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 5.0;
  options.read_cost = 5.0;
  const DiskRevolveSolver two_level(128, options);
  const DiskRevolveSolver one_level(128, ram_only(1));
  EXPECT_LT(two_level.forward_cost(), 0.6 * one_level.forward_cost());
}

TEST(DiskRevolve, ExpensiveDiskIsIgnored) {
  DiskRevolveOptions options;
  options.ram_slots = 3;
  options.write_cost = 1e9;
  options.read_cost = 1e9;
  const DiskRevolveSolver solver(32, options);
  EXPECT_DOUBLE_EQ(solver.forward_cost(),
                   static_cast<double>(revolve::forward_cost(32, 3)));
  EXPECT_EQ(solver.peak_disk_slots(), 0);
}

TEST(DiskRevolve, SchedulesValidate) {
  for (const int l : {1, 2, 5, 16, 48}) {
    for (const double cost : {0.5, 2.0, 8.0}) {
      DiskRevolveOptions options;
      options.ram_slots = 2;
      options.write_cost = cost;
      options.read_cost = cost;
      const DiskRevolveSolver solver(l, options);
      const Schedule schedule = solver.make_schedule();
      EXPECT_EQ(schedule.validate(), std::nullopt)
          << "l=" << l << " cost=" << cost;
      EXPECT_EQ(schedule.stats().backwards, l);
    }
  }
}

TEST(DiskRevolve, PeakDiskSlotsCountsLiveDiskCheckpoints) {
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 1.0;
  options.read_cost = 1.0;
  const DiskRevolveSolver solver(64, options);
  EXPECT_GT(solver.peak_disk_slots(), 0);
  EXPECT_LE(solver.peak_disk_slots(), 64);
}

// --- overlap pricing (options.overlap_io) ---------------------------------

TEST(DiskRevolveOverlap, BoundedBySerialAndByFreeIo) {
  // Overlap pricing discounts IO by the recompute it hides behind, so the
  // solved cost must sit between the serial plan (IO fully on the critical
  // path) and the free-IO plan (IO fully hidden), for every grid point.
  for (const int l : {4, 16, 48, 128}) {
    for (const int s : {1, 2, 4}) {
      for (const double io : {0.5, 2.0, 8.0}) {
        DiskRevolveOptions serial;
        serial.ram_slots = s;
        serial.write_cost = io;
        serial.read_cost = io;
        DiskRevolveOptions overlap = serial;
        overlap.overlap_io = true;
        DiskRevolveOptions free_io = serial;
        free_io.write_cost = 0.0;
        free_io.read_cost = 0.0;
        const DiskRevolveSolver serial_solver(l, serial);
        const DiskRevolveSolver overlap_solver(l, overlap);
        const DiskRevolveSolver free_solver(l, free_io);
        EXPECT_LE(overlap_solver.forward_cost(),
                  serial_solver.forward_cost() + 1e-9)
            << "l=" << l << " s=" << s << " io=" << io;
        EXPECT_GE(overlap_solver.forward_cost(),
                  free_solver.forward_cost() - 1e-9)
            << "l=" << l << " s=" << s << " io=" << io;
        const Schedule schedule = overlap_solver.make_schedule();
        EXPECT_EQ(schedule.validate(), std::nullopt)
            << "l=" << l << " s=" << s << " io=" << io;
        EXPECT_EQ(schedule.stats().backwards, l);
      }
    }
  }
}

TEST(DiskRevolveOverlap, RamOnlyStillReducesToRevolve) {
  // RAM transfers are free in both pricings, so overlap_io must not perturb
  // the single-level reduction.
  for (const int l : {2, 9, 40}) {
    for (int s = 1; s <= std::min(l - 1, 4); ++s) {
      DiskRevolveOptions options = ram_only(s);
      options.overlap_io = true;
      const DiskRevolveSolver solver(l, options);
      EXPECT_DOUBLE_EQ(solver.forward_cost(),
                       static_cast<double>(revolve::forward_cost(l, s)))
          << "l=" << l << " s=" << s;
    }
  }
}

TEST(DiskRevolveOverlap, SpillsMoreEagerlyWhenIoCanHide) {
  // Deep chain, scarce RAM, moderately priced disk: pricing the reads as
  // hidden behind recompute makes disk checkpoints strictly cheaper than
  // the serial plan believes, so the planned sweep gets strictly faster.
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 5.0;
  options.read_cost = 5.0;
  const DiskRevolveSolver serial_solver(128, options);
  options.overlap_io = true;
  const DiskRevolveSolver overlap_solver(128, options);
  EXPECT_LT(overlap_solver.forward_cost(), serial_solver.forward_cost());
  EXPECT_GT(overlap_solver.peak_disk_slots(), 0);
}

TEST(DiskRevolve, RejectsBadArguments) {
  EXPECT_THROW(DiskRevolveSolver(0, DiskRevolveOptions{}),
               std::invalid_argument);
  DiskRevolveOptions negative;
  negative.write_cost = -1.0;
  EXPECT_THROW(DiskRevolveSolver(4, negative), std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::core::disk
