#include "core/disk_revolve.hpp"

#include <gtest/gtest.h>

#include "core/revolve.hpp"

namespace edgetrain::core::disk {
namespace {

DiskRevolveOptions ram_only(int slots) {
  DiskRevolveOptions options;
  options.ram_slots = slots;
  options.allow_disk = false;
  return options;
}

// With disk disabled the two-level DP must reduce to single-level Revolve.
class RamOnlyTest : public ::testing::TestWithParam<int> {};

TEST_P(RamOnlyTest, ReducesToRevolve) {
  const int l = GetParam();
  for (int s = 0; s <= std::min(l - 1, 6); ++s) {
    const DiskRevolveSolver solver(l, ram_only(s));
    EXPECT_DOUBLE_EQ(solver.forward_cost(),
                     static_cast<double>(revolve::forward_cost(l, s)))
        << "l=" << l << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RamOnlyTest,
                         ::testing::Values(1, 2, 4, 9, 17, 40, 101));

TEST(DiskRevolve, FreeDiskCollapsesToFullStorageWork) {
  // Zero-cost disk with any RAM: every boundary can be checkpointed, so the
  // sweep is all the forward work needed.
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 0.0;
  options.read_cost = 0.0;
  const DiskRevolveSolver solver(40, options);
  EXPECT_DOUBLE_EQ(solver.forward_cost(), 40.0);
  EXPECT_DOUBLE_EQ(solver.recompute_factor(), 1.0);
}

TEST(DiskRevolve, DiskNeverHurts) {
  for (const int l : {8, 20, 64, 152}) {
    for (const int s : {1, 2, 4}) {
      DiskRevolveOptions with_disk;
      with_disk.ram_slots = s;
      with_disk.write_cost = 3.0;
      with_disk.read_cost = 3.0;
      const DiskRevolveSolver two_level(l, with_disk);
      const DiskRevolveSolver one_level(l, ram_only(s));
      EXPECT_LE(two_level.forward_cost(), one_level.forward_cost() + 1e-9)
          << "l=" << l << " s=" << s;
    }
  }
}

TEST(DiskRevolve, DiskHelpsWhenRamIsScarce) {
  // Deep chain, 1 RAM slot, moderately priced disk: the quadratic
  // re-advance blowup should be avoided.
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 5.0;
  options.read_cost = 5.0;
  const DiskRevolveSolver two_level(128, options);
  const DiskRevolveSolver one_level(128, ram_only(1));
  EXPECT_LT(two_level.forward_cost(), 0.6 * one_level.forward_cost());
}

TEST(DiskRevolve, ExpensiveDiskIsIgnored) {
  DiskRevolveOptions options;
  options.ram_slots = 3;
  options.write_cost = 1e9;
  options.read_cost = 1e9;
  const DiskRevolveSolver solver(32, options);
  EXPECT_DOUBLE_EQ(solver.forward_cost(),
                   static_cast<double>(revolve::forward_cost(32, 3)));
  EXPECT_EQ(solver.peak_disk_slots(), 0);
}

TEST(DiskRevolve, SchedulesValidate) {
  for (const int l : {1, 2, 5, 16, 48}) {
    for (const double cost : {0.5, 2.0, 8.0}) {
      DiskRevolveOptions options;
      options.ram_slots = 2;
      options.write_cost = cost;
      options.read_cost = cost;
      const DiskRevolveSolver solver(l, options);
      const Schedule schedule = solver.make_schedule();
      EXPECT_EQ(schedule.validate(), std::nullopt)
          << "l=" << l << " cost=" << cost;
      EXPECT_EQ(schedule.stats().backwards, l);
    }
  }
}

TEST(DiskRevolve, PeakDiskSlotsCountsLiveDiskCheckpoints) {
  DiskRevolveOptions options;
  options.ram_slots = 1;
  options.write_cost = 1.0;
  options.read_cost = 1.0;
  const DiskRevolveSolver solver(64, options);
  EXPECT_GT(solver.peak_disk_slots(), 0);
  EXPECT_LE(solver.peak_disk_slots(), 64);
}

TEST(DiskRevolve, RejectsBadArguments) {
  EXPECT_THROW(DiskRevolveSolver(0, DiskRevolveOptions{}),
               std::invalid_argument);
  DiskRevolveOptions negative;
  negative.write_cost = -1.0;
  EXPECT_THROW(DiskRevolveSolver(4, negative), std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::core::disk
