#include <gtest/gtest.h>

#include <vector>

#include "core/dynprog.hpp"
#include "core/revolve.hpp"

namespace edgetrain::core::hetero {
namespace {

std::vector<double> ones(int l) {
  return std::vector<double>(static_cast<std::size_t>(l), 1.0);
}

std::vector<int> unit_sizes(int l) {
  return std::vector<int>(static_cast<std::size_t>(std::max(l - 1, 0)), 1);
}

// With all states costing one unit, the byte-budget DP must equal the
// slot-based solvers exactly.
class UnitReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(UnitReductionTest, ReducesToSlotSolvers) {
  const int l = GetParam();
  for (int budget = 0; budget <= std::min(l - 1, 6); ++budget) {
    const ByteBudgetSolver byte_solver(ones(l), unit_sizes(l), budget);
    EXPECT_DOUBLE_EQ(byte_solver.forward_cost(),
                     static_cast<double>(revolve::forward_cost(l, budget)))
        << "l=" << l << " budget=" << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, UnitReductionTest,
                         ::testing::Values(1, 2, 4, 7, 12, 20, 33));

TEST(ByteBudgetSolver, PrefersCheapBoundaries) {
  // Chain of 8 uniform-cost steps; state 4 costs 1 unit, all others 4.
  // With budget 1 the only storable state is 4 -- the solver must use it
  // and beat the store-nothing fallback.
  std::vector<int> units(7, 4);
  units[3] = 1;  // state 4
  const ByteBudgetSolver solver(ones(8), units, 1);
  const ByteBudgetSolver nothing(ones(8), units, 0);
  EXPECT_LT(solver.forward_cost(), nothing.forward_cost());
  // Storing state 4 splits 8 into 4+4:
  // F = 4 (advance) + F(4,0) + R(4,0) = 4 + (4+6) + 6 = 20.
  EXPECT_DOUBLE_EQ(solver.forward_cost(), 20.0);
}

TEST(ByteBudgetSolver, MonotoneInBudget) {
  std::vector<int> units{3, 1, 2, 1, 3, 1, 2, 1, 3, 1, 2};
  const std::vector<double> costs = ones(12);
  double prev = 1e300;
  for (int budget = 0; budget <= 10; ++budget) {
    const ByteBudgetSolver solver(costs, units, budget);
    EXPECT_LE(solver.forward_cost(), prev) << "budget=" << budget;
    prev = solver.forward_cost();
  }
}

TEST(ByteBudgetSolver, BeatsUniformSlotsAtEqualBytes) {
  // ResNet-like size profile: boundary states shrink by stages
  // (8,8,8,4,4,4,2,2,2,1,1). Budget of 8 units: uniform-slot planning must
  // assume the worst-case state size (8 units -> 1 slot), while the
  // byte-aware DP can afford several small checkpoints.
  const int l = 12;
  std::vector<int> units{8, 8, 8, 4, 4, 4, 2, 2, 2, 1, 1};
  const ByteBudgetSolver byte_solver(ones(l), units, 8);
  // Worst-case-sized uniform slots: 8 units buy exactly 1 slot.
  const HeteroSolver slot_solver(ones(l), 1);
  EXPECT_LT(byte_solver.forward_cost(), slot_solver.forward_cost(1));
}

TEST(ByteBudgetSolver, ZeroBudgetIsQuadraticFallback) {
  const int l = 9;
  const ByteBudgetSolver solver(ones(l), unit_sizes(l), 0);
  EXPECT_DOUBLE_EQ(solver.forward_cost(),
                   static_cast<double>(l) * (l + 1) / 2.0);
}

// Golden table, worked by hand. Costs {4,2,1}, state units {1,2} (the
// cheap-to-store boundary is the one after the expensive step):
//   budget 0: store-nothing fallback = 7 + 4 + 6         = 17
//   budget 1: only state 1 fits; split j=1: 4 + 5 + 0    = 9
//   budget 2: j=2 also feasible (3 + 1 + 0 = 13 via units 2) but j=1
//             is still optimal                            = 9
//   budget 3: both states storable: 4 + (2 + 1 + 2) + 0  -> j=1 then
//             j=2 inside, total 7 (pure sweep, rho = 1)
TEST(ByteBudgetSolver, GoldenTableHandComputed) {
  const std::vector<double> costs{4.0, 2.0, 1.0};
  const std::vector<int> units{1, 2};
  EXPECT_DOUBLE_EQ(ByteBudgetSolver(costs, units, 0).forward_cost(), 17.0);
  EXPECT_DOUBLE_EQ(ByteBudgetSolver(costs, units, 1).forward_cost(), 9.0);
  EXPECT_DOUBLE_EQ(ByteBudgetSolver(costs, units, 2).forward_cost(), 9.0);
  EXPECT_DOUBLE_EQ(ByteBudgetSolver(costs, units, 3).forward_cost(), 7.0);
  EXPECT_DOUBLE_EQ(ByteBudgetSolver(costs, units, 3).recompute_factor(),
                   1.0);
}

TEST(ByteBudgetSolver, RejectsBadArguments) {
  EXPECT_THROW(ByteBudgetSolver({}, {}, 1), std::invalid_argument);
  EXPECT_THROW(ByteBudgetSolver(ones(3), {1}, 1), std::invalid_argument);
  EXPECT_THROW(ByteBudgetSolver(ones(3), {1, 0}, 1), std::invalid_argument);
  EXPECT_THROW(ByteBudgetSolver(ones(3), {1, 1}, -1), std::invalid_argument);
}

struct ByteCase {
  int l;
  int budget;
};

class ByteScheduleTest : public ::testing::TestWithParam<ByteCase> {};

TEST_P(ByteScheduleTest, SchedulesValidate) {
  const auto [l, budget] = GetParam();
  std::vector<int> units;
  for (int i = 1; i < l; ++i) units.push_back(1 + (i % 3));
  const ByteBudgetSolver solver(ones(l), units, budget);
  const Schedule schedule = solver.make_schedule();
  EXPECT_EQ(schedule.validate(), std::nullopt)
      << "l=" << l << " budget=" << budget;
  EXPECT_EQ(schedule.stats().backwards, l);
}

INSTANTIATE_TEST_SUITE_P(Grid, ByteScheduleTest,
                         ::testing::Values(ByteCase{1, 0}, ByteCase{4, 2},
                                           ByteCase{8, 3}, ByteCase{12, 6},
                                           ByteCase{20, 10}, ByteCase{30, 5}));

TEST(ByteBudgetSolver, ScheduleAdvancesMatchAnalyticCost) {
  // For unit costs the advances executed by the emitted schedule stay at
  // or below the analytic count (the emitter folds the last backward into
  // the sweep).
  const int l = 16;
  std::vector<int> units;
  for (int i = 1; i < l; ++i) units.push_back(1 + (i % 2));
  const ByteBudgetSolver solver(ones(l), units, 6);
  const ScheduleStats stats = solver.make_schedule().stats();
  EXPECT_LE(static_cast<double>(stats.advances), solver.forward_cost());
}

}  // namespace
}  // namespace edgetrain::core::hetero
