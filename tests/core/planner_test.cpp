#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace edgetrain::core {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

ChainSpec demo_chain(int depth = 50, double fixed_mib = 400.0,
                     double act_mib = 5.0) {
  ChainSpec spec;
  spec.name = "demo";
  spec.depth = depth;
  spec.fixed_bytes = fixed_mib * kMiB;
  spec.activation_bytes_per_step = act_mib * kMiB;
  return spec;
}

TEST(MemoryPlanner, FullStorageBytesAtRhoOne) {
  const MemoryPlanner planner(demo_chain());
  const PlanPoint point = planner.plan_for_rho(1.0);
  EXPECT_EQ(point.free_slots, 49);
  EXPECT_EQ(point.total_slots, 50);
  EXPECT_DOUBLE_EQ(point.achieved_rho, 1.0);
  EXPECT_DOUBLE_EQ(point.peak_bytes, planner.no_checkpoint_bytes());
}

TEST(MemoryPlanner, MinPossibleIsOneSlot) {
  const MemoryPlanner planner(demo_chain());
  EXPECT_DOUBLE_EQ(planner.min_possible_bytes(),
                   (400.0 + 5.0) * kMiB);
}

TEST(MemoryPlanner, MemoryMonotoneNonIncreasingInRho) {
  const MemoryPlanner planner(demo_chain(101));
  double prev = std::numeric_limits<double>::infinity();
  for (const PlanPoint& point : planner.sweep_rho(1.0, 3.0, 41)) {
    EXPECT_LE(point.peak_bytes, prev + 1e-6);
    EXPECT_LE(point.achieved_rho, point.rho_budget + 1e-9);
    prev = point.peak_bytes;
  }
}

TEST(MemoryPlanner, SweepEndpointsAreExtremes) {
  const MemoryPlanner planner(demo_chain(64));
  const auto curve = planner.sweep_rho(1.0, 8.0, 30);
  EXPECT_DOUBLE_EQ(curve.front().peak_bytes, planner.no_checkpoint_bytes());
  // At a generous budget the *activation* footprint collapses (the fixed
  // weight/optimizer bytes are incompressible).
  const double fixed = planner.chain().fixed_bytes;
  EXPECT_LT(curve.back().peak_bytes - fixed,
            0.15 * (planner.no_checkpoint_bytes() - fixed));
}

TEST(MemoryPlanner, ReportFitsWithoutCheckpointing) {
  const MemoryPlanner planner(demo_chain(20, 100.0, 2.0));
  // Full storage = 100 + 40 = 140 MiB.
  const PlanReport report = planner.report_for_device(200.0 * kMiB);
  EXPECT_TRUE(report.fits_without_checkpointing);
  EXPECT_TRUE(report.fits_with_checkpointing);
  EXPECT_DOUBLE_EQ(report.min_rho_to_fit, 1.0);
}

TEST(MemoryPlanner, ReportNeedsCheckpointing) {
  const MemoryPlanner planner(demo_chain(50, 400.0, 5.0));
  // Full storage 650 MiB; device 500 MiB -> 20 total slots max.
  const PlanReport report = planner.report_for_device(500.0 * kMiB);
  EXPECT_FALSE(report.fits_without_checkpointing);
  EXPECT_TRUE(report.fits_with_checkpointing);
  EXPECT_GT(report.min_rho_to_fit, 1.0);
  EXPECT_LE(report.recommended.peak_bytes, 500.0 * kMiB);
  EXPECT_LE(report.recommended.total_slots, 20);
}

TEST(MemoryPlanner, ReportInfeasibleDevice) {
  const MemoryPlanner planner(demo_chain(50, 400.0, 5.0));
  const PlanReport report = planner.report_for_device(300.0 * kMiB);
  EXPECT_FALSE(report.fits_with_checkpointing);
  EXPECT_TRUE(std::isinf(report.min_rho_to_fit));
}

TEST(MemoryPlanner, NMaxMatchesPaperFormula) {
  // n_max = (M_C - M_W) / (k * M_A)
  EXPECT_EQ(MemoryPlanner::max_depth_without_checkpointing(
                2048.0 * kMiB, 178.0 * kMiB, 55.0 * kMiB),
            34);  // (2048-178)/55 = 34.0
  EXPECT_EQ(MemoryPlanner::max_depth_without_checkpointing(
                100.0 * kMiB, 200.0 * kMiB, 1.0 * kMiB),
            0);
}

TEST(MemoryPlanner, PlanForRhoUsesMinimalSlots) {
  const MemoryPlanner planner(demo_chain(101));
  const PlanPoint point = planner.plan_for_rho(1.5);
  // The chosen slot count is minimal: one fewer exceeds the budget.
  EXPECT_LE(point.achieved_rho, 1.5);
  if (point.free_slots > 0) {
    const PlanPoint tighter = planner.plan_for_rho(point.achieved_rho - 1e-6);
    EXPECT_GE(tighter.free_slots, point.free_slots);
  }
}

TEST(MemoryPlanner, RejectsBadChain) {
  ChainSpec bad = demo_chain();
  bad.depth = 0;
  EXPECT_THROW(MemoryPlanner{bad}, std::invalid_argument);
  ChainSpec zero_act = demo_chain();
  zero_act.activation_bytes_per_step = 0.0;
  EXPECT_THROW(MemoryPlanner{zero_act}, std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::core
