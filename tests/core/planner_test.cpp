#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "analysis/interp.hpp"
#include "core/revolve.hpp"
#include "core/slot_codec.hpp"
#include "models/linear_resnet.hpp"

namespace edgetrain::core {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;

ChainSpec demo_chain(int depth = 50, double fixed_mib = 400.0,
                     double act_mib = 5.0) {
  ChainSpec spec;
  spec.name = "demo";
  spec.depth = depth;
  spec.fixed_bytes = fixed_mib * kMiB;
  spec.activation_bytes_per_step = act_mib * kMiB;
  return spec;
}

TEST(MemoryPlanner, FullStorageBytesAtRhoOne) {
  const MemoryPlanner planner(demo_chain());
  const PlanPoint point = planner.plan_for_rho(1.0);
  EXPECT_EQ(point.free_slots, 49);
  EXPECT_EQ(point.total_slots, 50);
  EXPECT_DOUBLE_EQ(point.achieved_rho, 1.0);
  EXPECT_DOUBLE_EQ(point.peak_bytes, planner.no_checkpoint_bytes());
}

TEST(MemoryPlanner, MinPossibleIsOneSlot) {
  const MemoryPlanner planner(demo_chain());
  EXPECT_DOUBLE_EQ(planner.min_possible_bytes(),
                   (400.0 + 5.0) * kMiB);
}

TEST(MemoryPlanner, MemoryMonotoneNonIncreasingInRho) {
  const MemoryPlanner planner(demo_chain(101));
  double prev = std::numeric_limits<double>::infinity();
  for (const PlanPoint& point : planner.sweep_rho(1.0, 3.0, 41)) {
    EXPECT_LE(point.peak_bytes, prev + 1e-6);
    EXPECT_LE(point.achieved_rho, point.rho_budget + 1e-9);
    prev = point.peak_bytes;
  }
}

TEST(MemoryPlanner, SweepEndpointsAreExtremes) {
  const MemoryPlanner planner(demo_chain(64));
  const auto curve = planner.sweep_rho(1.0, 8.0, 30);
  EXPECT_DOUBLE_EQ(curve.front().peak_bytes, planner.no_checkpoint_bytes());
  // At a generous budget the *activation* footprint collapses (the fixed
  // weight/optimizer bytes are incompressible).
  const double fixed = planner.chain().fixed_bytes;
  EXPECT_LT(curve.back().peak_bytes - fixed,
            0.15 * (planner.no_checkpoint_bytes() - fixed));
}

TEST(MemoryPlanner, ReportFitsWithoutCheckpointing) {
  const MemoryPlanner planner(demo_chain(20, 100.0, 2.0));
  // Full storage = 100 + 40 = 140 MiB.
  const PlanReport report = planner.report_for_device(200.0 * kMiB);
  EXPECT_TRUE(report.fits_without_checkpointing);
  EXPECT_TRUE(report.fits_with_checkpointing);
  EXPECT_DOUBLE_EQ(report.min_rho_to_fit, 1.0);
}

TEST(MemoryPlanner, ReportNeedsCheckpointing) {
  const MemoryPlanner planner(demo_chain(50, 400.0, 5.0));
  // Full storage 650 MiB; device 500 MiB -> 20 total slots max.
  const PlanReport report = planner.report_for_device(500.0 * kMiB);
  EXPECT_FALSE(report.fits_without_checkpointing);
  EXPECT_TRUE(report.fits_with_checkpointing);
  EXPECT_GT(report.min_rho_to_fit, 1.0);
  EXPECT_LE(report.recommended.peak_bytes, 500.0 * kMiB);
  EXPECT_LE(report.recommended.total_slots, 20);
}

TEST(MemoryPlanner, ReportInfeasibleDevice) {
  const MemoryPlanner planner(demo_chain(50, 400.0, 5.0));
  const PlanReport report = planner.report_for_device(300.0 * kMiB);
  EXPECT_FALSE(report.fits_with_checkpointing);
  EXPECT_TRUE(std::isinf(report.min_rho_to_fit));
}

TEST(MemoryPlanner, NMaxMatchesPaperFormula) {
  // n_max = (M_C - M_W) / (k * M_A)
  EXPECT_EQ(MemoryPlanner::max_depth_without_checkpointing(
                2048.0 * kMiB, 178.0 * kMiB, 55.0 * kMiB),
            34);  // (2048-178)/55 = 34.0
  EXPECT_EQ(MemoryPlanner::max_depth_without_checkpointing(
                100.0 * kMiB, 200.0 * kMiB, 1.0 * kMiB),
            0);
}

TEST(MemoryPlanner, PlanForRhoUsesMinimalSlots) {
  const MemoryPlanner planner(demo_chain(101));
  const PlanPoint point = planner.plan_for_rho(1.5);
  // The chosen slot count is minimal: one fewer exceeds the budget.
  EXPECT_LE(point.achieved_rho, 1.5);
  if (point.free_slots > 0) {
    const PlanPoint tighter = planner.plan_for_rho(point.achieved_rho - 1e-6);
    EXPECT_GE(tighter.free_slots, point.free_slots);
  }
}

TEST(MemoryPlanner, RejectsBadChain) {
  ChainSpec bad = demo_chain();
  bad.depth = 0;
  EXPECT_THROW(MemoryPlanner{bad}, std::invalid_argument);
  ChainSpec zero_act = demo_chain();
  zero_act.activation_bytes_per_step = 0.0;
  EXPECT_THROW(MemoryPlanner{zero_act}, std::invalid_argument);
  ChainSpec bad_ratio = demo_chain();
  bad_ratio.checkpoint_bytes_ratio = 0.0;
  EXPECT_THROW(MemoryPlanner{bad_ratio}, std::invalid_argument);
  bad_ratio.checkpoint_bytes_ratio = 1.5;
  EXPECT_THROW(MemoryPlanner{bad_ratio}, std::invalid_argument);
}

// --- compressed checkpoint slots -------------------------------------------

TEST(MemoryPlanner, CompressedPeakFollowsWeightedFormula) {
  // peak(s) = fixed + (1 + s * ratio) * act: the frontier activation is
  // always plaintext, resting checkpoints cost ratio * act each.
  ChainSpec spec = demo_chain(50, 400.0, 5.0);
  spec.checkpoint_bytes_ratio = 0.5;
  const MemoryPlanner planner(spec);
  const PlanPoint full = planner.plan_for_rho(1.0);
  EXPECT_DOUBLE_EQ(full.peak_bytes,
                   (400.0 + (1.0 + 0.5 * 49.0) * 5.0) * kMiB);
  EXPECT_DOUBLE_EQ(planner.no_checkpoint_bytes(), full.peak_bytes);
  // ratio = 1 must reproduce the uncompressed planner exactly.
  const MemoryPlanner plain(demo_chain(50, 400.0, 5.0));
  for (const double cap_mib : {401.0, 420.0, 500.0, 650.0, 1000.0}) {
    const PlanReport a = plain.report_for_device(cap_mib * kMiB);
    ChainSpec one = demo_chain(50, 400.0, 5.0);
    one.checkpoint_bytes_ratio = 1.0;
    const PlanReport b = MemoryPlanner(one).report_for_device(cap_mib * kMiB);
    EXPECT_DOUBLE_EQ(a.min_rho_to_fit, b.min_rho_to_fit) << cap_mib;
  }
}

TEST(MemoryPlanner, CompressionAdmitsMoreSlotsAtSameCap) {
  // Device 500 MiB, fixed 400, act 5: plain gets 20 total slots,
  // ratio 0.5 affords 1 + floor((500-400-5)/2.5) = 39.
  const MemoryPlanner plain(demo_chain(50, 400.0, 5.0));
  ChainSpec spec = demo_chain(50, 400.0, 5.0);
  spec.checkpoint_bytes_ratio = 0.5;
  const MemoryPlanner compressed(spec);
  const PlanReport plain_report = plain.report_for_device(500.0 * kMiB);
  const PlanReport comp_report = compressed.report_for_device(500.0 * kMiB);
  EXPECT_EQ(plain_report.recommended.total_slots, 20);
  EXPECT_EQ(comp_report.recommended.total_slots, 39);
  EXPECT_LT(comp_report.min_rho_to_fit, plain_report.min_rho_to_fit);
  EXPECT_LE(comp_report.recommended.peak_bytes, 500.0 * kMiB);
}

// The ISSUE's acceptance bar: on the paper's LinearResNet_{50,101,152}
// at the Waggle node's 2 GiB budget, a 0.5-ratio codec must let the
// planner select a strictly lower recompute factor than uncompressed
// wherever checkpointing binds — and the schedule abstract interpreter
// must confirm the chosen plan's weighted peak-memory bound.
TEST(MemoryPlanner, CodecPlansStrictlyLowerRhoOnLinearResNets) {
  using models::LinearResNet;
  using models::ResNetMemoryModel;
  using models::ResNetSpec;
  using models::ResNetVariant;
  for (const ResNetVariant variant :
       {ResNetVariant::ResNet50, ResNetVariant::ResNet101,
        ResNetVariant::ResNet152}) {
    const ResNetMemoryModel model(ResNetSpec::make(variant));
    const LinearResNet linear = LinearResNet::from_resnet(model, 500, 8);

    const MemoryPlanner plain(linear.to_chain_spec());
    const MemoryPlanner compressed(linear.to_chain_spec(0.5));
    const PlanReport plain_report =
        plain.report_for_device(models::kWaggleMemoryBytes);
    const PlanReport comp_report =
        compressed.report_for_device(models::kWaggleMemoryBytes);

    ASSERT_TRUE(plain_report.fits_with_checkpointing) << linear.name;
    ASSERT_GT(plain_report.min_rho_to_fit, 1.0) << linear.name;
    EXPECT_TRUE(comp_report.fits_with_checkpointing) << linear.name;
    EXPECT_LT(comp_report.min_rho_to_fit, plain_report.min_rho_to_fit)
        << linear.name;
    EXPECT_GT(comp_report.recommended.free_slots,
              plain_report.recommended.free_slots)
        << linear.name;
    EXPECT_LE(comp_report.recommended.peak_bytes, models::kWaggleMemoryBytes)
        << linear.name;

    // Interpreter confirmation: the revolve schedule realising the chosen
    // plan keeps its weighted activation peak within 1 + ratio * s units,
    // so the byte bound fixed + units * act really holds at execution time.
    const int s = comp_report.recommended.free_slots;
    const Schedule schedule = revolve::make_schedule(linear.depth, s);
    analysis::CostModel cost;
    cost.slot_bytes_ratio = 0.5;
    analysis::Bounds bounds;
    bounds.max_weighted_units = 1.0 + 0.5 * static_cast<double>(s);
    bounds.max_ram_slots = s + 1;
    const analysis::Report verdict =
        analysis::interpret(schedule, cost, bounds);
    EXPECT_EQ(verdict.error_count(), 0)
        << linear.name << "\n" << verdict.summary();
    EXPECT_LE(linear.fixed_bytes + verdict.facts.peak_weighted_units *
                                       linear.act_bytes_per_step,
              comp_report.recommended.peak_bytes + 1.0)
        << linear.name;
  }
}

// The bitmap codec's achieved ratio on realistic (>= 70%-sparse post-ReLU)
// activations, measured by actually encoding one: blob bytes / payload
// bytes. Lands around 1/8 byte of bitmap + density * 4 bytes of packed
// nonzeros per element, i.e. ~0.33 at 70% sparsity -- below fp16's 0.5.
double measured_bitmap_ratio(double density) {
  std::mt19937 rng(91);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Tensor act = Tensor::zeros(Shape{64, 1024});
  float* data = act.data();
  for (std::int64_t i = 0; i < act.numel(); ++i) {
    // ReLU-like: most lanes exactly +0.0f, the rest arbitrary magnitudes.
    data[i] = coin(rng) < density ? std::abs(dist(rng)) + 0.01F : 0.0F;
  }
  const std::vector<std::uint8_t> blob =
      codec::encode(SlotCodec::Bitmap, act);
  return static_cast<double>(blob.size()) /
         (static_cast<double>(act.numel()) * sizeof(float));
}

// The ISSUE's dynamic-ratio acceptance bar: at the Waggle node's 2 GiB
// budget on LinearResNet_{50,101,152} with >= 70%-sparse activations, the
// measured bitmap per-slot ratios must buy a strictly lower min-rho than
// the fp16 cast's static 0.5 -- lossless beating lossy is exactly why the
// planner accepts measured vectors instead of worst-case scalars.
TEST(MemoryPlanner, BitmapMeasuredRatiosBeatFp16AtWaggleCap) {
  using models::LinearResNet;
  using models::ResNetMemoryModel;
  using models::ResNetSpec;
  using models::ResNetVariant;

  const double bitmap_ratio = measured_bitmap_ratio(0.3);  // 70% sparse
  ASSERT_GT(bitmap_ratio, 0.0);
  ASSERT_LT(bitmap_ratio, 0.5) << "bitmap must out-pack fp16 at 70% zeros";

  for (const ResNetVariant variant :
       {ResNetVariant::ResNet50, ResNetVariant::ResNet101,
        ResNetVariant::ResNet152}) {
    const ResNetMemoryModel model(ResNetSpec::make(variant));
    const LinearResNet linear = LinearResNet::from_resnet(model, 500, 8);

    const MemoryPlanner fp16(linear.to_chain_spec(0.5));
    ChainSpec bitmap_spec = linear.to_chain_spec(bitmap_ratio);
    // Per-slot measured vector (entry k prices checkpoint slot k + 1), the
    // form SlotStore::measured_slot_ratio feeds: every slot at the achieved
    // bitmap ratio, tail falling back to the same value.
    bitmap_spec.checkpoint_slot_ratios.assign(
        static_cast<std::size_t>(linear.depth - 1), bitmap_ratio);
    const MemoryPlanner bitmap(bitmap_spec);

    const PlanReport fp16_report =
        fp16.report_for_device(models::kWaggleMemoryBytes);
    const PlanReport bitmap_report =
        bitmap.report_for_device(models::kWaggleMemoryBytes);

    ASSERT_TRUE(fp16_report.fits_with_checkpointing) << linear.name;
    ASSERT_GT(fp16_report.min_rho_to_fit, 1.0)
        << linear.name << ": cap must bind for the comparison to be strict";
    EXPECT_TRUE(bitmap_report.fits_with_checkpointing) << linear.name;
    EXPECT_LT(bitmap_report.min_rho_to_fit, fp16_report.min_rho_to_fit)
        << linear.name;
    EXPECT_GT(bitmap_report.recommended.free_slots,
              fp16_report.recommended.free_slots)
        << linear.name;
    EXPECT_LE(bitmap_report.recommended.peak_bytes,
              models::kWaggleMemoryBytes)
        << linear.name;

    // The per-slot peak formula the planner used must match the weighted
    // prefix sum it advertises.
    const int s = bitmap_report.recommended.free_slots;
    EXPECT_NEAR(bitmap_report.recommended.peak_bytes,
                linear.fixed_bytes +
                    (1.0 + bitmap.weighted_slot_units(s)) *
                        linear.act_bytes_per_step,
                1.0)
        << linear.name;
  }
}

TEST(RevolveBytes, MaxFreeSlotsForBytesMatchesPlannerGeometry) {
  // room = cap - fixed - act; slots = floor(room / (act * ratio)).
  EXPECT_EQ(revolve::max_free_slots_for_bytes(500.0, 400.0, 5.0, 1.0), 19);
  EXPECT_EQ(revolve::max_free_slots_for_bytes(500.0, 400.0, 5.0, 0.5), 38);
  EXPECT_EQ(revolve::max_free_slots_for_bytes(404.0, 400.0, 5.0, 0.5), -1);
  EXPECT_EQ(revolve::max_free_slots_for_bytes(405.0, 400.0, 5.0, 0.5), 0);
  EXPECT_THROW((void)revolve::max_free_slots_for_bytes(500.0, 0.0, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)revolve::max_free_slots_for_bytes(500.0, 0.0, 5.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)revolve::max_free_slots_for_bytes(500.0, 0.0, 5.0, 1.5),
               std::invalid_argument);
}

TEST(RevolveBytes, PerSlotOverloadWalksMeasuredPrefixThenClosedFormTail) {
  const std::vector<double> measured{0.2, 0.4};
  // room = 500 - 400 - 5 = 95 -> weighted units budget 95 / 5 = 19.
  // Measured walk consumes 0.6, tail at fill 1.0 adds floor(18.4) = 18,
  // so s = 2 + 18 = 20.
  EXPECT_EQ(revolve::max_free_slots_for_bytes(500.0, 400.0, 5.0, measured,
                                              1.0),
            20);
  // Budget 2 units (cap 415 = 400 + 5 + 2 * 5): the walk admits both
  // measured slots (sum 0.6), the closed-form tail adds
  // floor((2 - 0.6) / 1.0) = 1 more: s = 3.
  EXPECT_EQ(revolve::max_free_slots_for_bytes(415.0, 400.0, 5.0, measured,
                                              1.0),
            3);
  // Budget 0.5 units: the second measured slot (cumulative 0.6) already
  // overflows mid-walk.
  EXPECT_EQ(revolve::max_free_slots_for_bytes(407.5, 400.0, 5.0, measured,
                                              1.0),
            1);
  // All-equal vector must reproduce the scalar overload exactly.
  EXPECT_EQ(revolve::max_free_slots_for_bytes(500.0, 400.0, 5.0,
                                              {0.5, 0.5, 0.5}, 0.5),
            revolve::max_free_slots_for_bytes(500.0, 400.0, 5.0, 0.5));
  // Empty vector degenerates to the scalar model at fill_ratio.
  EXPECT_EQ(revolve::max_free_slots_for_bytes(500.0, 400.0, 5.0, {}, 0.5),
            38);
  // No room for even the frontier -> -1; exactly the frontier -> 0.
  EXPECT_EQ(revolve::max_free_slots_for_bytes(404.0, 400.0, 5.0, measured,
                                              0.5),
            -1);
  EXPECT_EQ(revolve::max_free_slots_for_bytes(405.0, 400.0, 5.0, measured,
                                              1.0),
            0);
  // Domain checks: act <= 0, out-of-range fill, out-of-range entries.
  EXPECT_THROW(
      (void)revolve::max_free_slots_for_bytes(500.0, 0.0, 0.0, measured, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)revolve::max_free_slots_for_bytes(500.0, 0.0, 5.0, measured, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)revolve::max_free_slots_for_bytes(500.0, 0.0, 5.0, measured, 1.5),
      std::invalid_argument);
  EXPECT_THROW(
      (void)revolve::max_free_slots_for_bytes(500.0, 0.0, 5.0, {0.5, 0.0}, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)revolve::max_free_slots_for_bytes(500.0, 0.0, 5.0, {1.5}, 1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::core
