// Stress test for the sharded ingest pipeline (ctest label: slow; the CI
// TSan job runs it). Many producers hammer the server while readers poll
// the aggregate concurrently; at the end every delta must be merged
// exactly once -- no losses, no double counts -- and deliberate replays
// must all be dropped. The invariant checks are exact integer equalities,
// so any lost wakeup, torn batch swap or racing merge shows up as a hard
// failure (and any data race trips TSan).
#include "fleet/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace edgetrain::fleet {
namespace {

StudentDelta stress_delta(std::uint32_t node, std::uint64_t seq) {
  StudentDelta delta;
  delta.node = node;
  delta.seq = seq;
  delta.samples = 1;
  delta.loss_milli = 250;
  for (std::size_t k = 0; k < kDeltaComponents; ++k) {
    delta.weights[k] = static_cast<std::int32_t>((node + seq + k) % 11) - 5;
  }
  return delta;
}

TEST(FleetServerStress, NoLostOrDoubleCountedDeltas) {
  constexpr unsigned kProducers = 8;
  constexpr std::uint32_t kNodesPerProducer = 250;
  constexpr std::uint64_t kSeqsPerNode = 200;
  constexpr std::uint64_t kPerProducer =
      static_cast<std::uint64_t>(kNodesPerProducer) * kSeqsPerNode;

  ServerConfig config;
  config.shards = 32;
  config.merge_threads = 4;
  config.queue_capacity = 256;  // small enough to hit back-pressure
  FleetServer server(config);

  std::atomic<bool> reading{true};
  // Concurrent readers: aggregate() and stats() must be safe mid-ingest.
  std::thread reader([&server, &reading] {
    std::uint64_t last = 0;
    while (reading.load(std::memory_order_acquire)) {
      const FleetAggregate agg = server.aggregate();
      EXPECT_GE(agg.deltas, last) << "merged count went backwards";
      last = agg.deltas;
      (void)server.stats();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&server, p] {
      for (std::uint64_t seq = 1; seq <= kSeqsPerNode; ++seq) {
        for (std::uint32_t n = 0; n < kNodesPerProducer; ++n) {
          const std::uint32_t node = p * kNodesPerProducer + n;
          server.ingest(stress_delta(node, seq));
          // Every 16th upload is retransmitted (a flaky uplink): the
          // server must drop the replay, not double-count it.
          if ((seq + n) % 16 == 0) {
            server.ingest(stress_delta(node, seq));
          }
        }
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  server.stop();
  reading.store(false, std::memory_order_release);
  reader.join();

  constexpr std::uint64_t kUnique = kPerProducer * kProducers;
  const FleetAggregate agg = server.aggregate();
  const ServerStats stats = server.stats();

  EXPECT_EQ(agg.deltas, kUnique) << "lost or double-counted deltas";
  EXPECT_EQ(agg.samples, kUnique);
  EXPECT_EQ(agg.nodes_seen, kProducers * kNodesPerProducer);
  EXPECT_EQ(agg.loss_milli_sum,
            static_cast<std::int64_t>(kUnique) * 250);
  EXPECT_EQ(stats.merged, stats.ingested);
  EXPECT_EQ(stats.ingested - stats.duplicate_drops, kUnique);
  EXPECT_GT(stats.duplicate_drops, 0U) << "replays were injected";

  // The weight sums are exactly the serial fold of the unique deltas.
  FleetAggregate expected;
  for (unsigned p = 0; p < kProducers; ++p) {
    for (std::uint64_t seq = 1; seq <= kSeqsPerNode; ++seq) {
      for (std::uint32_t n = 0; n < kNodesPerProducer; ++n) {
        const StudentDelta delta =
            stress_delta(p * kNodesPerProducer + n, seq);
        for (std::size_t k = 0; k < kDeltaComponents; ++k) {
          expected.weight_sum[k] += delta.weights[k];
        }
      }
    }
  }
  EXPECT_EQ(agg.weight_sum, expected.weight_sum);
}

TEST(FleetServerStress, StopUnderFireDrainsEverything) {
  // Producers race stop(): whatever was accepted before stop() returned
  // must be merged, because stop() drains before joining the mergers.
  for (int round = 0; round < 5; ++round) {
    ServerConfig config;
    config.shards = 8;
    config.merge_threads = 2;
    config.queue_capacity = 64;
    FleetServer server(config);

    std::vector<std::thread> producers;
    std::atomic<std::uint64_t> sent{0};
    for (unsigned p = 0; p < 4; ++p) {
      producers.emplace_back([&server, &sent, p] {
        for (std::uint64_t seq = 1; seq <= 2000; ++seq) {
          server.ingest(stress_delta(p, seq));
          sent.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& thread : producers) thread.join();
    server.stop();
    EXPECT_EQ(server.aggregate().deltas, sent.load());
    EXPECT_EQ(server.stats().merged, sent.load());
  }
}

}  // namespace
}  // namespace edgetrain::fleet
