// Tests for the deterministic discrete-event engine: dispatch order,
// tie-breaking, horizon semantics, reentrancy, trace fingerprints.
#include "fleet/event_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace edgetrain::fleet {
namespace {

TEST(EventEngine, DispatchesInTimeOrder) {
  EventEngine engine;
  engine.schedule(30, 3, EventKind::Sync);
  engine.schedule(10, 1, EventKind::Sync);
  engine.schedule(20, 2, EventKind::Crash);

  std::vector<std::uint32_t> order;
  engine.run(100, [&](const Event& event) { order.push_back(event.node); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(engine.events_dispatched(), 3U);
  EXPECT_EQ(engine.pending(), 0U);
}

TEST(EventEngine, TiesBreakInScheduleOrder) {
  EventEngine engine;
  for (std::uint32_t node = 0; node < 16; ++node) {
    engine.schedule(50, node, EventKind::Sync);
  }
  std::vector<std::uint32_t> order;
  engine.run(100, [&](const Event& event) { order.push_back(event.node); });
  ASSERT_EQ(order.size(), 16U);
  for (std::uint32_t node = 0; node < 16; ++node) {
    EXPECT_EQ(order[node], node);
  }
}

TEST(EventEngine, HorizonIsExclusive) {
  EventEngine engine;
  engine.schedule(99, 0, EventKind::Sync);
  engine.schedule(100, 1, EventKind::Sync);
  std::uint64_t count = 0;
  engine.run(100, [&](const Event&) { ++count; });
  EXPECT_EQ(count, 1U);
  EXPECT_EQ(engine.pending(), 1U) << "the horizon event stays queued";
  engine.run(101, [&](const Event&) { ++count; });
  EXPECT_EQ(count, 2U);
}

TEST(EventEngine, HandlersScheduleFollowOnEvents) {
  EventEngine engine;
  engine.schedule(1, 0, EventKind::Sync);
  std::uint64_t chain = 0;
  engine.run(100, [&](const Event& event) {
    ++chain;
    if (event.time_us + 10 < 100) {
      engine.schedule(event.time_us + 10, 0, EventKind::Sync);
    }
  });
  EXPECT_EQ(chain, 10U);  // 1, 11, ..., 91
  EXPECT_EQ(engine.now_us(), 91U);
}

TEST(EventEngine, PastTimesClampToNow) {
  EventEngine engine;
  engine.schedule(50, 0, EventKind::Sync);
  std::vector<std::uint64_t> times;
  engine.run(100, [&](const Event& event) {
    times.push_back(event.time_us);
    if (times.size() == 1) {
      engine.schedule(10, 1, EventKind::Sync);  // in the past: runs "now"
    }
  });
  EXPECT_EQ(times, (std::vector<std::uint64_t>{50, 50}));
}

TEST(EventEngine, IdenticalRunsShareTheTraceCrc) {
  const auto run_once = [] {
    EventEngine engine;
    engine.schedule(5, 0, EventKind::Sync);
    engine.schedule(5, 1, EventKind::Crash);
    engine.schedule(7, 2, EventKind::Recover);
    engine.run(100, [&](const Event& event) {
      if (event.kind == EventKind::Sync) {
        engine.schedule(event.time_us + 3, event.node, EventKind::Sync);
      }
    });
    return engine.trace_crc();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EventEngine, DifferentTracesDiffer) {
  EventEngine a;
  a.schedule(5, 0, EventKind::Sync);
  a.run(100, [](const Event&) {});
  EventEngine b;
  b.schedule(5, 0, EventKind::Crash);
  b.run(100, [](const Event&) {});
  EXPECT_NE(a.trace_crc(), b.trace_crc());
}

}  // namespace
}  // namespace edgetrain::fleet
