// Tests for the sharded delta-aggregation server: exact merge counts,
// order-independence (multi-threaded == serial), duplicate drops, flush
// semantics, stats, and the durable "ETFA" aggregate snapshot.
#include "fleet/server.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "persist/atomic_file.hpp"
#include "persist/fault.hpp"

namespace edgetrain::fleet {
namespace {

namespace fs = std::filesystem;

StudentDelta make_delta(std::uint32_t node, std::uint64_t seq) {
  StudentDelta delta;
  delta.node = node;
  delta.seq = seq;
  delta.samples = 3;
  delta.loss_milli = static_cast<std::int32_t>(100 + node % 7);
  for (std::size_t k = 0; k < kDeltaComponents; ++k) {
    delta.weights[k] =
        static_cast<std::int32_t>((node * 31 + seq * 7 + k) % 201) - 100;
  }
  return delta;
}

/// Ground truth: the serial fold every threaded run must reproduce.
FleetAggregate serial_aggregate(const std::vector<StudentDelta>& deltas) {
  FleetAggregate agg;
  std::vector<std::uint64_t> last_seq;
  for (const StudentDelta& delta : deltas) {
    if (delta.node >= last_seq.size()) last_seq.resize(delta.node + 1, 0);
    if (delta.seq <= last_seq[delta.node]) continue;
    if (last_seq[delta.node] == 0) ++agg.nodes_seen;
    last_seq[delta.node] = delta.seq;
    ++agg.deltas;
    agg.samples += delta.samples;
    agg.loss_milli_sum += delta.loss_milli;
    for (std::size_t k = 0; k < kDeltaComponents; ++k) {
      agg.weight_sum[k] += delta.weights[k];
    }
  }
  return agg;
}

TEST(FleetServer, MergesEveryDeltaExactlyOnce) {
  ServerConfig config;
  config.shards = 8;
  config.merge_threads = 2;
  FleetServer server(config);

  std::vector<StudentDelta> deltas;
  for (std::uint32_t node = 0; node < 200; ++node) {
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      deltas.push_back(make_delta(node, seq));
    }
  }
  for (const StudentDelta& delta : deltas) server.ingest(delta);
  server.flush();

  EXPECT_EQ(server.aggregate(), serial_aggregate(deltas));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.ingested, deltas.size());
  EXPECT_EQ(stats.merged, deltas.size());
  EXPECT_EQ(stats.duplicate_drops, 0U);
  server.stop();
}

TEST(FleetServer, DropsDuplicateAndReplayedUploads) {
  ServerConfig config;
  config.shards = 4;
  config.merge_threads = 1;
  FleetServer server(config);

  server.ingest(make_delta(1, 1));
  server.ingest(make_delta(1, 2));
  server.ingest(make_delta(1, 2));  // duplicate
  server.ingest(make_delta(1, 1));  // stale replay
  server.ingest(make_delta(2, 1));
  server.flush();

  const FleetAggregate agg = server.aggregate();
  EXPECT_EQ(agg.deltas, 3U);
  EXPECT_EQ(agg.nodes_seen, 2U);
  EXPECT_EQ(server.stats().duplicate_drops, 2U);
  server.stop();
}

TEST(FleetServer, ThreadedIngestMatchesSerialExactly) {
  std::vector<StudentDelta> deltas;
  for (std::uint32_t node = 0; node < 64; ++node) {
    for (std::uint64_t seq = 1; seq <= 50; ++seq) {
      deltas.push_back(make_delta(node, seq));
    }
  }
  const FleetAggregate expected = serial_aggregate(deltas);

  ServerConfig config;
  config.shards = 16;
  config.merge_threads = 3;
  config.queue_capacity = 64;  // small: exercises back-pressure too
  FleetServer server(config);

  // 8 producers, node-striped so each node's seqs stay in order.
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 8; ++p) {
    producers.emplace_back([&server, &deltas, p] {
      for (const StudentDelta& delta : deltas) {
        if (delta.node % 8 == p) server.ingest(delta);
      }
    });
  }
  for (std::thread& thread : producers) thread.join();
  server.stop();

  EXPECT_EQ(server.aggregate(), expected)
      << "threaded merge must be bit-identical to the serial fold";
}

TEST(FleetServer, TryIngestRefusesWhenFullInsteadOfBlocking) {
  ServerConfig config;
  config.shards = 1;
  config.merge_threads = 1;
  config.queue_capacity = 4;
  FleetServer server(config);
  // The merger drains continuously, so try_ingest may transiently fail but
  // an ingest retry loop always lands every delta.
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    if (server.try_ingest(make_delta(0, i))) {
      ++accepted;
    } else {
      server.ingest(make_delta(0, i));  // blocking path picks it up
      ++accepted;
    }
  }
  server.stop();
  EXPECT_EQ(accepted, 1000U);
  EXPECT_EQ(server.aggregate().deltas, 1000U);
}

TEST(FleetServer, FlushIsExactAndStopIsIdempotent) {
  FleetServer server(ServerConfig{});
  for (std::uint64_t seq = 1; seq <= 100; ++seq) {
    server.ingest(make_delta(7, seq));
  }
  server.flush();
  EXPECT_EQ(server.stats().merged, 100U);
  server.stop();
  server.stop();  // must be a no-op
  EXPECT_EQ(server.aggregate().deltas, 100U);
}

TEST(FleetServer, StatsTrackLatencyAndRate) {
  ServerConfig config;
  config.latency_sample_every = 1;  // sample every request
  FleetServer server(config);
  for (std::uint64_t seq = 1; seq <= 5000; ++seq) {
    server.ingest(make_delta(static_cast<std::uint32_t>(seq % 50), seq / 50 + 1));
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_GT(stats.p50_ingest_us, 0.0);
  EXPECT_GE(stats.p99_ingest_us, stats.p50_ingest_us);
  EXPECT_GE(stats.max_ingest_us, stats.p99_ingest_us);
  EXPECT_GT(stats.ingests_per_second, 0.0);
}

// ---------------------------------------------------------------------------
// Durable aggregate snapshots
// ---------------------------------------------------------------------------

class ServerSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("etfleet_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ServerSnapshotTest, AggregateRoundTripsThroughDisk) {
  FleetServer server(ServerConfig{});
  for (std::uint32_t node = 0; node < 30; ++node) {
    server.ingest(make_delta(node, 1));
    server.ingest(make_delta(node, 2));
  }
  server.flush();
  const std::string path = dir_ + "/aggregate.etfa";
  server.write_aggregate_snapshot(path);
  server.stop();

  EXPECT_EQ(FleetServer::read_aggregate_snapshot(path), server.aggregate());
}

TEST_F(ServerSnapshotTest, CorruptSnapshotIsRejected) {
  FleetServer server(ServerConfig{});
  server.ingest(make_delta(0, 1));
  server.flush();
  const std::string path = dir_ + "/aggregate.etfa";
  server.write_aggregate_snapshot(path);
  server.stop();

  persist::flip_bit(path, persist::file_size(path) / 2);
  EXPECT_THROW((void)FleetServer::read_aggregate_snapshot(path),
               persist::AtomicFileError);
  EXPECT_THROW((void)FleetServer::read_aggregate_snapshot(dir_ + "/missing"),
               persist::AtomicFileError);
}

TEST_F(ServerSnapshotTest, MergersCommitPeriodically) {
  ServerConfig config;
  config.snapshot_path = dir_ + "/rolling.etfa";
  config.snapshot_every_deltas = 100;
  FleetServer server(config);
  for (std::uint64_t seq = 1; seq <= 1000; ++seq) {
    server.ingest(make_delta(static_cast<std::uint32_t>(seq % 20), seq / 20 + 1));
  }
  server.stop();
  EXPECT_GE(server.stats().snapshots_written, 1U);
  const FleetAggregate on_disk =
      FleetServer::read_aggregate_snapshot(config.snapshot_path);
  // The rolling snapshot is some consistent prefix of the merge stream.
  EXPECT_GE(on_disk.deltas, 1U);
  EXPECT_LE(on_disk.deltas, server.aggregate().deltas);
}

// Regression: stop() used to gate on a plain unsynchronised bool, so two
// racing stop() calls (an explicit stop vs the destructor, or two owners
// shutting down) could both observe false and double-join the merge
// threads (std::terminate). joined_ is now GUARDED_BY(stop_mu_).
TEST(FleetServer, ConcurrentStopIsIdempotent) {
  ServerConfig config;
  config.shards = 4;
  config.merge_threads = 2;
  FleetServer server(config);
  for (std::uint32_t node = 0; node < 50; ++node) {
    server.ingest(make_delta(node, 1));
  }
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&server] { server.stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  server.stop();  // and again after everyone: still a no-op
  EXPECT_EQ(server.aggregate().deltas, 50U);
}

}  // namespace
}  // namespace edgetrain::fleet
