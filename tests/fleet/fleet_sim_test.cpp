// Tests for the fleet simulation: the deterministic-replay contract
// (identical trace + final state from the same seed, state invariant
// across driver thread counts), node crash/resume bookkeeping, and the
// student convergence model the nodes report through.
#include "fleet/fleet_sim.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "fleet/node_model.hpp"

namespace edgetrain::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig config;
  config.num_nodes = 300;
  config.horizon_seconds = 4.0 * 3600.0;
  config.sync_interval_seconds = 300.0;
  config.seed = 7;
  config.mtbf_seconds = 2.0 * 3600.0;  // crashes actually happen in 4h
  return config;
}

/// Thread-safe counting sink (run_fleet may drive it from the pool).
class CountingSink : public DeltaSink {
 public:
  void accept(const StudentDelta& delta) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++deltas_;
    samples_ += delta.samples;
  }
  [[nodiscard]] std::uint64_t deltas() const { return deltas_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  mutable std::mutex mutex_;
  std::uint64_t deltas_ = 0;
  std::uint64_t samples_ = 0;
};

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(FleetSim, SameSeedReplaysTraceAndState) {
  const FleetConfig config = small_config();
  const FleetReport a = run_fleet(config, nullptr, 1);
  const FleetReport b = run_fleet(config, nullptr, 1);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.state_crc, b.state_crc);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.steps_done, b.steps_done);
  EXPECT_EQ(a.deltas_emitted, b.deltas_emitted);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(FleetSim, DifferentSeedsDiverge) {
  FleetConfig config = small_config();
  const FleetReport a = run_fleet(config, nullptr, 1);
  config.seed = 8;
  const FleetReport b = run_fleet(config, nullptr, 1);
  EXPECT_NE(a.state_crc, b.state_crc);
}

TEST(FleetSim, FinalStateIsInvariantAcrossDriverThreads) {
  const FleetConfig config = small_config();
  const FleetReport serial = run_fleet(config, nullptr, 1);
  for (const unsigned threads : {2U, 3U, 8U}) {
    const FleetReport parallel = run_fleet(config, nullptr, threads);
    EXPECT_EQ(parallel.state_crc, serial.state_crc) << threads << " threads";
    EXPECT_EQ(parallel.steps_done, serial.steps_done) << threads;
    EXPECT_EQ(parallel.deltas_emitted, serial.deltas_emitted) << threads;
    EXPECT_EQ(parallel.crashes, serial.crashes) << threads;
    EXPECT_EQ(parallel.events_dispatched, serial.events_dispatched) << threads;
  }
}

// ---------------------------------------------------------------------------
// Fleet dynamics
// ---------------------------------------------------------------------------

TEST(FleetSim, NodesTrainAndSync) {
  const FleetConfig config = small_config();
  CountingSink sink;
  const FleetReport report = run_fleet(config, &sink, 2);
  EXPECT_GT(report.steps_done, 0U);
  EXPECT_GT(report.deltas_emitted, 0U);
  EXPECT_EQ(sink.deltas(), report.deltas_emitted);
  // 4h at 300s syncs: at most 48 uploads per node, and at least a few.
  EXPECT_LE(report.deltas_emitted, 48U * config.num_nodes);
  EXPECT_GT(report.deltas_emitted, 10U * config.num_nodes);
  EXPECT_GT(report.mean_accuracy, config.convergence.baseline);
  EXPECT_LE(report.mean_accuracy, config.convergence.ceiling);
}

TEST(FleetSim, CrashesRollBackAndWasteSteps) {
  FleetConfig config = small_config();
  config.mtbf_seconds = 1800.0;  // brutal: ~8 crashes per node over 4h
  const FleetReport report = run_fleet(config, nullptr, 2);
  EXPECT_GT(report.crashes, 0U);
  EXPECT_GT(report.steps_wasted, 0U) << "rollbacks must recompute steps";
  EXPECT_EQ(report.recoveries + report.down_nodes, report.crashes)
      << "every crash either recovered or is still dark at the horizon";
}

TEST(FleetSim, SdWearFreezesWornNodes) {
  FleetConfig config = small_config();
  config.sd_endurance_writes = 10;  // cards die almost immediately
  const FleetReport report = run_fleet(config, nullptr, 2);
  EXPECT_EQ(report.worn_out_nodes, config.num_nodes);
  // Worn cards stop counting writes: the endurance can only be overshot by
  // the final batch (a handful), never by the ~90 writes a healthy card
  // would take over this horizon.
  EXPECT_LE(report.sd_writes, 15U * config.num_nodes);
}

TEST(FleetSim, HigherMtbfMeansMoreProgress) {
  FleetConfig reliable = small_config();
  reliable.mtbf_seconds = 1e9;  // effectively never fails
  FleetConfig flaky = small_config();
  flaky.mtbf_seconds = 900.0;
  const FleetReport stable_report = run_fleet(reliable, nullptr, 2);
  const FleetReport flaky_report = run_fleet(flaky, nullptr, 2);
  EXPECT_EQ(stable_report.crashes, 0U);
  EXPECT_GT(stable_report.steps_done, flaky_report.steps_done);
}

TEST(FleetSim, DutyProfilesSpanLoadLevels) {
  const FleetConfig config = small_config();
  const auto profiles = build_duty_profiles(config, 0.5);
  ASSERT_EQ(profiles.size(), config.duty_archetypes);
  // Archetype 0 is the lightest payload, the last the heaviest.
  EXPECT_GT(profiles.front()->idle_fraction(),
            profiles.back()->idle_fraction());
  for (const auto& profile : profiles) {
    EXPECT_GT(profile->idle_fraction(), 0.0);
    EXPECT_LT(profile->idle_fraction(), 1.0);
  }
}

TEST(FleetSim, DefaultDeviceModelIsValid) {
  const calib::DeviceModel model = default_device_model();
  EXPECT_TRUE(model.valid());
  EXPECT_GT(model.conv_us(40.0e9, 4), 0.0);
}

// ---------------------------------------------------------------------------
// Node model corners (driven directly, no engine)
// ---------------------------------------------------------------------------

TEST(FleetNode, SamplesNeverDoubleCountRecomputedSteps) {
  edge::IdleScheduler scheduler(1.0);  // zero foreground: always idle
  const edge::PeriodicIdleProfile profile(scheduler, 600.0);
  NodeParams params;
  params.profile = &profile;
  params.step_seconds = 1.0;
  params.snapshot_every_steps = 10;
  params.torn_snapshot_probability = 0.0;
  FleetNode node(0, params, 123);

  node.advance(0.0, 100.0);
  EXPECT_EQ(node.steps_done(), 100U);
  StudentDelta first = node.sync(100.0);
  EXPECT_EQ(first.seq, 1U);
  EXPECT_EQ(first.samples, 100U);

  // Crash at t=150: rolls back to the durable step (140, the sync suspend
  // plus periodic cadence up to 150).
  node.advance(100.0, 150.0);
  node.crash(150.0);
  EXPECT_TRUE(node.down());
  EXPECT_EQ(node.steps_done(), 150U) << "150 was just snapshotted at 150";
  node.recover(152.0);

  // Recomputed progress below the 100-step high-water mark uploads zero
  // NEW samples; progress past it uploads only the excess.
  node.advance(152.0, 160.0);
  StudentDelta second = node.sync(160.0);
  EXPECT_EQ(second.seq, 2U);
  EXPECT_EQ(second.samples, node.steps_done() - 100U);
}

TEST(FleetNode, TornSnapshotFallsBackAGeneration) {
  edge::IdleScheduler scheduler(1.0);
  const edge::PeriodicIdleProfile profile(scheduler, 600.0);
  NodeParams params;
  params.profile = &profile;
  params.step_seconds = 1.0;
  params.snapshot_every_steps = 1000000;  // only sync suspends write
  params.torn_snapshot_probability = 1.0;  // every crash tears the newest
  FleetNode node(0, params, 5);

  node.advance(0.0, 10.0);
  (void)node.sync(10.0);  // durable generations: {10, 0}
  node.advance(10.0, 20.0);
  (void)node.sync(20.0);  // durable generations: {20, 10}
  node.advance(20.0, 25.0);
  node.crash(25.0);
  // Newest (20) is torn: fall back to 10, wasting 15 steps.
  EXPECT_EQ(node.steps_done(), 10U);
  EXPECT_EQ(node.steps_wasted(), 15U);
  EXPECT_EQ(node.torn_snapshots(), 1U);
}

// ---------------------------------------------------------------------------
// Student convergence model
// ---------------------------------------------------------------------------

TEST(StudentConvergenceModel, SaturatesMonotonically) {
  const insitu::StudentConvergenceModel model;
  EXPECT_DOUBLE_EQ(model.accuracy(0.0), model.baseline);
  EXPECT_GT(model.accuracy(100.0), model.accuracy(10.0));
  EXPECT_LT(model.accuracy(1e9), model.ceiling + 1e-12);
  EXPECT_NEAR(model.accuracy(1e9), model.ceiling, 1e-9);
}

TEST(StudentConvergenceModel, StepsToReachInvertsAccuracy) {
  const insitu::StudentConvergenceModel model;
  const double target = 0.8;
  const double steps = model.steps_to_reach(target);
  EXPECT_NEAR(model.accuracy(steps), target, 1e-9);
  EXPECT_EQ(model.steps_to_reach(model.baseline), 0.0);
  EXPECT_TRUE(std::isinf(model.steps_to_reach(model.ceiling + 0.1)));
}

TEST(StudentConvergenceModel, ConvergedTracksTheGapFraction) {
  const insitu::StudentConvergenceModel model;
  EXPECT_FALSE(model.converged(0.0));
  const double nearly =
      model.steps_to_reach(model.baseline +
                           0.96 * (model.ceiling - model.baseline));
  EXPECT_TRUE(model.converged(nearly));
}

}  // namespace
}  // namespace edgetrain::fleet
