#include "insitu/node_sim.hpp"

#include <gtest/gtest.h>

namespace edgetrain::insitu {
namespace {

NodeSimConfig fast_config() {
  NodeSimConfig config;
  config.scene.frame_width = 96;
  config.scene.frame_height = 36;
  config.scene.object_size = 14;
  config.scene.num_classes = 3;
  config.scene.max_skew = 0.8F;
  config.scene.seed = 33;
  config.harvest.patch = 16;
  config.harvest.teacher_confidence = 0.7F;
  config.hours = 3;
  config.frames_per_hour = 150;
  config.max_real_steps_per_hour = 15;
  config.teacher_examples_per_class = 60;
  config.teacher_train.epochs = 6;
  config.eval_bins = 3;
  config.eval_per_class_per_bin = 10;
  return config;
}

TEST(NodeSim, ReportsEveryHourWithGrowingDataset) {
  const NodeSimResult result = run_node_simulation(fast_config());
  ASSERT_EQ(result.hours.size(), 3U);
  std::int64_t prev_images = -1;
  for (const HourReport& hour : result.hours) {
    EXPECT_EQ(hour.frames, 150);
    EXPECT_GE(hour.dataset_images, prev_images);
    prev_images = hour.dataset_images;
    EXPECT_GT(hour.step_budget, 0);
    EXPECT_LE(hour.steps_run, 15);
  }
  EXPECT_GT(result.hours.back().dataset_images, 0);
}

TEST(NodeSim, IdleBudgetReflectsDutyCycle) {
  NodeSimConfig config = fast_config();
  const NodeSimResult relaxed = run_node_simulation(config);
  // Saturate the CPU with inference: the budget must collapse.
  config.inference_period_seconds = 1.0;
  config.inference_duration_seconds = 1.0;
  const NodeSimResult busy = run_node_simulation(config);
  EXPECT_LT(busy.hours[0].step_budget, relaxed.hours[0].step_budget);
  EXPECT_EQ(busy.hours[0].step_budget, 0);
  EXPECT_EQ(busy.hours[0].steps_run, 0);
}

TEST(NodeSim, StudentImprovesOverTheDay) {
  NodeSimConfig config = fast_config();
  config.hours = 4;
  config.max_real_steps_per_hour = 60;
  const NodeSimResult result = run_node_simulation(config);
  // Training accumulates: the last hour's student beats the first hour's.
  EXPECT_GT(result.hours.back().student_accuracy,
            result.hours.front().student_accuracy - 1e-9);
  // With enough hours it approaches (or beats) the teacher off-angle.
  EXPECT_GT(result.final_student_accuracy, 0.5);
}

TEST(NodeSim, StorageStaysWithinBudget) {
  NodeSimConfig config = fast_config();
  config.harvest.storage_capacity_bytes = 50 * config.harvest.bytes_per_image;
  const NodeSimResult result = run_node_simulation(config);
  for (const HourReport& hour : result.hours) {
    EXPECT_LE(hour.storage_used_bytes, config.harvest.storage_capacity_bytes);
  }
  EXPECT_GE(result.harvest.images_dropped_storage, 0);
}

TEST(NodeSim, DeterministicForSeed) {
  const NodeSimResult a = run_node_simulation(fast_config());
  const NodeSimResult b = run_node_simulation(fast_config());
  ASSERT_EQ(a.hours.size(), b.hours.size());
  for (std::size_t i = 0; i < a.hours.size(); ++i) {
    EXPECT_EQ(a.hours[i].dataset_images, b.hours[i].dataset_images);
    EXPECT_DOUBLE_EQ(a.hours[i].student_accuracy, b.hours[i].student_accuracy);
  }
}

}  // namespace
}  // namespace edgetrain::insitu
