// Guardrail tests for the quantized teacher inference path: the fused fp32
// pipeline must reproduce the layer-chain logits, the bf16/int8 paths must
// keep label flips and logit drift bounded, batched predict must agree with
// per-patch predict bit-for-bit, and a harvester labeling at int8 must
// match the fp32 harvester's purity on the same stream.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "insitu/harvester.hpp"
#include "insitu/quant_classifier.hpp"
#include "insitu/scene.hpp"
#include "insitu/teacher.hpp"

namespace edgetrain::insitu {
namespace {

constexpr int kPatch = 16;
constexpr int kClasses = 3;

SceneConfig quant_scene() {
  SceneConfig config;
  config.frame_width = 96;
  config.frame_height = 36;
  config.object_size = 14;
  config.num_classes = kClasses;
  config.speed = 6.0F;
  config.noise = 0.02F;
  config.max_skew = 0.8F;
  config.seed = 33;
  return config;
}

/// One trained teacher + calibration/eval batches, shared by every test in
/// the suite (training dominates the suite's runtime).
struct Fixture {
  SceneSimulator sim{quant_scene()};
  PatchClassifier teacher{kPatch, kClasses, 8, 5};
  Tensor calibration;
  Tensor eval;

  Fixture() {
    PatchDataset data(kPatch);
    for (std::int32_t label = 0; label < kClasses; ++label) {
      for (int i = 0; i < 60; ++i) {
        data.add(sim.canonical_patch(label, kPatch), label);
      }
    }
    TrainOptions options;
    options.epochs = 8;
    (void)teacher.train(data, options);
    calibration = data.batch(0, 48);
    // Eval patches the calibration never saw: skewed views.
    PatchDataset eval_data(kPatch);
    const auto width = static_cast<float>(quant_scene().frame_width);
    for (std::int32_t label = 0; label < kClasses; ++label) {
      for (int i = 0; i < 40; ++i) {
        const float x = (0.35F + 0.015F * static_cast<float>(i)) * width;
        eval_data.add(sim.skewed_patch(label, x, kPatch), label);
      }
    }
    eval = eval_data.batch(0, eval_data.size());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

struct Drift {
  double flip_rate = 0.0;
  double max_abs = 0.0;
};

Drift drift_vs_fp32(const Tensor& fp32_logits, const Tensor& other) {
  const std::int64_t n = fp32_logits.shape()[0];
  const std::int64_t classes = fp32_logits.shape()[1];
  Drift d;
  std::int64_t flips = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t arg_a = 0;
    std::int64_t arg_b = 0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const auto idx = i * classes + c;
      if (fp32_logits.data()[idx] > fp32_logits.data()[i * classes + arg_a]) {
        arg_a = c;
      }
      if (other.data()[idx] > other.data()[i * classes + arg_b]) arg_b = c;
      d.max_abs = std::max(
          d.max_abs, std::abs(static_cast<double>(fp32_logits.data()[idx]) -
                              static_cast<double>(other.data()[idx])));
    }
    if (arg_a != arg_b) ++flips;
  }
  d.flip_rate = static_cast<double>(flips) / static_cast<double>(n);
  return d;
}

TEST(QuantizedPatchClassifier, FusedFp32MatchesChainLogits) {
  Fixture& f = fixture();
  QuantizedPatchClassifier fused(f.teacher, f.calibration,
                                 TeacherPrecision::Fp32);
  Tensor chain_logits = f.teacher.logits(f.eval);
  Tensor fused_logits = fused.logits(f.eval);
  ASSERT_EQ(chain_logits.shape(), fused_logits.shape());
  // BN folding reassociates the arithmetic, so equality is to rounding
  // error, not bitwise.
  const Drift d = drift_vs_fp32(chain_logits, fused_logits);
  EXPECT_EQ(d.flip_rate, 0.0);
  EXPECT_LT(d.max_abs, 1e-3);
}

TEST(QuantizedPatchClassifier, Bf16DriftSmall) {
  Fixture& f = fixture();
  QuantizedPatchClassifier bf16(f.teacher, f.calibration,
                                TeacherPrecision::Bf16);
  const Drift d = drift_vs_fp32(f.teacher.logits(f.eval),
                                bf16.logits(f.eval));
  EXPECT_LE(d.flip_rate, 0.01);
  EXPECT_LT(d.max_abs, 0.1);
}

TEST(QuantizedPatchClassifier, Int8FlipRateBounded) {
  Fixture& f = fixture();
  QuantizedPatchClassifier int8(f.teacher, f.calibration,
                                TeacherPrecision::Int8);
  const Drift d = drift_vs_fp32(f.teacher.logits(f.eval),
                                int8.logits(f.eval));
  EXPECT_LE(d.flip_rate, 0.01);  // the distillation guardrail from E20
  // Backstop only -- u8 activation rounding scales with the logit range,
  // so the enforced product gate is the flip rate (and bench_quant's
  // measured drift), not this absolute bound.
  EXPECT_LT(d.max_abs, 1.5);
}

TEST(QuantizedPatchClassifier, PredictBatchMatchesPredictBitwise) {
  Fixture& f = fixture();
  QuantizedPatchClassifier int8(f.teacher, f.calibration,
                                TeacherPrecision::Int8);
  const std::int64_t n = std::min<std::int64_t>(f.eval.shape()[0], 24);
  const auto pixels_per =
      static_cast<std::size_t>(f.eval.shape()[2] * f.eval.shape()[3]);
  Tensor head = Tensor::zeros(Shape{n, 1, f.eval.shape()[2],
                                    f.eval.shape()[3]});
  std::memcpy(head.data(), f.eval.data(),
              static_cast<std::size_t>(n) * pixels_per * sizeof(float));
  const auto batched = int8.predict_batch(head);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::vector<float> one(pixels_per);
    std::memcpy(one.data(),
                f.eval.data() + static_cast<std::size_t>(i) * pixels_per,
                pixels_per * sizeof(float));
    const auto single = int8.predict(one);
    EXPECT_EQ(batched[static_cast<std::size_t>(i)].first, single.first)
        << "i=" << i;
    EXPECT_EQ(batched[static_cast<std::size_t>(i)].second, single.second)
        << "i=" << i;
  }
}

TEST(PatchClassifier, PredictBatchMatchesPredictBitwise) {
  Fixture& f = fixture();
  const std::int64_t n = std::min<std::int64_t>(f.eval.shape()[0], 16);
  const auto pixels_per =
      static_cast<std::size_t>(f.eval.shape()[2] * f.eval.shape()[3]);
  Tensor head = Tensor::zeros(Shape{n, 1, f.eval.shape()[2],
                                    f.eval.shape()[3]});
  std::memcpy(head.data(), f.eval.data(),
              static_cast<std::size_t>(n) * pixels_per * sizeof(float));
  const auto batched = f.teacher.predict_batch(head);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::vector<float> one(pixels_per);
    std::memcpy(one.data(),
                f.eval.data() + static_cast<std::size_t>(i) * pixels_per,
                pixels_per * sizeof(float));
    const auto single = f.teacher.predict(one);
    EXPECT_EQ(batched[static_cast<std::size_t>(i)].first, single.first)
        << "i=" << i;
    EXPECT_EQ(batched[static_cast<std::size_t>(i)].second, single.second)
        << "i=" << i;
  }
}

TEST(QuantizedPatchClassifier, RejectsWrongCalibrationShape) {
  Fixture& f = fixture();
  Tensor bad = Tensor::zeros(Shape{4, 1, kPatch + 1, kPatch + 1});
  EXPECT_THROW(QuantizedPatchClassifier(f.teacher, bad,
                                        TeacherPrecision::Int8),
               std::invalid_argument);
}

TEST(Harvester, Int8TeacherMatchesFp32Purity) {
  Fixture& f = fixture();
  HarvestConfig config;
  config.patch = kPatch;
  config.detect_threshold = 0.2F;
  config.min_blob_area = 16;
  config.teacher_confidence = 0.7F;
  config.min_track_length = 3;

  HarvestConfig int8_config = config;
  int8_config.teacher_precision = TeacherPrecision::Int8;
  int8_config.quant_calibration_patches = 24;

  // Two identically-seeded scene streams so both harvesters see the exact
  // same frames.
  SceneSimulator sim_a(quant_scene());
  SceneSimulator sim_b(quant_scene());
  Harvester fp32(f.teacher, config);
  Harvester int8(f.teacher, int8_config);
  for (int frame = 0; frame < 300; ++frame) {
    fp32.consume(sim_a.next_frame());
    int8.consume(sim_b.next_frame());
  }
  fp32.finish();
  int8.finish();

  const HarvestStats a = fp32.stats();
  const HarvestStats b = int8.stats();
  ASSERT_GT(a.images_harvested, 0);
  ASSERT_GT(b.images_harvested, 0);
  EXPECT_GT(b.quantized_queries, 0);
  EXPECT_EQ(a.quantized_queries, 0);
  EXPECT_NEAR(a.label_purity, b.label_purity, 0.05);
}

}  // namespace
}  // namespace edgetrain::insitu
