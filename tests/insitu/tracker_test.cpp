#include "insitu/tracker.hpp"

#include <gtest/gtest.h>

namespace edgetrain::insitu {
namespace {

BBox box_at(int x, int y = 10) { return {x, y, 10, 10}; }

TEST(IoUTracker, SingleObjectKeepsItsTrack) {
  IoUTracker tracker(0.3F, 2);
  std::int64_t id = -1;
  for (int f = 0; f < 10; ++f) {
    const auto assigned = tracker.update(f, {box_at(f * 3)});
    ASSERT_EQ(assigned.size(), 1U);
    if (id < 0) id = assigned[0];
    EXPECT_EQ(assigned[0], id) << "frame " << f;
  }
  tracker.flush();
  const auto finished = tracker.take_finished();
  ASSERT_EQ(finished.size(), 1U);
  EXPECT_EQ(finished[0].length(), 10U);
}

TEST(IoUTracker, DistantDetectionSpawnsNewTrack) {
  IoUTracker tracker(0.3F, 2);
  const auto first = tracker.update(0, {box_at(0)});
  const auto second = tracker.update(1, {box_at(60)});
  EXPECT_NE(first[0], second[0]);
}

TEST(IoUTracker, TwoParallelObjectsStaySeparate) {
  IoUTracker tracker(0.3F, 2);
  std::int64_t top_id = -1;
  std::int64_t bottom_id = -1;
  for (int f = 0; f < 8; ++f) {
    const auto assigned =
        tracker.update(f, {box_at(f * 2, 0), box_at(f * 2, 30)});
    ASSERT_EQ(assigned.size(), 2U);
    if (f == 0) {
      top_id = assigned[0];
      bottom_id = assigned[1];
      EXPECT_NE(top_id, bottom_id);
    } else {
      EXPECT_EQ(assigned[0], top_id);
      EXPECT_EQ(assigned[1], bottom_id);
    }
  }
}

TEST(IoUTracker, GapBeyondMaxFinishesTrack) {
  IoUTracker tracker(0.3F, 1);
  (void)tracker.update(0, {box_at(0)});
  (void)tracker.update(1, {});  // unseen, gap 1: still active
  EXPECT_EQ(tracker.active().size(), 1U);
  (void)tracker.update(2, {});  // gap 2 > max_gap 1: finished
  EXPECT_TRUE(tracker.active().empty());
  const auto finished = tracker.take_finished();
  ASSERT_EQ(finished.size(), 1U);
  EXPECT_TRUE(finished[0].finished);
}

TEST(IoUTracker, ReappearingObjectGetsNewTrackAfterGap) {
  IoUTracker tracker(0.3F, 0);  // no tolerance
  const auto a = tracker.update(0, {box_at(5)});
  (void)tracker.update(1, {});
  const auto b = tracker.update(2, {box_at(5)});
  EXPECT_NE(a[0], b[0]);
}

TEST(IoUTracker, GreedyMatchingPicksBestOverlap) {
  IoUTracker tracker(0.1F, 2);
  (void)tracker.update(0, {box_at(0)});
  // Two candidates: one shifted by 2 (high IoU), one by 8 (low IoU).
  const auto assigned = tracker.update(1, {box_at(8), box_at(2)});
  // The closer box continues the track; the other starts a new one.
  EXPECT_NE(assigned[0], assigned[1]);
  const Track& continued = tracker.active()[0];
  EXPECT_EQ(continued.sightings.back().box.x, 2);
}

TEST(IoUTracker, TakeFinishedDrainsBuffer) {
  IoUTracker tracker(0.3F, 0);
  (void)tracker.update(0, {box_at(0)});
  tracker.flush();
  EXPECT_EQ(tracker.take_finished().size(), 1U);
  EXPECT_TRUE(tracker.take_finished().empty());
}

TEST(IoUTracker, SightingsRecordFrameIndices) {
  IoUTracker tracker(0.3F, 2);
  (void)tracker.update(7, {box_at(0)});
  (void)tracker.update(8, {box_at(2)});
  tracker.flush();
  const auto finished = tracker.take_finished();
  ASSERT_EQ(finished.size(), 1U);
  EXPECT_EQ(finished[0].sightings[0].frame_index, 7);
  EXPECT_EQ(finished[0].sightings[1].frame_index, 8);
}

}  // namespace
}  // namespace edgetrain::insitu
