// Integration tests of the Section III pipeline: classifier training,
// harvesting, and the end-to-end viewpoint experiment (scaled down).
#include <gtest/gtest.h>

#include "insitu/harvester.hpp"
#include "insitu/scene.hpp"
#include "insitu/student.hpp"
#include "insitu/teacher.hpp"

namespace edgetrain::insitu {
namespace {

SceneConfig small_scene() {
  SceneConfig config;
  config.frame_width = 96;
  config.frame_height = 36;
  config.object_size = 14;
  config.num_classes = 3;
  config.speed = 6.0F;
  config.noise = 0.02F;
  config.max_skew = 0.8F;
  config.seed = 21;
  return config;
}

HarvestConfig small_harvest() {
  HarvestConfig config;
  config.patch = 16;
  config.detect_threshold = 0.2F;
  config.min_blob_area = 16;
  config.teacher_confidence = 0.7F;
  config.min_track_length = 3;
  return config;
}

TEST(PatchClassifier, LearnsCanonicalGlyphs) {
  SceneSimulator sim(small_scene());
  PatchDataset data(16);
  for (std::int32_t label = 0; label < 3; ++label) {
    for (int i = 0; i < 60; ++i) {
      data.add(sim.canonical_patch(label, 16), label);
    }
  }
  PatchClassifier classifier(16, 3, 8, 5);
  TrainOptions options;
  options.epochs = 10;
  const TrainStats stats = classifier.train(data, options);
  EXPECT_LT(stats.final_loss(), 0.5F);
  EXPECT_GT(classifier.evaluate(data), 0.9);
}

TEST(PatchClassifier, CheckpointedTrainingUsesLessMemory) {
  SceneSimulator sim(small_scene());
  PatchDataset data(16);
  for (std::int32_t label = 0; label < 3; ++label) {
    for (int i = 0; i < 30; ++i) {
      data.add(sim.canonical_patch(label, 16), label);
    }
  }
  PatchClassifier full(16, 3, 6, 5);
  PatchClassifier ckpt(16, 3, 6, 5);
  TrainOptions full_options;
  full_options.epochs = 1;
  TrainOptions ckpt_options = full_options;
  ckpt_options.checkpoint_free_slots = 1;
  const TrainStats full_stats = full.train(data, full_options);
  const TrainStats ckpt_stats = ckpt.train(data, ckpt_options);
  EXPECT_LT(ckpt_stats.peak_step_bytes, full_stats.peak_step_bytes);
  EXPECT_GT(ckpt_stats.total_advances, full_stats.total_advances);
}

TEST(PatchClassifier, PredictReturnsConfidenceInRange) {
  SceneSimulator sim(small_scene());
  PatchClassifier classifier(16, 3, 4, 5);
  const auto [label, confidence] = classifier.predict(
      sim.canonical_patch(0, 16));
  EXPECT_GE(label, 0);
  EXPECT_LT(label, 3);
  EXPECT_GT(confidence, 0.0F);
  EXPECT_LE(confidence, 1.0F);
}

TEST(PatchDataset, ShuffleKeepsPairsAligned) {
  PatchDataset data(2);
  data.add({0, 0, 0, 0}, 0);
  data.add({1, 1, 1, 1}, 1);
  data.add({2, 2, 2, 2}, 2);
  std::mt19937 rng(3);
  data.shuffle(rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Tensor x = data.batch(i, 1);
    EXPECT_FLOAT_EQ(x.at(0), static_cast<float>(data.labels()[i]));
  }
}

TEST(Harvester, HarvestsLabelledTracksFromStream) {
  SceneSimulator sim(small_scene());
  // A quickly-trained teacher on canonical patches.
  PatchDataset teacher_data(16);
  for (std::int32_t label = 0; label < 3; ++label) {
    for (int i = 0; i < 50; ++i) {
      teacher_data.add(sim.canonical_patch(label, 16), label);
    }
  }
  PatchClassifier teacher(16, 3, 6, 5);
  TrainOptions options;
  options.epochs = 6;
  (void)teacher.train(teacher_data, options);

  Harvester harvester(teacher, small_harvest());
  for (int f = 0; f < 400; ++f) harvester.consume(sim.next_frame());
  harvester.finish();

  const HarvestStats stats = harvester.stats();
  EXPECT_EQ(stats.frames, 400);
  EXPECT_GT(stats.detections, 0);
  EXPECT_GT(stats.tracks_finished, 0);
  EXPECT_GT(stats.tracks_labelled, 0);
  EXPECT_GT(stats.images_harvested, 0);
  // Back-labelling should be mostly correct in this easy scene.
  EXPECT_GT(stats.label_purity, 0.6);
  // "tens of images" per confident identification.
  EXPECT_GT(static_cast<double>(stats.images_harvested),
            2.0 * static_cast<double>(stats.tracks_labelled));
  EXPECT_EQ(harvester.dataset().size(),
            static_cast<std::size_t>(stats.images_harvested));
}

TEST(Harvester, StorageBudgetDropsExcessImages) {
  SceneSimulator sim(small_scene());
  PatchClassifier teacher(16, 3, 4, 5);  // untrained: confidence gate off
  HarvestConfig config = small_harvest();
  config.teacher_confidence = 0.0F;  // accept everything
  config.storage_capacity_bytes = 20 * config.bytes_per_image;
  Harvester harvester(teacher, config);
  for (int f = 0; f < 300; ++f) harvester.consume(sim.next_frame());
  harvester.finish();
  const HarvestStats stats = harvester.stats();
  EXPECT_LE(stats.images_harvested, 20);
  EXPECT_GT(stats.images_dropped_storage, 0);
}

TEST(Harvester, LeftHalfOnlyTracksAreRejected) {
  // A track that never reaches the canonical (right) region produces no
  // teacher queries and must be rejected, not mislabelled: this is the
  // query_min_x_fraction gate that keeps label purity high.
  SceneSimulator sim(small_scene());
  PatchClassifier teacher(16, 3, 4, 5);  // untrained; confidence irrelevant
  HarvestConfig config = small_harvest();
  config.teacher_confidence = 0.0F;  // accept anything that IS queried
  config.query_min_x_fraction = 2.0F;  // no sighting can ever qualify
  Harvester harvester(teacher, config);
  for (int f = 0; f < 200; ++f) harvester.consume(sim.next_frame());
  harvester.finish();
  const HarvestStats stats = harvester.stats();
  EXPECT_GT(stats.tracks_finished, 0);
  EXPECT_EQ(stats.tracks_labelled, 0);
  EXPECT_EQ(stats.teacher_queries, 0);
  EXPECT_EQ(stats.images_harvested, 0);
}

TEST(Harvester, QueryRegionGateImprovesPurityOverNoGate) {
  SceneSimulator sim_a(small_scene());
  SceneSimulator sim_b(small_scene());  // identical stream (same seed)
  PatchDataset teacher_data(16);
  for (std::int32_t label = 0; label < 3; ++label) {
    for (int i = 0; i < 50; ++i) {
      teacher_data.add(sim_a.canonical_patch(label, 16), label);
    }
  }
  PatchClassifier teacher(16, 3, 6, 5);
  TrainOptions options;
  options.epochs = 6;
  (void)teacher.train(teacher_data, options);

  HarvestConfig gated = small_harvest();
  HarvestConfig ungated = small_harvest();
  ungated.query_min_x_fraction = 0.0F;  // query everywhere, even skewed
  Harvester harvester_gated(teacher, gated);
  Harvester harvester_ungated(teacher, ungated);
  // Re-create the same stream for each (fresh simulators, same config/seed).
  SceneSimulator stream_a(small_scene());
  SceneSimulator stream_b(small_scene());
  for (int f = 0; f < 400; ++f) {
    harvester_gated.consume(stream_a.next_frame());
    harvester_ungated.consume(stream_b.next_frame());
  }
  harvester_gated.finish();
  harvester_ungated.finish();
  EXPECT_GE(harvester_gated.stats().label_purity,
            harvester_ungated.stats().label_purity);
}

TEST(Harvester, LossyStorageChargesTrueBytesAndKeepsQuality) {
  SceneSimulator sim(small_scene());
  PatchDataset teacher_data(16);
  for (std::int32_t label = 0; label < 3; ++label) {
    for (int i = 0; i < 40; ++i) {
      teacher_data.add(sim.canonical_patch(label, 16), label);
    }
  }
  PatchClassifier teacher(16, 3, 6, 5);
  TrainOptions options;
  options.epochs = 5;
  (void)teacher.train(teacher_data, options);

  HarvestConfig config = small_harvest();
  config.lossy_storage = true;
  config.codec_quality = 50;
  Harvester harvester(teacher, config);
  for (int f = 0; f < 300; ++f) harvester.consume(sim.next_frame());
  harvester.finish();
  const HarvestStats stats = harvester.stats();
  ASSERT_GT(stats.images_harvested, 0);
  // Encoded 16x16 patches are far below the paper's 10 kB budget...
  EXPECT_LT(stats.mean_image_bytes, 1024.0);
  EXPECT_GT(stats.mean_image_bytes, 8.0);
  // ...and remain classifiable.
  EXPECT_GT(stats.mean_psnr_db, 20.0);
  EXPECT_EQ(harvester.store().used_bytes(),
            static_cast<std::uint64_t>(stats.mean_image_bytes *
                                           static_cast<double>(
                                               stats.images_harvested) +
                                       0.5));
}

TEST(PatchClassifier, DistillationFromTeacherWorks) {
  SceneSimulator sim(small_scene());
  PatchDataset data(16);
  for (std::int32_t label = 0; label < 3; ++label) {
    for (int i = 0; i < 50; ++i) {
      data.add(sim.canonical_patch(label, 16), label);
    }
  }
  PatchClassifier teacher(16, 3, 8, 5);
  TrainOptions teacher_options;
  teacher_options.epochs = 8;
  (void)teacher.train(data, teacher_options);

  PatchClassifier student(16, 3, 4, 9);  // smaller net (Moonshine-style)
  TrainOptions student_options;
  student_options.epochs = 8;
  student_options.distill_alpha = 0.3F;
  student_options.distill_temperature = 2.0F;
  const TrainStats stats = student.train(data, student_options, &teacher);
  EXPECT_GT(stats.epoch_losses.size(), 0U);
  EXPECT_GT(student.evaluate(data), 0.8);
}

// The headline Section III result, scaled down for CI: after in-situ
// training the student beats the teacher on skewed viewpoints.
TEST(ViewpointExperiment, StudentBeatsTeacherOffAngle) {
  ViewpointExperimentConfig config;
  config.scene = small_scene();
  config.harvest = small_harvest();
  config.teacher_examples_per_class = 80;
  config.stream_frames = 500;
  config.eval_bins = 4;
  config.eval_per_class_per_bin = 15;
  config.classifier_channels = 6;
  config.teacher_train.epochs = 6;
  config.student_train.epochs = 6;
  config.student_train.checkpoint_free_slots = 2;

  const ViewpointExperimentResult result = run_viewpoint_experiment(config);

  ASSERT_GT(result.dataset_size, 0U);
  ASSERT_EQ(result.bins.size(), 4U);
  // Teacher is strong at the canonical (right) edge.
  EXPECT_GT(result.bins.back().teacher_accuracy, 0.6);
  // Student wins overall (it has seen the node's own skew distribution).
  EXPECT_GT(result.student_overall, result.teacher_overall);
  // And specifically on the most-skewed bin.
  EXPECT_GT(result.bins.front().student_accuracy,
            result.bins.front().teacher_accuracy);
}

}  // namespace
}  // namespace edgetrain::insitu
