// Fuzz-style robustness tests for decode_image: whatever bytes arrive --
// truncated at any offset, bit-flipped anywhere, or plain random -- the
// decoder must either return an image or throw std::exception. It must
// never crash, over-read, or allocate unbounded memory. The harvester
// feeds the codec straight off the SD card, so every one of these inputs
// is reachable in the field via bit rot or a torn write.
#include "insitu/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace edgetrain::insitu {
namespace {

GrayImage test_image(int h, int w, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0F, 1.0F);
  GrayImage image(h, w);
  for (auto& p : image.pixels) p = dist(rng);
  return image;
}

/// Decode must not crash; any thrown std::exception is acceptable.
void expect_no_crash(const std::vector<std::uint8_t>& bytes) {
  try {
    const GrayImage decoded = decode_image(bytes);
    // If it decodes, the result must be self-consistent and bounded.
    EXPECT_GT(decoded.height, 0);
    EXPECT_GT(decoded.width, 0);
    EXPECT_EQ(decoded.pixels.size(),
              static_cast<std::size_t>(decoded.height) *
                  static_cast<std::size_t>(decoded.width));
  } catch (const std::exception&) {
    // Rejecting malformed input is the expected path.
  }
}

TEST(CodecFuzz, TruncationAtEveryOffsetThrowsCleanly) {
  const std::vector<std::uint8_t> valid =
      encode_image(test_image(24, 24, 41), 50);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const std::vector<std::uint8_t> cut(
        valid.begin(), valid.begin() + static_cast<long>(len));
    EXPECT_THROW((void)decode_image(cut), std::exception)
        << "truncation to " << len << " bytes decoded anyway";
  }
}

TEST(CodecFuzz, BitFlipAtEveryByteNeverCrashes) {
  const std::vector<std::uint8_t> valid =
      encode_image(test_image(16, 24, 43), 50);
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      std::vector<std::uint8_t> corrupt = valid;
      corrupt[byte] ^= mask;
      expect_no_crash(corrupt);
    }
  }
}

TEST(CodecFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(47);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<std::size_t> len_dist(0, 512);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(len_dist(rng));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte_dist(rng));
    expect_no_crash(bytes);
  }
}

TEST(CodecFuzz, RandomBytesWithValidHeaderNeverCrash) {
  // Force the payload path: a plausible header followed by garbage, so the
  // varint/block machinery (not just the magic check) gets exercised.
  std::mt19937 rng(53);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> dim_dist(1, 64);
  for (int trial = 0; trial < 2000; ++trial) {
    const int h = dim_dist(rng);
    const int w = dim_dist(rng);
    std::vector<std::uint8_t> bytes = {
        'E', 'P',
        static_cast<std::uint8_t>(h >> 8), static_cast<std::uint8_t>(h),
        static_cast<std::uint8_t>(w >> 8), static_cast<std::uint8_t>(w),
        50};
    const std::size_t payload = 16 + static_cast<std::size_t>(
                                         byte_dist(rng)) * 4;
    for (std::size_t i = 0; i < payload; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(byte_dist(rng)));
    }
    expect_no_crash(bytes);
  }
}

TEST(CodecFuzz, HugeDeclaredDimensionsAreRejectedBeforeAllocation) {
  // 65535 x 65535 would be a 17 GB allocation; the decoder must refuse
  // based on the header alone.
  const std::vector<std::uint8_t> bytes = {'E', 'P', 0xFF, 0xFF,
                                           0xFF, 0xFF, 50,  0, 63};
  EXPECT_THROW((void)decode_image(bytes), std::runtime_error);
}

TEST(CodecFuzz, PlausibleLargeHeaderWithTinyPayloadIsRejected) {
  // 4096 x 4096 is within the pixel cap, but a 3-byte payload cannot hold
  // the declared 262144 blocks; rejection must come before decoding work.
  const std::vector<std::uint8_t> bytes = {'E', 'P', 0x10, 0x00,
                                           0x10, 0x00, 50,  0, 63};
  EXPECT_THROW((void)decode_image(bytes), std::runtime_error);
}

TEST(CodecFuzz, OversizedRunLengthIsRejected) {
  // Block stream claiming an AC run of ~2^31: the signed cast used to go
  // negative and index out of bounds.
  std::vector<std::uint8_t> bytes = {'E', 'P', 0, 8, 0, 8, 50};
  bytes.push_back(0);  // DC delta 0
  // varint 0x80000000 (run length with the sign bit set after cast)
  bytes.insert(bytes.end(), {0x80, 0x80, 0x80, 0x80, 0x08});
  bytes.push_back(2);  // would-be coefficient
  bytes.push_back(63);  // EOB
  EXPECT_THROW((void)decode_image(bytes), std::exception);
}

TEST(CodecFuzz, ValidInputsStillRoundTripAfterHardening) {
  for (const auto& [h, w] : {std::pair{8, 8}, std::pair{17, 31},
                             std::pair{64, 48}}) {
    const GrayImage image = test_image(h, w, 59);
    const GrayImage decoded = decode_image(encode_image(image, 70));
    EXPECT_EQ(decoded.height, h);
    EXPECT_EQ(decoded.width, w);
    EXPECT_GT(psnr(image, decoded), 15.0);
  }
}

}  // namespace
}  // namespace edgetrain::insitu
