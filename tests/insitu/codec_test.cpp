#include "insitu/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "insitu/scene.hpp"

namespace edgetrain::insitu {
namespace {

GrayImage gradient_image(int h, int w) {
  GrayImage image(h, w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      image.at(y, x) = 0.5F + 0.4F * std::sin(0.07F * static_cast<float>(x)) *
                                  std::cos(0.05F * static_cast<float>(y));
    }
  }
  return image;
}

TEST(Codec, RoundTripPreservesDimensions) {
  for (const auto [h, w] : {std::pair{8, 8}, std::pair{24, 24},
                            std::pair{17, 31}, std::pair{224, 224}}) {
    const GrayImage image = gradient_image(h, w);
    const GrayImage decoded = decode_image(encode_image(image, 50));
    EXPECT_EQ(decoded.height, h);
    EXPECT_EQ(decoded.width, w);
  }
}

TEST(Codec, SmoothImageHighPsnrAtQuality50) {
  const GrayImage image = gradient_image(64, 64);
  const GrayImage decoded = decode_image(encode_image(image, 50));
  EXPECT_GT(psnr(image, decoded), 32.0);
}

TEST(Codec, FlatImageIsTinyAndNearLossless) {
  GrayImage image(32, 32);
  for (auto& p : image.pixels) p = 0.5F;
  const auto bytes = encode_image(image, 50);
  EXPECT_LT(bytes.size(), 80U);  // ~4 bytes per block + header
  const GrayImage decoded = decode_image(bytes);
  EXPECT_GT(psnr(image, decoded), 45.0);
}

TEST(Codec, QualityTradesSizeForFidelity) {
  const GrayImage image = gradient_image(64, 64);
  const auto low = encode_image(image, 10);
  const auto high = encode_image(image, 90);
  EXPECT_LT(low.size(), high.size());
  EXPECT_LT(psnr(image, decode_image(low)), psnr(image, decode_image(high)));
}

// The paper's storage claim: a 224x224 image in "less than 10kb".
TEST(Codec, PaperTenKilobyteClaimAt224) {
  // Synthetic street-scene-like content: background texture + objects.
  SceneConfig config;
  config.frame_width = 224;
  config.frame_height = 224;
  config.object_size = 48;
  config.num_classes = 4;
  config.noise = 0.02F;
  config.seed = 31;
  SceneSimulator sim(config);
  Frame frame = sim.next_frame(1.0F, 3);
  for (int i = 0; i < 5; ++i) frame = sim.next_frame(1.0F, 3);

  const auto bytes = encode_image(frame.image, 50);
  EXPECT_LT(bytes.size(), 10U * 1024U) << bytes.size() << " bytes";
  EXPECT_GT(psnr(frame.image, decode_image(bytes)), 28.0);
}

TEST(Codec, NoiseCostsBits) {
  GrayImage clean = gradient_image(64, 64);
  GrayImage noisy = clean;
  std::mt19937 rng(3);
  std::normal_distribution<float> noise(0.0F, 0.08F);
  for (auto& p : noisy.pixels) {
    p = std::clamp(p + noise(rng), 0.0F, 1.0F);
  }
  EXPECT_GT(encode_image(noisy, 50).size(), encode_image(clean, 50).size());
}

TEST(Codec, RejectsMalformedPayloads) {
  const GrayImage image = gradient_image(16, 16);
  auto bytes = encode_image(image, 50);
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)decode_image(bad_magic), std::runtime_error);
  // Truncated.
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)decode_image(truncated), std::runtime_error);
  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0x01);
  EXPECT_THROW((void)decode_image(trailing), std::runtime_error);
}

TEST(Codec, RejectsEmptyImage) {
  GrayImage empty;
  EXPECT_THROW((void)encode_image(empty, 50), std::invalid_argument);
}

TEST(Psnr, IdenticalImagesAreInfinite) {
  const GrayImage image = gradient_image(8, 8);
  EXPECT_TRUE(std::isinf(psnr(image, image)));
}

TEST(Psnr, KnownValue) {
  GrayImage a(2, 2);
  GrayImage b(2, 2);
  for (auto& p : b.pixels) p = 0.1F;  // MSE = 0.01
  EXPECT_NEAR(psnr(a, b), 20.0, 1e-4);
}

TEST(Psnr, SizeMismatchThrows) {
  GrayImage a(2, 2);
  GrayImage b(2, 3);
  EXPECT_THROW((void)psnr(a, b), std::invalid_argument);
}

TEST(Codec, GlyphPatchesSurviveForClassification) {
  // Codec artefacts must not destroy glyph identity at patch scale.
  SceneConfig config;
  config.seed = 77;
  SceneSimulator sim(config);
  for (std::int32_t label = 0; label < 4; ++label) {
    GrayImage patch(24, 24);
    patch.pixels = sim.canonical_patch(label, 24);
    const GrayImage decoded = decode_image(encode_image(patch, 50));
    EXPECT_GT(psnr(patch, decoded), 22.0) << "label " << label;
  }
}

}  // namespace
}  // namespace edgetrain::insitu
