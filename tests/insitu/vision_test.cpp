#include "insitu/vision.hpp"

#include <gtest/gtest.h>

namespace edgetrain::insitu {
namespace {

TEST(IoU, IdenticalBoxesIsOne) {
  const BBox a{2, 3, 10, 10};
  EXPECT_FLOAT_EQ(iou(a, a), 1.0F);
}

TEST(IoU, DisjointBoxesIsZero) {
  EXPECT_FLOAT_EQ(iou({0, 0, 5, 5}, {10, 10, 5, 5}), 0.0F);
}

TEST(IoU, HalfOverlap) {
  // a: [0,10)x[0,10), b: [5,15)x[0,10) -> inter 50, union 150.
  EXPECT_NEAR(iou({0, 0, 10, 10}, {5, 0, 10, 10}), 50.0F / 150.0F, 1e-6F);
}

TEST(IoU, Symmetric) {
  const BBox a{1, 2, 7, 4};
  const BBox b{3, 3, 9, 9};
  EXPECT_FLOAT_EQ(iou(a, b), iou(b, a));
}

TEST(AbsDiff, ComputesPerPixel) {
  GrayImage a(2, 2);
  GrayImage b(2, 2);
  a.at(0, 0) = 0.8F;
  b.at(0, 0) = 0.3F;
  const GrayImage d = abs_diff(a, b);
  EXPECT_FLOAT_EQ(d.at(0, 0), 0.5F);
  EXPECT_FLOAT_EQ(d.at(1, 1), 0.0F);
}

TEST(AbsDiff, SizeMismatchThrows) {
  GrayImage a(2, 2);
  GrayImage b(3, 2);
  EXPECT_THROW((void)abs_diff(a, b), std::invalid_argument);
}

TEST(DetectBlobs, FindsSingleBlob) {
  GrayImage image(20, 30);
  for (int y = 5; y < 10; ++y) {
    for (int x = 8; x < 15; ++x) image.at(y, x) = 1.0F;
  }
  const auto blobs = detect_blobs(image, 0.5F, 4);
  ASSERT_EQ(blobs.size(), 1U);
  EXPECT_EQ(blobs[0].x, 8);
  EXPECT_EQ(blobs[0].y, 5);
  EXPECT_EQ(blobs[0].w, 7);
  EXPECT_EQ(blobs[0].h, 5);
}

TEST(DetectBlobs, SeparatesDistantBlobs) {
  GrayImage image(20, 40);
  image.at(3, 3) = 1.0F;
  image.at(3, 4) = 1.0F;
  image.at(4, 3) = 1.0F;
  image.at(4, 4) = 1.0F;
  image.at(15, 30) = 1.0F;
  image.at(15, 31) = 1.0F;
  image.at(16, 30) = 1.0F;
  image.at(16, 31) = 1.0F;
  const auto blobs = detect_blobs(image, 0.5F, 3);
  EXPECT_EQ(blobs.size(), 2U);
}

TEST(DetectBlobs, MinAreaFiltersSpeckles) {
  GrayImage image(10, 10);
  image.at(2, 2) = 1.0F;  // single hot pixel
  EXPECT_TRUE(detect_blobs(image, 0.5F, 2).empty());
  EXPECT_EQ(detect_blobs(image, 0.5F, 1).size(), 1U);
}

TEST(DetectBlobs, DiagonalPixelsConnect) {
  // 8-connectivity: a diagonal line is one component.
  GrayImage image(10, 10);
  for (int i = 0; i < 5; ++i) image.at(i, i) = 1.0F;
  EXPECT_EQ(detect_blobs(image, 0.5F, 3).size(), 1U);
}

TEST(CropResize, IdentityWhenSizesMatch) {
  GrayImage image(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      image.at(y, x) = static_cast<float>(y * 8 + x) / 64.0F;
    }
  }
  const auto patch = crop_resize(image, {0, 0, 8, 8}, 8);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(patch[static_cast<std::size_t>(i)], image.pixels[static_cast<std::size_t>(i)],
                1e-5F);
  }
}

TEST(CropResize, PreservesMeanApproximately) {
  GrayImage image(16, 16);
  for (auto& p : image.pixels) p = 0.5F;
  const auto patch = crop_resize(image, {2, 2, 12, 12}, 24);
  for (const float v : patch) EXPECT_NEAR(v, 0.5F, 1e-5F);
}

TEST(CropResize, ClampsOutOfBoundsBoxes) {
  GrayImage image(10, 10);
  image.at(0, 0) = 1.0F;
  // Box partially outside the frame must not crash.
  const auto patch = crop_resize(image, {-5, -5, 12, 12}, 6);
  EXPECT_EQ(patch.size(), 36U);
}

TEST(PatchesToTensor, PacksNCHW) {
  std::vector<std::vector<float>> patches{{1, 2, 3, 4}, {5, 6, 7, 8}};
  const Tensor t = patches_to_tensor(patches, 2);
  EXPECT_EQ(t.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_FLOAT_EQ(t.at(0), 1.0F);
  EXPECT_FLOAT_EQ(t.at(5), 6.0F);
}

TEST(PatchesToTensor, SizeMismatchThrows) {
  std::vector<std::vector<float>> patches{{1, 2, 3}};
  EXPECT_THROW((void)patches_to_tensor(patches, 2), std::invalid_argument);
}

}  // namespace
}  // namespace edgetrain::insitu
