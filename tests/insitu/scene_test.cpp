#include "insitu/scene.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace edgetrain::insitu {
namespace {

SceneConfig test_config() {
  SceneConfig config;
  config.frame_width = 96;
  config.frame_height = 40;
  config.object_size = 16;
  config.num_classes = 3;
  config.seed = 11;
  return config;
}

TEST(Scene, DeterministicForSeed) {
  SceneSimulator a(test_config());
  SceneSimulator b(test_config());
  for (int i = 0; i < 20; ++i) {
    const Frame fa = a.next_frame();
    const Frame fb = b.next_frame();
    ASSERT_EQ(fa.truths.size(), fb.truths.size()) << "frame " << i;
    for (std::size_t t = 0; t < fa.truths.size(); ++t) {
      EXPECT_EQ(fa.truths[t].label, fb.truths[t].label);
      EXPECT_EQ(fa.truths[t].box.x, fb.truths[t].box.x);
    }
    for (std::size_t p = 0; p < fa.image.pixels.size(); ++p) {
      ASSERT_EQ(fa.image.pixels[p], fb.image.pixels[p]);
    }
  }
}

TEST(Scene, SkewDecreasesLeftToRight) {
  SceneSimulator sim(test_config());
  const float left = sim.skew_at(0.0F);
  const float mid = sim.skew_at(40.0F);
  const float right = sim.skew_at(80.0F);
  EXPECT_GT(left, mid);
  EXPECT_GT(mid, right);
  EXPECT_NEAR(right, 0.0F, 1e-5F);
  EXPECT_NEAR(left, test_config().max_skew, 1e-5F);
}

TEST(Scene, ObjectsMoveRightAndEventuallyLeave) {
  SceneSimulator sim(test_config());
  std::int64_t tracked_id = -1;
  float last_x = -1.0F;
  int sightings = 0;
  for (int i = 0; i < 200; ++i) {
    const Frame frame = sim.next_frame(1.0F, 1);
    for (const GroundTruth& truth : frame.truths) {
      if (tracked_id < 0) tracked_id = truth.object_id;
      if (truth.object_id == tracked_id) {
        if (sightings > 0) {
          EXPECT_GT(truth.box.x + truth.box.w, static_cast<int>(last_x));
        }
        last_x = static_cast<float>(truth.box.x);
        ++sightings;
      }
    }
  }
  EXPECT_GT(sightings, 5);
  // The object crossed and left: the sim must have spawned successors.
  EXPECT_LT(sightings, 200);
}

TEST(Scene, FramesContainRenderableObjects) {
  SceneSimulator sim(test_config());
  int frames_with_objects = 0;
  for (int i = 0; i < 100; ++i) {
    const Frame frame = sim.next_frame(0.8F, 2);
    if (frame.truths.empty()) continue;
    ++frames_with_objects;
    // The object region must be measurably brighter than background noise.
    const GroundTruth& truth = frame.truths.front();
    double inside = 0.0;
    int count = 0;
    for (int y = truth.box.y; y < truth.box.y2(); ++y) {
      for (int x = truth.box.x; x < truth.box.x2(); ++x) {
        inside += frame.image.at(y, x);
        ++count;
      }
    }
    EXPECT_GT(inside / count, 0.05) << "frame " << i;
  }
  EXPECT_GT(frames_with_objects, 50);
}

TEST(Scene, CanonicalPatchesDifferAcrossClasses) {
  SceneSimulator sim(test_config());
  const int patch = 24;
  auto mean_abs_diff = [&](const std::vector<float>& a,
                           const std::vector<float>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc += std::fabs(a[i] - b[i]);
    }
    return acc / static_cast<double>(a.size());
  };
  const auto c0 = sim.canonical_patch(0, patch);
  const auto c1 = sim.canonical_patch(1, patch);
  const auto c2 = sim.canonical_patch(2, patch);
  EXPECT_GT(mean_abs_diff(c0, c1), 0.05);
  EXPECT_GT(mean_abs_diff(c1, c2), 0.05);
}

TEST(Scene, SkewedPatchesDarkerThanCanonical) {
  SceneConfig config = test_config();
  config.noise = 0.0F;
  SceneSimulator sim(config);
  const int patch = 24;
  double canonical_mass = 0.0;
  double skewed_mass = 0.0;
  for (int i = 0; i < 10; ++i) {
    for (const float v : sim.canonical_patch(0, patch)) canonical_mass += v;
    for (const float v : sim.skewed_patch(0, 0.0F, patch)) skewed_mass += v;
  }
  EXPECT_LT(skewed_mass, canonical_mass);
}

TEST(Scene, RejectsBadClassCount) {
  SceneConfig config = test_config();
  config.num_classes = 9;
  EXPECT_THROW(SceneSimulator{config}, std::invalid_argument);
}

TEST(Scene, GroundTruthBoxesInBounds) {
  SceneSimulator sim(test_config());
  for (int i = 0; i < 150; ++i) {
    const Frame frame = sim.next_frame(0.5F, 2);
    for (const GroundTruth& truth : frame.truths) {
      EXPECT_GE(truth.box.x, 0);
      EXPECT_GE(truth.box.y, 0);
      EXPECT_LE(truth.box.x2(), test_config().frame_width);
      EXPECT_LE(truth.box.y2(), test_config().frame_height);
      EXPECT_GE(truth.label, 0);
      EXPECT_LT(truth.label, 3);
    }
  }
}

}  // namespace
}  // namespace edgetrain::insitu
