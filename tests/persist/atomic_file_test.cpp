// Tests for the shared durable-file protocol (persist/atomic_file):
// frame/unframe inverses, every corruption class detected, and the
// power-loss commit semantics (torn .tmp stays, final path never torn).
#include "persist/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "persist/fault.hpp"

namespace edgetrain::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x54534554;  // "TEST"
constexpr std::uint32_t kVersion = 3;

std::vector<std::uint8_t> sample_payload() {
  std::vector<std::uint8_t> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>((i * 31 + 7) & 0xFF);
  }
  return payload;
}

class AtomicFileDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("etatomic_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

TEST(AtomicFileFrame, RoundTrips) {
  const auto payload = sample_payload();
  const auto framed = frame_payload(kMagic, kVersion, payload);
  EXPECT_EQ(framed.size(), payload.size() + kFrameHeaderBytes);
  EXPECT_EQ(unframe_payload(kMagic, kVersion, framed), payload);
}

TEST(AtomicFileFrame, RoundTripsEmptyPayload) {
  const std::vector<std::uint8_t> empty;
  const auto framed = frame_payload(kMagic, kVersion, empty);
  EXPECT_EQ(framed.size(), kFrameHeaderBytes);
  EXPECT_TRUE(unframe_payload(kMagic, kVersion, framed).empty());
}

TEST(AtomicFileFrame, RejectsTruncation) {
  auto framed = frame_payload(kMagic, kVersion, sample_payload());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, kFrameHeaderBytes - 1,
        kFrameHeaderBytes, framed.size() - 1}) {
    std::vector<std::uint8_t> cut(framed.begin(),
                                  framed.begin() + static_cast<long>(keep));
    EXPECT_THROW((void)unframe_payload(kMagic, kVersion, cut),
                 AtomicFileError)
        << "kept " << keep;
  }
}

TEST(AtomicFileFrame, RejectsWrongMagicAndVersion) {
  const auto framed = frame_payload(kMagic, kVersion, sample_payload());
  EXPECT_THROW((void)unframe_payload(kMagic + 1, kVersion, framed),
               AtomicFileError);
  EXPECT_THROW((void)unframe_payload(kMagic, kVersion + 1, framed),
               AtomicFileError);
}

TEST(AtomicFileFrame, DetectsEveryFlippedBitInHeaderAndPayload) {
  const auto framed = frame_payload(kMagic, kVersion, sample_payload());
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    auto corrupt = framed;
    corrupt[byte] = static_cast<std::uint8_t>(corrupt[byte] ^ 0x10);
    EXPECT_THROW((void)unframe_payload(kMagic, kVersion, corrupt),
                 AtomicFileError)
        << "byte " << byte;
  }
}

TEST(AtomicFileFrame, RejectsTrailingGarbage) {
  auto framed = frame_payload(kMagic, kVersion, sample_payload());
  framed.push_back(0);
  EXPECT_THROW((void)unframe_payload(kMagic, kVersion, framed),
               AtomicFileError);
}

// ---------------------------------------------------------------------------
// Commit protocol
// ---------------------------------------------------------------------------

TEST_F(AtomicFileDirTest, WriteReadRoundTrips) {
  const auto framed = frame_payload(kMagic, kVersion, sample_payload());
  const std::string path = dir_ + "/artefact.bin";
  write_file_atomic(path, framed);
  EXPECT_EQ(read_file_bytes(path), framed);
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp must not survive a commit";
}

TEST_F(AtomicFileDirTest, OverwriteReplacesAtomically) {
  const std::string path = dir_ + "/artefact.bin";
  write_file_atomic(path, frame_payload(kMagic, kVersion, {1, 2, 3}));
  const auto second = frame_payload(kMagic, kVersion, sample_payload());
  write_file_atomic(path, second);
  EXPECT_EQ(read_file_bytes(path), second);
}

TEST_F(AtomicFileDirTest, MissingFileThrows) {
  EXPECT_THROW((void)read_file_bytes(dir_ + "/nope.bin"), AtomicFileError);
}

TEST_F(AtomicFileDirTest, PowerLossTearsOnlyTheTmp) {
  const auto first = frame_payload(kMagic, kVersion, {9, 9, 9, 9});
  const std::string path = dir_ + "/artefact.bin";
  write_file_atomic(path, first);

  const auto second = frame_payload(kMagic, kVersion, sample_payload());
  for (const std::uint64_t offset : {std::uint64_t{0}, std::uint64_t{8},
                                     std::uint64_t{second.size() - 1}}) {
    FaultInjector fault;
    fault.arm_write_failure(offset);
    EXPECT_THROW(write_file_atomic(path, second.data(), second.size(), &fault),
                 PowerLoss)
        << "offset " << offset;
    // Death mid-write: the torn prefix is in the .tmp, the committed file
    // still reads back the OLD generation.
    EXPECT_TRUE(fs::exists(path + ".tmp")) << "offset " << offset;
    EXPECT_EQ(read_file_bytes(path), first) << "offset " << offset;
    fs::remove(path + ".tmp");
  }

  // The retry after "reboot" commits cleanly over the old generation.
  write_file_atomic(path, second);
  EXPECT_EQ(read_file_bytes(path), second);
}

}  // namespace
}  // namespace edgetrain::persist
