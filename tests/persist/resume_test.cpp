// Kill-anywhere determinism tests: a training run interrupted by process
// death -- at snapshot boundaries, mid snapshot write, mid schedule action
// -- and resumed from disk must end with weights bit-for-bit identical to
// an uninterrupted run with the same seeds.
#include "persist/resumable.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <random>

#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace edgetrain::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kInitSeed = 701;
constexpr std::uint32_t kDataSeed = 703;

/// Physical LinearResNet with a classifier head: conv stem, homogeneous
/// basic blocks (each with batch norm, so buffers matter), global pool,
/// linear. Built identically on every simulated boot.
nn::LayerChain build_net() {
  std::mt19937 rng(kInitSeed);
  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Conv2d>(1, 8, 3, 1, 1, false, rng));
  chain.push(std::make_unique<nn::BasicBlock>(8, 8, 1, rng));
  chain.push(std::make_unique<nn::BasicBlock>(8, 8, 1, rng));
  chain.push(std::make_unique<nn::GlobalAvgPool>());
  chain.push(std::make_unique<nn::Linear>(8, 4, true, rng));
  return chain;
}

/// Quadrant task batch, a pure function of (rng, cursor).
LabeledBatch quadrant_batch(std::mt19937& rng, std::uint64_t /*cursor*/) {
  LabeledBatch batch;
  const std::int64_t n = 4;
  batch.x = Tensor::randn(Shape{n, 1, 12, 12}, rng, 0.2F);
  std::uniform_int_distribution<std::int32_t> dist(0, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t label = dist(rng);
    batch.labels.push_back(label);
    float* img = batch.x.data() + i * 144;
    const int oy = (label / 2) * 6;
    const int ox = (label % 2) * 6;
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) img[(oy + y) * 12 + ox + x] += 1.2F;
    }
  }
  return batch;
}

ResumableOptions make_options(const std::string& dir) {
  ResumableOptions options;
  options.trainer.strategy = nn::CheckpointStrategy::Revolve;
  options.trainer.free_slots = 2;
  options.trainer.lr = 0.05F;
  options.snapshot_dir = dir;
  options.snapshot_every = 3;
  options.keep_snapshots = 2;
  options.data_seed = kDataSeed;
  return options;
}

/// Full durable model state: weights + buffers, cloned off the live chain.
struct ModelDump {
  std::vector<std::uint8_t> weights;
  std::vector<std::uint8_t> buffers;
};

ModelDump dump(nn::LayerChain& chain) {
  return {nn::serialize_weights(chain), nn::serialize_buffers(chain)};
}

/// Runs to @p total_steps uninterrupted in a fresh directory.
ModelDump uninterrupted_run(std::uint64_t total_steps,
                            const ResumableOptions& options) {
  nn::LayerChain chain = build_net();
  ResumableTrainer trainer(chain, options, nullptr);
  EXPECT_FALSE(trainer.resume());
  while (trainer.step_count() < total_steps) {
    (void)trainer.step(quadrant_batch);
  }
  return dump(chain);
}

/// One simulated boot: build everything from scratch, resume from disk,
/// arm @p inject, train toward @p total_steps. Returns the model state when
/// the run completed, nullopt when it died (PowerLoss).
std::optional<ModelDump> boot(const ResumableOptions& options,
                              std::uint64_t total_steps,
                              const std::function<void(FaultInjector&)>&
                                  inject = nullptr) {
  nn::LayerChain chain = build_net();
  FaultInjector fault;
  ResumableTrainer trainer(chain, options, &fault);
  (void)trainer.resume();
  if (inject) inject(fault);
  try {
    while (trainer.step_count() < total_steps) {
      (void)trainer.step(quadrant_batch);
    }
  } catch (const PowerLoss&) {
    return std::nullopt;
  }
  return dump(chain);
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name = ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    base_ = (fs::temp_directory_path() / ("etresume_" + name)).string();
    fs::remove_all(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  [[nodiscard]] std::string subdir(const std::string& tag) const {
    return base_ + "/" + tag;
  }

  std::string base_;
};

void expect_identical(const ModelDump& a, const ModelDump& b,
                      const std::string& what) {
  EXPECT_EQ(a.weights, b.weights) << what << ": weights diverged";
  EXPECT_EQ(a.buffers, b.buffers) << what << ": buffers diverged";
}

// ---------------------------------------------------------------------------
// Kill-anywhere determinism
// ---------------------------------------------------------------------------

TEST_F(ResumeTest, KilledAtEveryStepMatchesUninterruptedBitForBit) {
  const std::uint64_t total = 13;
  const ResumableOptions options = make_options(subdir("golden"));
  const ModelDump golden = uninterrupted_run(total, options);

  // Kill the run immediately before every single step (this covers every
  // snapshot boundary: deaths right after the commits at steps 3, 6, 9, 12
  // are the kills armed at those step numbers).
  for (std::uint64_t kill = 0; kill < total; ++kill) {
    const std::string dir = subdir("kill_" + std::to_string(kill));
    ResumableOptions opts = make_options(dir);
    EXPECT_FALSE(boot(opts, total, [&](FaultInjector& fault) {
                   fault.arm_abort_at_step(kill);
                 }).has_value())
        << "kill at step " << kill << " did not fire";
    const std::optional<ModelDump> final = boot(opts, total);
    ASSERT_TRUE(final.has_value()) << "kill at step " << kill;
    expect_identical(*final, golden, "kill at step " + std::to_string(kill));
  }
}

TEST_F(ResumeTest, KilledMidSnapshotWriteMatchesUninterruptedBitForBit) {
  const std::uint64_t total = 13;
  const ResumableOptions options = make_options(subdir("golden"));
  const ModelDump golden = uninterrupted_run(total, options);
  const std::uint64_t snap_bytes = [&] {
    nn::LayerChain chain = build_net();
    ResumableTrainer trainer(chain, options);
    return encode_snapshot(trainer.capture()).size();
  }();

  // Tear a snapshot write at byte offsets spanning the file: inside the
  // header, at the header/payload boundary, across the payload. The
  // serialized RNG stream makes snapshot sizes vary by a few bytes between
  // steps, so offsets stay below a safety margin that every write reaches
  // (exact end-of-file tears are covered in snapshot_test).
  ASSERT_GT(snap_bytes, 1024U);
  const std::uint64_t last_safe = snap_bytes - 512;
  std::mt19937 offset_rng(811);
  std::vector<std::uint64_t> offsets = {1, 12, 24, snap_bytes / 2, last_safe};
  std::uniform_int_distribution<std::uint64_t> dist(25, last_safe);
  for (int i = 0; i < 3; ++i) offsets.push_back(dist(offset_rng));

  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const std::uint64_t offset = offsets[i];
    const std::string dir = subdir("tear_" + std::to_string(i));
    ResumableOptions opts = make_options(dir);
    EXPECT_FALSE(boot(opts, total, [&](FaultInjector& fault) {
                   fault.arm_write_failure(offset);
                 }).has_value())
        << "tear at byte " << offset << " did not fire";
    const std::optional<ModelDump> final = boot(opts, total);
    ASSERT_TRUE(final.has_value()) << "tear at byte " << offset;
    expect_identical(*final, golden, "tear at byte " + std::to_string(offset));
  }
}

TEST_F(ResumeTest, KilledMidScheduleActionMatchesUninterruptedBitForBit) {
  const std::uint64_t total = 10;
  const ResumableOptions options = make_options(subdir("golden"));
  const ModelDump golden = uninterrupted_run(total, options);

  // Die inside a pass, at several schedule positions. The abandoned pass
  // must update nothing; recovery replays the step from its boundary.
  for (const std::int64_t action : {std::int64_t{0}, std::int64_t{3},
                                    std::int64_t{7}}) {
    const std::string dir = subdir("action_" + std::to_string(action));
    ResumableOptions opts = make_options(dir);
    EXPECT_FALSE(boot(opts, total, [&](FaultInjector& fault) {
                   fault.arm_abort_at_action(action);
                 }).has_value())
        << "mid-step abort at action " << action << " did not fire";
    const std::optional<ModelDump> final = boot(opts, total);
    ASSERT_TRUE(final.has_value());
    expect_identical(*final, golden,
                     "mid-step abort at action " + std::to_string(action));
  }
}

TEST_F(ResumeTest, SurvivesRepeatedDeathsInOneRun) {
  const std::uint64_t total = 20;
  const ResumableOptions options = make_options(subdir("golden"));
  const ModelDump golden = uninterrupted_run(total, options);

  const std::string dir = subdir("chaos");
  ResumableOptions opts = make_options(dir);
  // Death after death: step kill, torn write, mid-step abort, step kill.
  EXPECT_FALSE(boot(opts, total, [](FaultInjector& f) {
                 f.arm_abort_at_step(4);
               }).has_value());
  EXPECT_FALSE(boot(opts, total, [](FaultInjector& f) {
                 f.arm_write_failure(40);
               }).has_value());
  EXPECT_FALSE(boot(opts, total, [](FaultInjector& f) {
                 f.arm_abort_at_action(5);
               }).has_value());
  EXPECT_FALSE(boot(opts, total, [](FaultInjector& f) {
                 f.arm_abort_at_step(17);
               }).has_value());
  const std::optional<ModelDump> final = boot(opts, total);
  ASSERT_TRUE(final.has_value());
  expect_identical(*final, golden, "after four deaths");
}

// ---------------------------------------------------------------------------
// Corruption fallback
// ---------------------------------------------------------------------------

TEST_F(ResumeTest, BitRotOnLatestSnapshotFallsBackAndStaysDeterministic) {
  const std::uint64_t total = 13;
  const ResumableOptions options = make_options(subdir("golden"));
  const ModelDump golden = uninterrupted_run(total, options);

  const std::string dir = subdir("bitrot");
  ResumableOptions opts = make_options(dir);
  // Train partway (snapshots at steps 3 and 6), then corrupt the newest
  // snapshot on disk, as an SD card would.
  EXPECT_FALSE(boot(opts, total, [](FaultInjector& f) {
                 f.arm_abort_at_step(7);
               }).has_value());
  SnapshotManager manager(dir, 2);
  const std::vector<std::string> paths = manager.list();
  ASSERT_EQ(paths.size(), 2U);
  flip_bit(paths[0], file_size(paths[0]) / 2, 5);

  // Recovery must fall back to the older generation (step 3) and still
  // reach the exact uninterrupted trajectory.
  {
    nn::LayerChain chain = build_net();
    ResumableTrainer trainer(chain, opts);
    ASSERT_TRUE(trainer.resume());
    EXPECT_EQ(trainer.step_count(), 3U);
    EXPECT_EQ(trainer.snapshots().last_skipped().size(), 1U);
  }
  const std::optional<ModelDump> final = boot(opts, total);
  ASSERT_TRUE(final.has_value());
  expect_identical(*final, golden, "bit-rot fallback");
}

TEST_F(ResumeTest, TruncatedLatestSnapshotFallsBack) {
  const std::string dir = subdir("trunc");
  ResumableOptions opts = make_options(dir);
  EXPECT_FALSE(boot(opts, 13, [](FaultInjector& f) {
                 f.arm_abort_at_step(7);
               }).has_value());
  SnapshotManager manager(dir, 2);
  const std::vector<std::string> paths = manager.list();
  ASSERT_EQ(paths.size(), 2U);
  truncate_file(paths[0], file_size(paths[0]) - 5);

  nn::LayerChain chain = build_net();
  ResumableTrainer trainer(chain, opts);
  ASSERT_TRUE(trainer.resume());
  EXPECT_EQ(trainer.step_count(), 3U);
}

// ---------------------------------------------------------------------------
// State coverage
// ---------------------------------------------------------------------------

TEST_F(ResumeTest, AdamMomentsAndStepCounterSurviveResume) {
  const std::uint64_t total = 9;
  ResumableOptions options = make_options(subdir("golden"));
  options.trainer.optimizer = nn::OptimizerKind::Adam;
  options.trainer.lr = 0.002F;
  const ModelDump golden = uninterrupted_run(total, options);

  const std::string dir = subdir("adam");
  ResumableOptions opts = options;
  opts.snapshot_dir = dir;
  // Adam's trajectory depends on its moment tensors and bias-correction
  // counter; a resume that dropped either would diverge immediately.
  EXPECT_FALSE(boot(opts, total, [](FaultInjector& f) {
                 f.arm_abort_at_step(5);
               }).has_value());
  const std::optional<ModelDump> final = boot(opts, total);
  ASSERT_TRUE(final.has_value());
  expect_identical(*final, golden, "Adam resume");
}

TEST_F(ResumeTest, BatchNormRunningStatsSurviveResume) {
  const std::string dir = subdir("bn");
  ResumableOptions opts = make_options(dir);

  nn::LayerChain chain = build_net();
  {
    ResumableTrainer trainer(chain, opts);
    for (int i = 0; i < 4; ++i) (void)trainer.step(quadrant_batch);
    trainer.suspend();
  }
  const ModelDump saved = dump(chain);

  nn::LayerChain rebooted = build_net();
  ResumableTrainer trainer(rebooted, opts);
  ASSERT_TRUE(trainer.resume());
  expect_identical(dump(rebooted), saved, "running stats");
  // And they are genuinely non-trivial state: training moved them.
  nn::LayerChain fresh = build_net();
  EXPECT_NE(saved.buffers, dump(fresh).buffers);
}

TEST_F(ResumeTest, SuspendPersistsCurrentStateImmediately) {
  const std::string dir = subdir("suspend");
  ResumableOptions opts = make_options(dir);
  opts.snapshot_every = 0;  // only explicit suspends snapshot

  nn::LayerChain chain = build_net();
  ResumableTrainer trainer(chain, opts);
  for (int i = 0; i < 5; ++i) (void)trainer.step(quadrant_batch);
  EXPECT_EQ(trainer.snapshots_written(), 0U);
  trainer.suspend();
  EXPECT_EQ(trainer.snapshots_written(), 1U);

  nn::LayerChain rebooted = build_net();
  ResumableTrainer resumed(rebooted, opts);
  ASSERT_TRUE(resumed.resume());
  EXPECT_EQ(resumed.step_count(), 5U);
  EXPECT_EQ(resumed.data_cursor(), 5U);
  expect_identical(dump(rebooted), dump(chain), "suspend state");
}

TEST_F(ResumeTest, FreshStartWhenNoSnapshotExists) {
  nn::LayerChain chain = build_net();
  ResumableTrainer trainer(chain, make_options(subdir("fresh")));
  EXPECT_FALSE(trainer.resume());
  EXPECT_EQ(trainer.step_count(), 0U);
}

TEST_F(ResumeTest, MidStepAbortRecordsSchedulePosition) {
  const std::string dir = subdir("telemetry");
  ResumableOptions opts = make_options(dir);
  nn::LayerChain chain = build_net();
  FaultInjector fault;
  ResumableTrainer trainer(chain, opts, &fault);
  (void)trainer.step(quadrant_batch);
  fault.arm_abort_at_action(4);
  EXPECT_THROW((void)trainer.step(quadrant_batch), PowerLoss);
  EXPECT_EQ(trainer.last_aborted_action(), 4);
  // The position rides along in the next snapshot for post-mortem reads.
  trainer.suspend();
  SnapshotManager manager(dir, 2);
  const std::optional<TrainerState> state = manager.load_latest();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->in_flight_action, 4);
}

}  // namespace
}  // namespace edgetrain::persist
