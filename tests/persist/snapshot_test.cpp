#include "persist/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include "persist/crc32.hpp"
#include "persist/fault.hpp"
#include "persist/wire.hpp"

namespace edgetrain::persist {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the system temp dir, removed on teardown.
class SnapshotDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("etsnap_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TrainerState sample_state() {
  TrainerState state;
  state.step = 1234;
  state.data_cursor = 5678;
  state.pass_token = 42;
  state.in_flight_action = 7;
  std::mt19937 rng(99);
  std::ostringstream stream;
  stream << rng;
  state.rng_state = stream.str();
  state.model = {1, 2, 3, 4, 5, 0, 255};
  state.optimizer = {9, 8, 7};
  state.buffers = {6, 5};
  return state;
}

// ---------------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------------

TEST(Wire, RoundTripsEveryPrimitive) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.i64(-42);
  writer.f32(3.5F);
  writer.str("hello");
  writer.blob({1, 2, 3});
  const std::vector<std::uint8_t> bytes = writer.take();

  ByteReader reader(bytes);
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFU);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_EQ(reader.f32(), 3.5F);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(Wire, LittleEndianOnTheWire) {
  ByteWriter writer;
  writer.u32(0x01020304);
  const std::vector<std::uint8_t> bytes = writer.take();
  ASSERT_EQ(bytes.size(), 4U);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Wire, TruncatedReadThrowsAtEveryPrefix) {
  ByteWriter writer;
  writer.u64(7);
  writer.str("abc");
  const std::vector<std::uint8_t> bytes = writer.take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader reader(bytes.data(), len);
    EXPECT_THROW(
        {
          (void)reader.u64();
          (void)reader.str();
        },
        std::runtime_error)
        << "prefix length " << len;
  }
}

TEST(Wire, BlobLengthBeyondBufferThrows) {
  ByteWriter writer;
  writer.u64(~0ULL);  // declared length far beyond the buffer
  ByteReader reader(writer.bytes());
  EXPECT_THROW((void)reader.blob(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesIeeeCheckValue) {
  // The standard check value for CRC-32/ISO-HDLC over "123456789".
  const std::string data = "123456789";
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926U);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = crc32_init();
  for (char c : data) crc = crc32_update(crc, &c, 1);
  EXPECT_EQ(crc32_final(crc), crc32(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const std::uint32_t clean = crc32(data.data(), data.size());
  data[100] ^= 1;
  EXPECT_NE(crc32(data.data(), data.size()), clean);
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

TEST(SnapshotCodec, RoundTripsCompleteState) {
  const TrainerState state = sample_state();
  const std::vector<std::uint8_t> bytes = encode_snapshot(state);
  EXPECT_EQ(decode_snapshot(bytes), state);
}

TEST(SnapshotCodec, EveryBitFlipIsDetected) {
  TrainerState state = sample_state();
  state.model.resize(40, 7);  // keep the file small enough to scan fully
  const std::vector<std::uint8_t> clean = encode_snapshot(state);
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    std::vector<std::uint8_t> corrupt = clean;
    corrupt[byte] ^= 0x10;
    EXPECT_THROW((void)decode_snapshot(corrupt), SnapshotError)
        << "undetected flip at byte " << byte;
  }
}

TEST(SnapshotCodec, EveryTruncationIsDetected) {
  const std::vector<std::uint8_t> clean = encode_snapshot(sample_state());
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const std::vector<std::uint8_t> cut(clean.begin(),
                                        clean.begin() + static_cast<long>(len));
    EXPECT_THROW((void)decode_snapshot(cut), SnapshotError)
        << "undetected truncation to " << len << " bytes";
  }
}

TEST(SnapshotCodec, TrailingGarbageIsDetected) {
  std::vector<std::uint8_t> bytes = encode_snapshot(sample_state());
  bytes.push_back(0);
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

// ---------------------------------------------------------------------------
// Atomic file protocol
// ---------------------------------------------------------------------------

TEST_F(SnapshotDirTest, WriteReadRoundTrip) {
  const std::string path = dir_ + "/state.etsnap";
  const TrainerState state = sample_state();
  write_snapshot_file(path, state);
  EXPECT_EQ(read_snapshot_file(path), state);
  EXPECT_TRUE(snapshot_valid(path));
}

TEST_F(SnapshotDirTest, TornWriteNeverDamagesTheCommittedFile) {
  const std::string path = dir_ + "/state.etsnap";
  TrainerState old_state = sample_state();
  write_snapshot_file(path, old_state);

  TrainerState new_state = sample_state();
  new_state.step = 9999;
  const std::uint64_t size = encode_snapshot(new_state).size();
  // Tear the replacement write at representative offsets: first byte,
  // inside the header, header/payload boundary, mid-payload, last byte.
  for (const std::uint64_t offset :
       {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{24},
        size / 2, size - 1}) {
    FaultInjector fault;
    fault.arm_write_failure(offset);
    EXPECT_THROW(write_snapshot_file(path, new_state, &fault), PowerLoss)
        << "offset " << offset;
    // The committed file is byte-for-byte the old state; the tear landed
    // in the .tmp, which holds exactly `offset` bytes.
    EXPECT_EQ(read_snapshot_file(path), old_state) << "offset " << offset;
    EXPECT_EQ(file_size(path + ".tmp"), offset) << "offset " << offset;
  }
}

TEST_F(SnapshotDirTest, FlipAnyBitAndTheReadFails) {
  const std::string path = dir_ + "/state.etsnap";
  write_snapshot_file(path, sample_state());
  const std::uint64_t size = file_size(path);
  for (const std::uint64_t offset :
       {std::uint64_t{0}, std::uint64_t{4}, std::uint64_t{20},
        std::uint64_t{24}, size / 2, size - 1}) {
    write_snapshot_file(path, sample_state());
    flip_bit(path, offset, 3);
    EXPECT_THROW((void)read_snapshot_file(path), SnapshotError)
        << "offset " << offset;
    EXPECT_FALSE(snapshot_valid(path));
  }
}

TEST_F(SnapshotDirTest, MissingFileThrows) {
  EXPECT_THROW((void)read_snapshot_file(dir_ + "/absent.etsnap"),
               SnapshotError);
  EXPECT_FALSE(snapshot_valid(dir_ + "/absent.etsnap"));
}

// ---------------------------------------------------------------------------
// SnapshotManager
// ---------------------------------------------------------------------------

TEST_F(SnapshotDirTest, ManagerKeepsNewestGenerations) {
  SnapshotManager manager(dir_, 2);
  TrainerState state = sample_state();
  for (std::uint64_t step : {10ULL, 20ULL, 30ULL, 40ULL}) {
    state.step = step;
    manager.write(state);
  }
  const std::vector<std::string> paths = manager.list();
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_EQ(read_snapshot_file(paths[0]).step, 40U);
  EXPECT_EQ(read_snapshot_file(paths[1]).step, 30U);
  EXPECT_GT(manager.total_bytes(), 0U);
}

TEST_F(SnapshotDirTest, ManagerFallsBackPastCorruptLatest) {
  SnapshotManager manager(dir_, 3);
  TrainerState state = sample_state();
  state.step = 100;
  manager.write(state);
  state.step = 200;
  const std::string latest = manager.write(state);

  flip_bit(latest, file_size(latest) / 2);
  const std::optional<TrainerState> loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 100U);
  ASSERT_EQ(manager.last_skipped().size(), 1U);
  EXPECT_EQ(manager.last_skipped()[0], latest);
}

TEST_F(SnapshotDirTest, ManagerFallsBackPastTruncatedLatest) {
  SnapshotManager manager(dir_, 3);
  TrainerState state = sample_state();
  state.step = 1;
  manager.write(state);
  state.step = 2;
  const std::string latest = manager.write(state);

  truncate_file(latest, file_size(latest) / 3);
  const std::optional<TrainerState> loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 1U);
}

TEST_F(SnapshotDirTest, ManagerEmptyDirectoryLoadsNothing) {
  SnapshotManager manager(dir_, 2);
  EXPECT_FALSE(manager.load_latest().has_value());
  EXPECT_EQ(manager.total_bytes(), 0U);
}

TEST_F(SnapshotDirTest, ManagerSweepsStaleTempFilesOnBoot) {
  {
    std::ofstream torn(dir_ + "/snap_000000000009.etsnap.tmp",
                       std::ios::binary);
    torn << "torn prefix from a previous crash";
  }
  SnapshotManager manager(dir_, 2);
  EXPECT_FALSE(fs::exists(dir_ + "/snap_000000000009.etsnap.tmp"));
}

TEST_F(SnapshotDirTest, TornWriteKeepsEveryCommittedGeneration) {
  SnapshotManager manager(dir_, 2);
  TrainerState state = sample_state();
  state.step = 5;
  manager.write(state);
  state.step = 10;
  manager.write(state);

  state.step = 15;
  FaultInjector fault;
  fault.arm_write_failure(30);
  EXPECT_THROW(manager.write(state, &fault), PowerLoss);

  // Both committed generations survive; recovery gets step 10.
  SnapshotManager rebooted(dir_, 2);
  const std::optional<TrainerState> loaded = rebooted.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 10U);
  EXPECT_EQ(rebooted.list().size(), 2U);
}

}  // namespace
}  // namespace edgetrain::persist
