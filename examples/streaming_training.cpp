// streaming_training: checkpointing when the chain length is unknown.
//
// A Waggle node's training window closes whenever a foreground task
// arrives (see edge/scheduler.hpp). The OnlineCheckpointer keeps the
// stored states evenly spread *at all times*, so whenever the stop signal
// comes the reversal is ready to run with bounded re-advance cost. This
// example streams a deep conv chain forward, stops it at an arbitrary
// point, and completes the backward pass from the online checkpoints --
// then compares the cost against what offline Revolve would have paid had
// it known the length in advance.
#include <cstdio>
#include <random>

#include "core/executor.hpp"
#include "core/online.hpp"
#include "core/revolve.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"

int main(int argc, char** argv) {
  using namespace edgetrain;

  const int stop_at = argc > 1 ? std::atoi(argv[1]) : 23;  // "interrupt" here
  const int slots = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("Streaming a conv chain; the training window closes after "
              "%d steps (unknown in advance), %d checkpoint slots.\n\n",
              stop_at, slots);

  // Simulate the stream: advance the policy step by step.
  core::online::OnlineCheckpointer policy(slots);
  for (std::int32_t state = 1; state <= stop_at; ++state) {
    const bool stored = policy.advance(state);
    if (stored || state == stop_at) {
      std::printf("  state %3d: %s (stride %d, %lld evictions so far)\n",
                  state, stored ? "checkpointed" : "window closed",
                  policy.current_stride(),
                  static_cast<long long>(policy.evictions()));
    }
  }

  const core::Schedule schedule = policy.make_schedule();
  std::printf("\nonline schedule: %lld re-advances; offline Revolve with the "
              "same memory would need %lld total forwards (vs %lld online)\n",
              static_cast<long long>(policy.reversal_cost()),
              static_cast<long long>(core::revolve::forward_cost(stop_at, slots)),
              static_cast<long long>(stop_at + policy.reversal_cost()));

  // Execute it for real on a physical chain.
  std::mt19937 rng(8);
  nn::LayerChain chain = models::build_conv_chain(stop_at, 8, rng);
  Tensor x = Tensor::randn(Shape{1, 8, 12, 12}, rng);
  nn::LayerChainRunner runner(chain, nn::Phase::Train);
  runner.begin_pass();
  core::ScheduleExecutor executor;
  const core::ExecutionResult result = executor.run(
      runner, schedule, x, [](const Tensor& output) {
        return Tensor::full(output.shape(), 1.0F);
      });
  std::printf("\nexecuted: %lld advances, %lld backwards, peak %0.1f KiB -- "
              "gradients delivered despite the surprise stop.\n",
              static_cast<long long>(result.stats.advances),
              static_cast<long long>(result.stats.backwards),
              static_cast<double>(result.peak_tracked_bytes -
                                  result.baseline_bytes) /
                  1024.0);
  return 0;
}
