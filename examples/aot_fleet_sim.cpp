// aot_fleet_sim: an Array-of-Things deployment in miniature.
//
// "Array of Things is an Internet-of-Things project that uses an array of
//  hundreds of sensors that work to collect data as a single unit" (paper
//  Section II). Each node's camera has its own mounting angle, so each
//  suffers a *different* viewpoint problem. This example deploys N
//  simulated nodes, each with its own skew profile and scene seed, runs the
//  full in-situ pipeline on every node (teacher -> harvest -> checkpointed
//  student training), and reports the fleet-wide accuracy uplift plus the
//  aggregate storage budget -- the whole paper in one run.
//
// The nodes are independent, so the fleet fans out over the global thread
// pool (one node per task; the node's inner kernels nest and therefore run
// serially inside the worker). A serial pass with the pool pinned to one
// worker runs first as the baseline: identical code path, so the parallel
// pass must reproduce every per-node result bit for bit -- checked, then
// the wall-clock speedup is reported.
//
// Usage: aot_fleet_sim [num_nodes] [frames_per_node]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "insitu/student.hpp"
#include "tensor/parallel.hpp"

namespace {

edgetrain::insitu::ViewpointExperimentConfig node_config(int node,
                                                         int num_nodes,
                                                         std::int64_t frames) {
  edgetrain::insitu::ViewpointExperimentConfig config;
  config.scene.frame_width = 112;
  config.scene.frame_height = 40;
  config.scene.object_size = 15;
  config.scene.num_classes = 3;
  // Each node has its own mounting angle: skew 0.55 .. 0.9.
  config.scene.max_skew =
      0.55F + 0.35F * static_cast<float>(node) /
                  static_cast<float>(std::max(num_nodes - 1, 1));
  config.scene.seed = 100 + static_cast<std::uint32_t>(node) * 17;
  config.harvest.patch = 18;
  config.stream_frames = frames;
  config.eval_bins = 4;
  config.eval_per_class_per_bin = 20;
  config.classifier_channels = 6;
  config.teacher_train.epochs = 6;
  config.student_train.epochs = 6;
  config.student_train.checkpoint_free_slots = 2;
  config.seed = 7 + static_cast<std::uint32_t>(node);
  return config;
}

bool same_result(const edgetrain::insitu::ViewpointExperimentResult& a,
                 const edgetrain::insitu::ViewpointExperimentResult& b) {
  return std::memcmp(&a.teacher_overall, &b.teacher_overall,
                     sizeof(a.teacher_overall)) == 0 &&
         std::memcmp(&a.student_overall, &b.student_overall,
                     sizeof(a.student_overall)) == 0 &&
         a.harvest.images_harvested == b.harvest.images_harvested &&
         std::memcmp(&a.harvest.label_purity, &b.harvest.label_purity,
                     sizeof(a.harvest.label_purity)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edgetrain::insitu;
  using Clock = std::chrono::steady_clock;

  const int num_nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int64_t frames = argc > 2 ? std::atoll(argv[2]) : 500;

  std::printf("Deploying %d Waggle nodes, %lld frames each...\n\n", num_nodes,
              static_cast<long long>(frames));

  // Serial baseline: one pool worker, plain loop.
  edgetrain::ThreadPool::set_global_threads(1);
  std::vector<ViewpointExperimentResult> serial(
      static_cast<std::size_t>(num_nodes));
  const auto serial_start = Clock::now();
  for (int node = 0; node < num_nodes; ++node) {
    serial[static_cast<std::size_t>(node)] =
        run_viewpoint_experiment(node_config(node, num_nodes, frames));
  }
  const double serial_seconds =
      std::chrono::duration<double>(Clock::now() - serial_start).count();

  // Parallel fleet: every node is an independent task on the global pool.
  edgetrain::ThreadPool::set_global_threads(0);  // hardware concurrency
  std::vector<ViewpointExperimentResult> parallel(
      static_cast<std::size_t>(num_nodes));
  const auto parallel_start = Clock::now();
  edgetrain::parallel_for(
      0, num_nodes, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t node = begin; node < end; ++node) {
          parallel[static_cast<std::size_t>(node)] = run_viewpoint_experiment(
              node_config(static_cast<int>(node), num_nodes, frames));
        }
      });
  const double parallel_seconds =
      std::chrono::duration<double>(Clock::now() - parallel_start).count();

  std::printf("%-6s %-8s %-10s %-10s %-10s %-10s %-10s\n", "node", "skew",
              "images", "purity", "teacher", "student", "uplift");

  double teacher_total = 0.0;
  double student_total = 0.0;
  std::int64_t images_total = 0;
  int improved = 0;
  bool identical = true;

  for (int node = 0; node < num_nodes; ++node) {
    const auto index = static_cast<std::size_t>(node);
    const ViewpointExperimentResult& result = parallel[index];
    identical = identical && same_result(result, serial[index]);
    teacher_total += result.teacher_overall;
    student_total += result.student_overall;
    images_total += result.harvest.images_harvested;
    if (result.student_overall > result.teacher_overall) ++improved;

    std::printf("%-6d %-8.2f %-10lld %-10.2f %-10.3f %-10.3f %+.3f\n", node,
                node_config(node, num_nodes, frames).scene.max_skew,
                static_cast<long long>(result.harvest.images_harvested),
                result.harvest.label_purity, result.teacher_overall,
                result.student_overall,
                result.student_overall - result.teacher_overall);
  }

  std::printf("\nfleet summary: %d/%d nodes improved by in-situ training; "
              "mean accuracy %.3f -> %.3f\n",
              improved, num_nodes, teacher_total / num_nodes,
              student_total / num_nodes);
  std::printf("aggregate harvested dataset: %lld images (~%.1f MB at the "
              "paper's 10 kB budget), zero images transmitted upstream.\n",
              static_cast<long long>(images_total),
              static_cast<double>(images_total) * 10.0 / 1024.0);
  std::printf("fleet wall-clock: serial %.2fs, parallel %.2fs (%.2fx); "
              "per-node results bit-identical to serial: %s\n",
              serial_seconds, parallel_seconds,
              parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0,
              identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "error: parallel fleet diverged from the serial baseline\n");
    return 1;
  }
  return 0;
}
