// edgetrain quickstart: train a small CNN under a memory cap.
//
// Demonstrates the core API in ~60 lines:
//   1. build a network as a LayerChain,
//   2. pick a Revolve checkpointing schedule for a recompute budget,
//   3. run training steps through the ScheduleExecutor,
//   4. observe that gradients match full storage while peak memory drops.
//
// With --async-io the same loop spills checkpoints to disk through the
// write-behind/prefetching AsyncDiskSlotStore (DESIGN.md section 11):
// gradients stay bit-identical while the spill IO overlaps recompute.
//
// With --compress[=lossless|fp16|bf16|bitmap|bitmap-fp16] checkpoints rest
// as codec blobs (DESIGN.md sections 12 and 16): lossless byte-plane RLE
// and the sparse bitmap codec keep gradients bit-identical (bitmap packs
// only the nonzero values behind a nonzero bitmap, so post-ReLU boundaries
// shrink with their zero fraction), the half-precision casts halve
// checkpoint bytes at gradcheck-tolerance error. Composable with
// --async-io, where the store stages and spills the *encoded* bytes.
//
// With --calibrate the schedule comes from measured costs instead of unit
// counts (DESIGN.md section 13): the device is probed once (profile cached
// under /tmp), the chain's real per-step times are measured, and the
// heterogeneous DP plans against them -- with --async-io the disk spill
// weights are additionally priced from the measured SD bandwidth.
//
// With --teacher-quant=bf16|int8 the training labels come from a small
// patch teacher queried through the post-training-quantized inference path
// (DESIGN.md section 17) instead of the planted ground truth, the way the
// harvester labels frames in the in-situ pipeline. The loop reports the
// teacher's agreement with the planted labels and its labeling throughput;
// --teacher-quant=fp32 runs the same fused path unquantized for an A/B.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>

#include "calib/calibrate.hpp"
#include "calib/chain_costs.hpp"
#include "core/async_slot_store.hpp"
#include "core/disk_revolve.hpp"
#include "core/dynprog.hpp"
#include "core/executor.hpp"
#include "core/revolve.hpp"
#include "insitu/quant_classifier.hpp"
#include "insitu/teacher.hpp"
#include "models/small_nets.hpp"
#include "nn/chain_runner.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

int main(int argc, char** argv) {
  using namespace edgetrain;
  bool async_io = false;
  bool calibrate = false;
  core::SlotCodec codec = core::SlotCodec::None;
  std::optional<insitu::TeacherPrecision> teacher_quant;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--async-io") == 0) {
      async_io = true;
    } else if (std::strcmp(argv[i], "--calibrate") == 0) {
      calibrate = true;
    } else if (std::strncmp(argv[i], "--teacher-quant=", 16) == 0) {
      const char* mode = argv[i] + 16;
      if (std::strcmp(mode, "fp32") == 0) {
        teacher_quant = insitu::TeacherPrecision::Fp32;
      } else if (std::strcmp(mode, "bf16") == 0) {
        teacher_quant = insitu::TeacherPrecision::Bf16;
      } else if (std::strcmp(mode, "int8") == 0) {
        teacher_quant = insitu::TeacherPrecision::Int8;
      } else {
        std::fprintf(stderr,
                     "quickstart: unknown precision in %s (expected "
                     "--teacher-quant=fp32|bf16|int8)\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strncmp(argv[i], "--compress", 10) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      const auto parsed = core::parse_slot_codec(eq ? eq + 1 : "lossless");
      if (!parsed) {
        std::fprintf(stderr,
                     "quickstart: unknown codec in %s (expected "
                     "--compress[=none|lossless|fp16|bf16|bitmap|"
                     "bitmap-fp16])\n",
                     argv[i]);
        return 1;
      }
      codec = *parsed;
    } else {
      std::fprintf(stderr, "quickstart: unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  // 1. A small CNN (conv/bn/relu stem, two residual blocks, classifier).
  std::mt19937 rng(7);
  nn::LayerChain net = models::build_mini_resnet(/*blocks_per_stage=*/1,
                                                 /*base_channels=*/8,
                                                 /*num_classes=*/4,
                                                 /*in_channels=*/1, rng);
  std::printf("network: %d chain steps, %lld parameters\n", net.size(),
              static_cast<long long>(net.param_count()));

  // Optional quantized teacher (DESIGN.md section 17): train a small patch
  // classifier on the planted-square distribution, then rebuild its eval
  // forward at the requested precision. The training loop below asks *it*
  // for labels, the way the harvester labels frames in the in-situ
  // pipeline, instead of reading the planted ground truth.
  std::unique_ptr<insitu::PatchClassifier> teacher;
  std::unique_ptr<insitu::QuantizedPatchClassifier> quant_teacher;
  if (teacher_quant) {
    teacher = std::make_unique<insitu::PatchClassifier>(
        /*patch=*/16, /*num_classes=*/4, /*base_channels=*/8, /*seed=*/11);
    insitu::PatchDataset teach_data(16);
    std::mt19937 teach_rng(23);
    std::normal_distribution<float> noise(0.0F, 1.0F);
    for (std::int32_t label = 0; label < 4; ++label) {
      for (int sample = 0; sample < 40; ++sample) {
        std::vector<float> pixels(256);
        for (auto& p : pixels) p = noise(teach_rng);
        const int oy = (label / 2) * 8;
        const int ox = (label % 2) * 8;
        for (int yy = 0; yy < 8; ++yy) {
          for (int xx = 0; xx < 8; ++xx) {
            pixels[static_cast<std::size_t>((oy + yy) * 16 + ox + xx)] +=
                1.5F;
          }
        }
        teach_data.add(std::move(pixels), label);
      }
    }
    insitu::TrainOptions teach_options;
    teach_options.epochs = 6;
    (void)teacher->train(teach_data, teach_options);
    quant_teacher = std::make_unique<insitu::QuantizedPatchClassifier>(
        *teacher, teach_data.batch(0, 48), *teacher_quant);
  }

  // Optional on-device calibration: probe the machine once (the profile is
  // cached and re-used across runs) and time the real chain so the DP
  // plans in measured microseconds instead of unit step counts.
  calib::DeviceModel device_model;
  calib::ChainCosts measured;
  if (calibrate) {
    bool was_cached = false;
    device_model = calib::load_or_calibrate(
        "/tmp/edgetrain_quickstart_profile.etcp", calib::quick_calibration(),
        &was_cached);
    Tensor probe = Tensor::randn(Shape{8, 1, 16, 16}, rng);
    measured = calib::measure_chain(net, probe);
    std::printf("calibrated: %.1f GFLOPS conv @ %d threads (profile %s), "
                "chain sweep %.0f us, backward/forward ratio %.2f\n",
                device_model.conv_gflops_at(device_model.best_threads()),
                device_model.best_threads(),
                was_cached ? "cached" : "measured", measured.sweep_us(),
                measured.backward_ratio());
  }

  // 2. A checkpointing schedule: at most ~1.3x recompute overhead. With
  // --async-io, a two-level plan instead keeps 2 checkpoints in RAM and
  // spills the rest to disk, where the async store hides the file IO
  // behind recompute.
  core::Schedule schedule;
  std::unique_ptr<core::SlotStore> store;
  if (async_io) {
    core::disk::DiskRevolveOptions options;
    options.ram_slots = 2;
    options.overlap_io = true;
    options.spill_bytes_ratio = core::planning_bytes_ratio(codec);
    if (calibrate) {
      // Price the spill weights from the measured SD bandwidth and mean
      // boundary size instead of the analytic defaults.
      options = calib::priced_disk_options(measured, device_model, options);
    }
    const core::disk::DiskRevolveSolver solver(net.size(), options);
    schedule = solver.make_schedule();
    const std::string dir = "/tmp/edgetrain_quickstart_spill";
    std::filesystem::create_directories(dir);
    core::AsyncDiskSlotStoreOptions store_options;
    store_options.codec = codec;
    store = std::make_unique<core::AsyncDiskSlotStore>(
        schedule.num_slots(), /*first_disk_slot=*/options.ram_slots + 1, dir,
        store_options);
    std::printf("schedule: two-level disk revolve, 2 RAM slots + %d disk "
                "slots, write-behind spills + prefetched restores"
                " (spill codec: %s)\n\n",
                solver.peak_disk_slots(), core::to_string(codec).c_str());
  } else if (calibrate) {
    // Heterogeneous DP over the measured per-step costs: the rho budget is
    // evaluated in real microseconds with the observed backward ratio, so
    // the checkpoints land before the expensive (early, full-resolution)
    // steps instead of being spread uniformly.
    const core::hetero::HeteroSolver solver(measured.forward_us,
                                            net.size() - 1);
    const int slots =
        solver.min_free_slots_for_rho(1.3, measured.backward_ratio());
    schedule = solver.make_schedule(slots);
    if (codec != core::SlotCodec::None) {
      store = std::make_unique<core::CompressedSlotStore>(schedule.num_slots(),
                                                          codec);
    }
    std::printf("schedule: measured-cost plan, %d free slots for rho <= 1.3 "
                "(measured rho %.3f; slot codec: %s)\n\n",
                slots, solver.recompute_factor(slots, measured.backward_ratio()),
                core::to_string(codec).c_str());
  } else {
    const int slots = core::revolve::min_free_slots_for_rho(net.size(), 1.3);
    schedule = core::revolve::make_schedule(net.size(), slots);
    if (codec != core::SlotCodec::None) {
      store = std::make_unique<core::CompressedSlotStore>(schedule.num_slots(),
                                                          codec);
    }
    std::printf("schedule: %d free checkpoint slots for rho <= 1.3 "
                "(full storage would hold %d activations; slot codec: %s)\n\n",
                slots, net.size(), core::to_string(codec).c_str());
  }

  // 3. Train on random batches of a synthetic 4-class problem.
  nn::SGD optimizer(net.params(), 0.05F, 0.9F);
  nn::LayerChainRunner runner(net, nn::Phase::Train);
  core::ScheduleExecutor executor;

  double teacher_us = 0.0;
  int teacher_agree = 0;
  int teacher_total = 0;
  for (int step = 0; step < 30; ++step) {
    Tensor x = Tensor::randn(Shape{8, 1, 16, 16}, rng);
    std::vector<std::int32_t> labels;
    std::uniform_int_distribution<std::int32_t> dist(0, 3);
    for (int i = 0; i < 8; ++i) {
      const std::int32_t label = dist(rng);
      labels.push_back(label);
      // Plant a class-dependent bright square so there is signal to learn.
      float* img = x.data() + i * 256;
      const int corner = label;  // 0..3 -> one of the four 8x8 quadrants
      const int oy = (corner / 2) * 8;
      const int ox = (corner % 2) * 8;
      for (int yy = 0; yy < 8; ++yy) {
        for (int xx = 0; xx < 8; ++xx) img[(oy + yy) * 16 + ox + xx] += 1.5F;
      }
    }
    if (quant_teacher != nullptr) {
      // Replace the planted labels with the quantized teacher's verdicts,
      // keeping the planted ones only to score agreement.
      const auto start = std::chrono::steady_clock::now();
      const auto teacher_out = quant_teacher->predict_batch(x);
      teacher_us += std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      for (std::size_t i = 0; i < teacher_out.size(); ++i) {
        if (teacher_out[i].first == labels[i]) ++teacher_agree;
        labels[i] = teacher_out[i].first;
      }
      teacher_total += static_cast<int>(teacher_out.size());
    }

    optimizer.zero_grad();
    runner.begin_pass();
    float loss = 0.0F;
    const core::LossGradFn loss_grad = [&](const Tensor& logits) {
      const ops::SoftmaxXentResult result =
          ops::softmax_xent_forward(logits, labels);
      loss = result.loss;
      return ops::softmax_xent_backward(result.probs, labels);
    };
    const core::ExecutionResult result =
        store != nullptr
            ? executor.run(runner, schedule, x, loss_grad, *store)
            : executor.run(runner, schedule, x, loss_grad);
    optimizer.step();

    if (step % 5 == 0) {
      std::printf("step %2d: loss %.4f, peak step memory %.1f KiB, "
                  "%lld recompute advances\n",
                  step, loss,
                  static_cast<double>(result.peak_tracked_bytes -
                                      result.baseline_bytes) /
                      1024.0,
                  static_cast<long long>(result.stats.advances));
    }
  }
  if (quant_teacher != nullptr) {
    std::printf("\nteacher labels (%s): %.1f%% agreement with planted "
                "labels, %.0f labels/sec\n",
                insitu::to_string(quant_teacher->precision()),
                100.0 * teacher_agree / teacher_total,
                1e6 * teacher_total / teacher_us);
  }
  std::printf("\ndone: the same loop with full_storage_schedule() gives "
              "bit-identical gradients at a higher footprint.\n");
  return 0;
}
