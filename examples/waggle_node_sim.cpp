// waggle_node_sim: a day in the life of an Array-of-Things node.
//
// Combines the edge substrate: a Waggle device description, a foreground
// duty cycle (periodic sensing + inference bursts), the idle-priority
// training scheduler, the SD-card image store, and the energy comparison
// between shipping the harvested dataset to the cloud vs training in situ.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>

#include "core/planner.hpp"
#include "edge/device.hpp"
#include "edge/power.hpp"
#include "edge/scheduler.hpp"
#include "edge/storage.hpp"
#include "insitu/node_sim.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"
#include "nn/layers.hpp"
#include "persist/resumable.hpp"

namespace {

/// Demo net for the power-cycle section: conv stem, two batch-norm blocks,
/// classifier head. Rebuilt identically on every simulated boot (same init
/// seed); restored snapshot weights overwrite the init.
edgetrain::nn::LayerChain build_demo_net() {
  using namespace edgetrain;
  std::mt19937 rng(701);
  nn::LayerChain chain;
  chain.push(std::make_unique<nn::Conv2d>(1, 8, 3, 1, 1, false, rng));
  chain.push(std::make_unique<nn::BasicBlock>(8, 8, 1, rng));
  chain.push(std::make_unique<nn::BasicBlock>(8, 8, 1, rng));
  chain.push(std::make_unique<nn::GlobalAvgPool>());
  chain.push(std::make_unique<nn::Linear>(8, 4, true, rng));
  return chain;
}

/// Quadrant classification batch: a pure function of (rng, cursor), as the
/// resume-determinism contract requires.
edgetrain::persist::LabeledBatch quadrant_batch(std::mt19937& rng,
                                                std::uint64_t /*cursor*/) {
  using namespace edgetrain;
  persist::LabeledBatch batch;
  const std::int64_t n = 4;
  batch.x = Tensor::randn(Shape{n, 1, 12, 12}, rng, 0.2F);
  std::uniform_int_distribution<std::int32_t> dist(0, 3);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t label = dist(rng);
    batch.labels.push_back(label);
    float* img = batch.x.data() + i * 144;
    const int oy = (label / 2) * 6;
    const int ox = (label % 2) * 6;
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) img[(oy + y) * 12 + ox + x] += 1.2F;
    }
  }
  return batch;
}

}  // namespace

int main() {
  using namespace edgetrain;

  const edge::EdgeDevice node = edge::EdgeDevice::waggle_odroid_xu4();
  std::printf("=== %s ===\n%llu MB RAM, %d+%d cores, %.0f GFLOP/s, "
              "%llu GB SD, %.1f Mbps uplink\n\n",
              node.name.c_str(),
              static_cast<unsigned long long>(node.memory_bytes >> 20),
              node.big_cores, node.little_cores, node.peak_gflops,
              static_cast<unsigned long long>(node.storage_bytes >> 30),
              node.uplink_mbps);

  // --- training-step cost for the model we want to specialise ------------
  const models::ResNetSpec spec =
      models::ResNetSpec::make(models::ResNetVariant::ResNet18);
  const models::ResNetMemoryModel memory_model(spec);
  const models::LinearResNet linear =
      models::LinearResNet::from_resnet(memory_model, 224, 4);
  const core::MemoryPlanner planner(linear.to_chain_spec());
  const core::PlanReport plan = planner.report_for_device(
      static_cast<double>(node.memory_bytes) * 0.8);  // leave room for the OS

  const auto costs = spec.chain_step_forward_costs(224, 4);
  double flops_per_step = 0.0;
  for (const double c : costs) flops_per_step += c;
  flops_per_step *= 3.0;  // forward + ~2x backward
  flops_per_step *= plan.recommended.achieved_rho;  // recompute overhead
  const double step_seconds = flops_per_step / (node.peak_gflops * 1e9);

  std::printf("training %s (batch 4): rho=%.2f, %.1f MB peak, "
              "%.2f s per step on this node\n\n",
              linear.name.c_str(), plan.recommended.achieved_rho,
              plan.recommended.peak_bytes / 1048576.0, step_seconds);

  // --- one hour of node time: sensing + inference foreground -------------
  const double horizon = 3600.0;
  edge::IdleScheduler scheduler(step_seconds);
  for (const auto& task :
       edge::periodic_tasks("air-quality-sample", 30.0, 0.5, 5, horizon)) {
    scheduler.add_task(task);
  }
  for (const auto& task :
       edge::periodic_tasks("pedestrian-inference", 5.0, 1.2, 8, horizon)) {
    scheduler.add_task(task);
  }
  const edge::ScheduleReport report = scheduler.run(horizon);
  std::printf("one hour of node time: %.0f s foreground, %.0f s training "
              "(%.0f%% duty), %lld training steps, %lld preemptions\n\n",
              report.foreground_seconds, report.training_seconds,
              100.0 * report.idle_fraction,
              static_cast<long long>(report.training_steps),
              static_cast<long long>(report.preemptions));

  // --- SD-card dataset budget (paper: <10 kB per 224x224 image) ----------
  edge::ImageStore store(1ULL << 30, /*evict_oldest=*/true);
  std::uint64_t added = 0;
  while (store.add(static_cast<std::int32_t>(added % 4), 10 * 1024)
             .has_value() &&
         added < 100000) {
    ++added;
  }
  std::printf("SD dataset budget: %llu images of 10 kB in a 1 GB slice "
              "(%.2f GB used)\n\n",
              static_cast<unsigned long long>(store.size()),
              static_cast<double>(store.used_bytes()) / (1 << 30));

  // --- ship-vs-train energy comparison ------------------------------------
  const edge::EnergyModel energy(node);
  const double dataset_bytes = static_cast<double>(store.used_bytes());
  const double epoch_flops =
      flops_per_step * static_cast<double>(store.size()) / 4.0;  // batch 4
  const edge::EnergyReport comparison =
      energy.compare(dataset_bytes, 3.0 * epoch_flops);
  std::printf("ship %zu images to the cloud: %.0f J over %.0f s of radio\n",
              store.size(), comparison.transmit_joules,
              comparison.transmit_seconds);
  std::printf("train 3 epochs in situ:      %.0f J over %.0f s of compute\n",
              comparison.compute_joules, comparison.compute_seconds);
  std::printf("=> %s\n", comparison.edge_cheaper()
                             ? "training on the edge is the cheaper option"
                             : "shipping upstream is cheaper here");

  // --- the integrated lifecycle: harvest + idle training, hour by hour ---
  std::printf("\n=== integrated run (miniature model, real training) ===\n");
  insitu::NodeSimConfig sim_config;
  sim_config.scene.frame_width = 112;
  sim_config.scene.frame_height = 40;
  sim_config.scene.object_size = 15;
  sim_config.scene.num_classes = 3;
  sim_config.scene.max_skew = 0.8F;
  sim_config.harvest.patch = 18;
  sim_config.hours = 4;
  sim_config.frames_per_hour = 200;
  sim_config.max_real_steps_per_hour = 50;
  const insitu::NodeSimResult sim_result =
      insitu::run_node_simulation(sim_config);
  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s\n", "hour", "images",
              "SD MB", "idle%", "steps", "student");
  for (const insitu::HourReport& hour : sim_result.hours) {
    std::printf("%-6d %-10lld %-10.2f %-10.0f %-10lld %-10.3f\n", hour.hour,
                static_cast<long long>(hour.dataset_images),
                static_cast<double>(hour.storage_used_bytes) / (1 << 20),
                100.0 * hour.idle_fraction,
                static_cast<long long>(hour.steps_run),
                hour.student_accuracy);
  }
  std::printf("teacher stays at %.3f across viewpoints; the student reaches "
              "%.3f using only idle cycles and auto-labelled local data.\n",
              sim_result.teacher_accuracy, sim_result.final_student_accuracy);

  // --- suspend/resume: surviving a power cycle mid-training ---------------
  // Outdoor nodes brown out. Train the demo net inside the scheduler's idle
  // windows, snapshot at each window close, kill the power mid-run, reboot,
  // and continue from the newest valid snapshot -- the resumed trajectory
  // is bit-for-bit the one an uninterrupted run would have taken.
  std::printf("\n=== suspend/resume: a power cycle mid-training ===\n");
  const std::string snap_dir = "/tmp/edgetrain_waggle_snap";
  std::filesystem::remove_all(snap_dir);

  persist::ResumableOptions persist_options;
  persist_options.trainer.strategy = nn::CheckpointStrategy::Revolve;
  persist_options.trainer.free_slots = 2;
  persist_options.trainer.lr = 0.05F;
  persist_options.snapshot_dir = snap_dir;
  persist_options.snapshot_every = 5;
  persist_options.keep_snapshots = 2;

  const std::uint64_t total_demo_steps = 60;
  const double demo_step_seconds = 0.05;
  double early_loss = 0.0;
  std::uint64_t died_at_step = 0;

  // Boot 1: fresh start. Carve the snapshot budget out of the SD card up
  // front, then train in idle windows until the injected power loss.
  {
    nn::LayerChain net = build_demo_net();
    persist::FaultInjector fault;
    persist::ResumableTrainer trainer(net, persist_options, &fault);
    (void)trainer.resume();  // nothing on disk: fresh start

    const std::uint64_t snap_bytes =
        persist::encode_snapshot(trainer.capture()).size();
    const std::uint64_t evicted_before = store.evicted_count();
    store.reserve(snap_bytes *
                  static_cast<std::uint64_t>(persist_options.keep_snapshots));
    std::printf("snapshot budget: %llu KiB reserved on the SD card "
                "(%d generations of %llu KiB; evicted %llu images to fit)\n",
                static_cast<unsigned long long>(store.reserved_bytes() >> 10),
                persist_options.keep_snapshots,
                static_cast<unsigned long long>(snap_bytes >> 10),
                static_cast<unsigned long long>(store.evicted_count() -
                                                evicted_before));

    fault.arm_abort_at_step(23);  // the storm hits mid-window
    try {
      for (const edge::IdleWindow& window : scheduler.idle_windows(horizon)) {
        for (long long s = 0; s < window.steps(demo_step_seconds); ++s) {
          const nn::StepStats stats = trainer.step(quadrant_batch);
          if (trainer.step_count() <= 5) early_loss += stats.loss / 5.0;
          if (trainer.step_count() >= total_demo_steps) break;
        }
        trainer.suspend();  // idle window closing: snapshot now
        if (trainer.step_count() >= total_demo_steps) break;
      }
    } catch (const persist::PowerLoss& death) {
      died_at_step = trainer.step_count();
      std::printf("boot 1: %s -- died at step %llu with %llu snapshots "
                  "committed\n",
                  death.what(),
                  static_cast<unsigned long long>(died_at_step),
                  static_cast<unsigned long long>(
                      trainer.snapshots_written()));
    }
  }

  // Boot 2: power is back. Rebuild everything from scratch and resume.
  {
    nn::LayerChain net = build_demo_net();
    persist::ResumableTrainer trainer(net, persist_options);
    const bool resumed = trainer.resume();
    std::printf("boot 2: %s at step %llu\n",
                resumed ? "resumed from snapshot" : "fresh start",
                static_cast<unsigned long long>(trainer.step_count()));

    double late_loss = 0.0;
    for (const edge::IdleWindow& window : scheduler.idle_windows(horizon)) {
      for (long long s = 0; s < window.steps(demo_step_seconds); ++s) {
        const nn::StepStats stats = trainer.step(quadrant_batch);
        if (trainer.step_count() > total_demo_steps - 5) {
          late_loss += stats.loss / 5.0;
        }
        if (trainer.step_count() >= total_demo_steps) break;
      }
      trainer.suspend();
      if (trainer.step_count() >= total_demo_steps) break;
    }
    std::printf("trained to step %llu across the power cycle: loss %.3f "
                "(first 5 steps) -> %.3f (last 5); %llu KiB of snapshots "
                "on the card\n",
                static_cast<unsigned long long>(trainer.step_count()),
                early_loss, late_loss,
                static_cast<unsigned long long>(
                    trainer.snapshots().total_bytes() >> 10));
    std::printf("=> the node lost power at step %llu, replayed the few "
                "steps since the last snapshot, and finished the run on a "
                "trajectory bit-for-bit identical to an uninterrupted "
                "one.\n", static_cast<unsigned long long>(died_at_step));
  }
  return 0;
}
