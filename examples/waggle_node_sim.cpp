// waggle_node_sim: a day in the life of an Array-of-Things node.
//
// Combines the edge substrate: a Waggle device description, a foreground
// duty cycle (periodic sensing + inference bursts), the idle-priority
// training scheduler, the SD-card image store, and the energy comparison
// between shipping the harvested dataset to the cloud vs training in situ.
#include <cstdio>

#include "core/planner.hpp"
#include "edge/device.hpp"
#include "edge/power.hpp"
#include "edge/scheduler.hpp"
#include "edge/storage.hpp"
#include "insitu/node_sim.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"

int main() {
  using namespace edgetrain;

  const edge::EdgeDevice node = edge::EdgeDevice::waggle_odroid_xu4();
  std::printf("=== %s ===\n%llu MB RAM, %d+%d cores, %.0f GFLOP/s, "
              "%llu GB SD, %.1f Mbps uplink\n\n",
              node.name.c_str(),
              static_cast<unsigned long long>(node.memory_bytes >> 20),
              node.big_cores, node.little_cores, node.peak_gflops,
              static_cast<unsigned long long>(node.storage_bytes >> 30),
              node.uplink_mbps);

  // --- training-step cost for the model we want to specialise ------------
  const models::ResNetSpec spec =
      models::ResNetSpec::make(models::ResNetVariant::ResNet18);
  const models::ResNetMemoryModel memory_model(spec);
  const models::LinearResNet linear =
      models::LinearResNet::from_resnet(memory_model, 224, 4);
  const core::MemoryPlanner planner(linear.to_chain_spec());
  const core::PlanReport plan = planner.report_for_device(
      static_cast<double>(node.memory_bytes) * 0.8);  // leave room for the OS

  const auto costs = spec.chain_step_forward_costs(224, 4);
  double flops_per_step = 0.0;
  for (const double c : costs) flops_per_step += c;
  flops_per_step *= 3.0;  // forward + ~2x backward
  flops_per_step *= plan.recommended.achieved_rho;  // recompute overhead
  const double step_seconds = flops_per_step / (node.peak_gflops * 1e9);

  std::printf("training %s (batch 4): rho=%.2f, %.1f MB peak, "
              "%.2f s per step on this node\n\n",
              linear.name.c_str(), plan.recommended.achieved_rho,
              plan.recommended.peak_bytes / 1048576.0, step_seconds);

  // --- one hour of node time: sensing + inference foreground -------------
  const double horizon = 3600.0;
  edge::IdleScheduler scheduler(step_seconds);
  for (const auto& task :
       edge::periodic_tasks("air-quality-sample", 30.0, 0.5, 5, horizon)) {
    scheduler.add_task(task);
  }
  for (const auto& task :
       edge::periodic_tasks("pedestrian-inference", 5.0, 1.2, 8, horizon)) {
    scheduler.add_task(task);
  }
  const edge::ScheduleReport report = scheduler.run(horizon);
  std::printf("one hour of node time: %.0f s foreground, %.0f s training "
              "(%.0f%% duty), %lld training steps, %lld preemptions\n\n",
              report.foreground_seconds, report.training_seconds,
              100.0 * report.idle_fraction,
              static_cast<long long>(report.training_steps),
              static_cast<long long>(report.preemptions));

  // --- SD-card dataset budget (paper: <10 kB per 224x224 image) ----------
  edge::ImageStore store(1ULL << 30, /*evict_oldest=*/true);
  std::uint64_t added = 0;
  while (store.add(static_cast<std::int32_t>(added % 4), 10 * 1024)
             .has_value() &&
         added < 100000) {
    ++added;
  }
  std::printf("SD dataset budget: %llu images of 10 kB in a 1 GB slice "
              "(%.2f GB used)\n\n",
              static_cast<unsigned long long>(store.size()),
              static_cast<double>(store.used_bytes()) / (1 << 30));

  // --- ship-vs-train energy comparison ------------------------------------
  const edge::EnergyModel energy(node);
  const double dataset_bytes = static_cast<double>(store.used_bytes());
  const double epoch_flops =
      flops_per_step * static_cast<double>(store.size()) / 4.0;  // batch 4
  const edge::EnergyReport comparison =
      energy.compare(dataset_bytes, 3.0 * epoch_flops);
  std::printf("ship %zu images to the cloud: %.0f J over %.0f s of radio\n",
              store.size(), comparison.transmit_joules,
              comparison.transmit_seconds);
  std::printf("train 3 epochs in situ:      %.0f J over %.0f s of compute\n",
              comparison.compute_joules, comparison.compute_seconds);
  std::printf("=> %s\n", comparison.edge_cheaper()
                             ? "training on the edge is the cheaper option"
                             : "shipping upstream is cheaper here");

  // --- the integrated lifecycle: harvest + idle training, hour by hour ---
  std::printf("\n=== integrated run (miniature model, real training) ===\n");
  insitu::NodeSimConfig sim_config;
  sim_config.scene.frame_width = 112;
  sim_config.scene.frame_height = 40;
  sim_config.scene.object_size = 15;
  sim_config.scene.num_classes = 3;
  sim_config.scene.max_skew = 0.8F;
  sim_config.harvest.patch = 18;
  sim_config.hours = 4;
  sim_config.frames_per_hour = 200;
  sim_config.max_real_steps_per_hour = 50;
  const insitu::NodeSimResult sim_result =
      insitu::run_node_simulation(sim_config);
  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s\n", "hour", "images",
              "SD MB", "idle%", "steps", "student");
  for (const insitu::HourReport& hour : sim_result.hours) {
    std::printf("%-6d %-10lld %-10.2f %-10.0f %-10lld %-10.3f\n", hour.hour,
                static_cast<long long>(hour.dataset_images),
                static_cast<double>(hour.storage_used_bytes) / (1 << 20),
                100.0 * hour.idle_fraction,
                static_cast<long long>(hour.steps_run),
                hour.student_accuracy);
  }
  std::printf("teacher stays at %.3f across viewpoints; the student reaches "
              "%.3f using only idle cycles and auto-labelled local data.\n",
              sim_result.teacher_accuracy, sim_result.final_student_accuracy);
  return 0;
}
