// viewpoint_adaptation: the full Section III scenario, end to end.
//
// A simulated street camera suffers the viewpoint problem: objects near the
// left edge of the frame appear sheared/darkened relative to the canonical
// pose the cloud-trained teacher knows. The node tracks objects across the
// frame, lets the teacher label each track at its most confident sighting,
// back-propagates the label to every sighting, and trains a student on the
// harvested dataset -- in situ, through a Revolve checkpointing schedule.
#include <cstdio>

#include "insitu/student.hpp"

int main(int argc, char** argv) {
  using namespace edgetrain::insitu;

  ViewpointExperimentConfig config;
  config.scene.frame_width = 128;
  config.scene.frame_height = 44;
  config.scene.object_size = 16;
  config.scene.num_classes = 4;
  config.scene.max_skew = 0.85F;
  config.scene.seed = 97;
  config.harvest.patch = 20;
  config.stream_frames = argc > 1 ? std::atoll(argv[1]) : 800;
  config.teacher_train.epochs = 8;
  config.student_train.epochs = 8;
  config.student_train.checkpoint_free_slots = 2;

  std::printf("Simulating %lld camera frames...\n",
              static_cast<long long>(config.stream_frames));
  const ViewpointExperimentResult result = run_viewpoint_experiment(config);

  std::printf("\nharvest: %lld tracks finished, %lld confidently labelled, "
              "%zu images in the on-node dataset (purity %.1f%%)\n",
              static_cast<long long>(result.harvest.tracks_finished),
              static_cast<long long>(result.harvest.tracks_labelled),
              result.dataset_size, 100.0 * result.harvest.label_purity);

  std::printf("\naccuracy across the frame (left = most skewed):\n");
  std::printf("%-10s %-8s %-10s %-10s %s\n", "x", "skew", "teacher",
              "student", "");
  for (const BinAccuracy& bin : result.bins) {
    std::printf("%-10.1f %-8.2f %-10.3f %-10.3f %s\n", bin.x_center, bin.skew,
                bin.teacher_accuracy, bin.student_accuracy,
                bin.student_accuracy > bin.teacher_accuracy ? "<- student"
                                                            : "");
  }
  std::printf("\noverall: teacher %.3f vs student %.3f\n",
              result.teacher_overall, result.student_overall);
  std::printf("The student, trained only on auto-labelled local data, has "
              "specialised to this camera's viewpoint.\n");
  return 0;
}
