// edge_memory_planner: the Section VI workflow as a CLI.
//
//   edge_memory_planner [model] [image] [batch] [memory_mb]
//
// e.g. `edge_memory_planner resnet152 500 8 2048` answers: does this
// training configuration fit the device? If not, what is the cheapest
// recompute factor that makes it fit, and what does the memory/rho curve
// look like?
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/planner.hpp"
#include "core/strategy.hpp"
#include "edge/device.hpp"
#include "models/linear_resnet.hpp"
#include "models/memory_model.hpp"

namespace {

using namespace edgetrain;

models::ResNetVariant parse_model(const std::string& name) {
  for (const models::ResNetVariant v : models::all_resnet_variants()) {
    std::string candidate = models::name_of(v);
    for (char& c : candidate) c = static_cast<char>(std::tolower(c));
    if (candidate == name) return v;
  }
  std::fprintf(stderr, "unknown model '%s' (use resnet18/34/50/101/152)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "resnet152";
  const int image = argc > 2 ? std::atoi(argv[2]) : 224;
  const std::int64_t batch = argc > 3 ? std::atoll(argv[3]) : 8;
  const double memory_mb = argc > 4 ? std::atof(argv[4]) : 2048.0;

  const models::ResNetVariant variant = parse_model(model_name);
  const models::ResNetMemoryModel memory_model(
      models::ResNetSpec::make(variant));
  const models::LinearResNet linear =
      models::LinearResNet::from_resnet(memory_model, image, batch);
  const core::MemoryPlanner planner(linear.to_chain_spec());

  const double capacity = memory_mb * 1024.0 * 1024.0;
  const edge::EdgeDevice waggle = edge::EdgeDevice::waggle_odroid_xu4();
  std::printf("device: %.0f MB budget (Waggle node: %s, %llu MB RAM)\n",
              memory_mb, waggle.name.c_str(),
              static_cast<unsigned long long>(waggle.memory_bytes >> 20));
  std::printf("model:  %s at image %d, batch %lld -> %s with l=%d, "
              "M_A*k=%.2f MB/step, fixed=%.2f MB\n\n",
              memory_model.spec().name().c_str(), image,
              static_cast<long long>(batch), linear.name.c_str(),
              linear.depth, linear.act_bytes_per_step / 1048576.0,
              linear.fixed_bytes / 1048576.0);

  const core::PlanReport report = planner.report_for_device(capacity);
  std::printf("no checkpointing (rho=1):  %.1f MB  -> %s\n",
              report.no_checkpoint_bytes / 1048576.0,
              report.fits_without_checkpointing ? "FITS" : "does NOT fit");
  std::printf("most frugal schedule:      %.1f MB  -> %s\n",
              report.min_possible_bytes / 1048576.0,
              report.fits_with_checkpointing ? "fits" : "does NOT fit");

  if (report.fits_with_checkpointing && !report.fits_without_checkpointing) {
    std::printf("\nrecommended: %d checkpoint slots -> %.1f MB at "
                "rho=%.3f (%.0f%% extra compute)\n",
                report.recommended.total_slots,
                report.recommended.peak_bytes / 1048576.0,
                report.recommended.achieved_rho,
                100.0 * (report.recommended.achieved_rho - 1.0));
  } else if (!report.fits_with_checkpointing) {
    std::printf("\ninfeasible: even one activation per step exceeds the "
                "budget; reduce batch or image size.\n");
    const int n_max = core::MemoryPlanner::max_depth_without_checkpointing(
        capacity, linear.fixed_bytes, linear.act_bytes_per_step);
    std::printf("(n_max at this batch: %d layers without checkpointing)\n",
                n_max);
    return 0;
  }

  std::printf("\nmemory vs recompute factor:\n%-8s %-12s %-8s %-6s\n", "rho",
              "peak MB", "slots", "fits");
  for (const core::PlanPoint& point : planner.sweep_rho(1.0, 3.0, 21)) {
    std::printf("%-8.2f %-12.1f %-8d %-6s\n", point.rho_budget,
                point.peak_bytes / 1048576.0, point.total_slots,
                point.fits(capacity) ? "yes" : "NO");
  }

  // One-call recommendation combining planner, backends and batch choice.
  core::StrategyRequest strategy_request;
  strategy_request.chain = linear.to_chain_spec();
  strategy_request.device_memory_bytes = capacity;
  strategy_request.rho_budget = 2.0;
  strategy_request.has_local_storage = waggle.storage_bytes > 0;
  const core::StrategyRecommendation strategy =
      core::recommend_strategy(strategy_request);
  std::printf("\nrecommendation: %s\n  %s\n  suggested batch: %lld "
              "(rho %.2f at that batch)\n",
              core::to_string(strategy.feasibility).c_str(),
              strategy.rationale.c_str(),
              static_cast<long long>(strategy.recommended_batch),
              strategy.batch_rho);
  return 0;
}
