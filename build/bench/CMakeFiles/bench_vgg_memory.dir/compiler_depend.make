# Empty compiler generated dependencies file for bench_vgg_memory.
# This may be replaced when dependencies are built.
