file(REMOVE_RECURSE
  "CMakeFiles/bench_vgg_memory.dir/bench_vgg_memory.cpp.o"
  "CMakeFiles/bench_vgg_memory.dir/bench_vgg_memory.cpp.o.d"
  "bench_vgg_memory"
  "bench_vgg_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vgg_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
