file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_vs_binomial.dir/bench_seq_vs_binomial.cpp.o"
  "CMakeFiles/bench_seq_vs_binomial.dir/bench_seq_vs_binomial.cpp.o.d"
  "bench_seq_vs_binomial"
  "bench_seq_vs_binomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_vs_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
