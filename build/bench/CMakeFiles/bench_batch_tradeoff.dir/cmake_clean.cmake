file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_tradeoff.dir/bench_batch_tradeoff.cpp.o"
  "CMakeFiles/bench_batch_tradeoff.dir/bench_batch_tradeoff.cpp.o.d"
  "bench_batch_tradeoff"
  "bench_batch_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
