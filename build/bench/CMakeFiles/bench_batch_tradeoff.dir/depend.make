# Empty dependencies file for bench_batch_tradeoff.
# This may be replaced when dependencies are built.
