# Empty dependencies file for bench_microbatch.
# This may be replaced when dependencies are built.
