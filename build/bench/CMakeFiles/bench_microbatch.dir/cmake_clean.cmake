file(REMOVE_RECURSE
  "CMakeFiles/bench_microbatch.dir/bench_microbatch.cpp.o"
  "CMakeFiles/bench_microbatch.dir/bench_microbatch.cpp.o.d"
  "bench_microbatch"
  "bench_microbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
