file(REMOVE_RECURSE
  "CMakeFiles/bench_disk_revolve.dir/bench_disk_revolve.cpp.o"
  "CMakeFiles/bench_disk_revolve.dir/bench_disk_revolve.cpp.o.d"
  "bench_disk_revolve"
  "bench_disk_revolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_revolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
