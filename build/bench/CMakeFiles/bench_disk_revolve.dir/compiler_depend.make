# Empty compiler generated dependencies file for bench_disk_revolve.
# This may be replaced when dependencies are built.
