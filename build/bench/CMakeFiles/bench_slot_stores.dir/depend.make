# Empty dependencies file for bench_slot_stores.
# This may be replaced when dependencies are built.
