file(REMOVE_RECURSE
  "CMakeFiles/bench_slot_stores.dir/bench_slot_stores.cpp.o"
  "CMakeFiles/bench_slot_stores.dir/bench_slot_stores.cpp.o.d"
  "bench_slot_stores"
  "bench_slot_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slot_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
