file(REMOVE_RECURSE
  "libedgetrain_tensor.a"
)
