file(REMOVE_RECURSE
  "CMakeFiles/edgetrain_tensor.dir/tensor/alloc.cpp.o"
  "CMakeFiles/edgetrain_tensor.dir/tensor/alloc.cpp.o.d"
  "CMakeFiles/edgetrain_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/edgetrain_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/edgetrain_tensor.dir/tensor/parallel.cpp.o"
  "CMakeFiles/edgetrain_tensor.dir/tensor/parallel.cpp.o.d"
  "CMakeFiles/edgetrain_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/edgetrain_tensor.dir/tensor/tensor.cpp.o.d"
  "libedgetrain_tensor.a"
  "libedgetrain_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgetrain_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
