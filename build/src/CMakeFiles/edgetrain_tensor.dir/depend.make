# Empty dependencies file for edgetrain_tensor.
# This may be replaced when dependencies are built.
