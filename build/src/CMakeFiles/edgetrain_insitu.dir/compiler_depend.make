# Empty compiler generated dependencies file for edgetrain_insitu.
# This may be replaced when dependencies are built.
