
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/insitu/codec.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/codec.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/codec.cpp.o.d"
  "/root/repo/src/insitu/harvester.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/harvester.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/harvester.cpp.o.d"
  "/root/repo/src/insitu/node_sim.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/node_sim.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/node_sim.cpp.o.d"
  "/root/repo/src/insitu/scene.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/scene.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/scene.cpp.o.d"
  "/root/repo/src/insitu/student.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/student.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/student.cpp.o.d"
  "/root/repo/src/insitu/teacher.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/teacher.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/teacher.cpp.o.d"
  "/root/repo/src/insitu/tracker.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/tracker.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/tracker.cpp.o.d"
  "/root/repo/src/insitu/vision.cpp" "src/CMakeFiles/edgetrain_insitu.dir/insitu/vision.cpp.o" "gcc" "src/CMakeFiles/edgetrain_insitu.dir/insitu/vision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgetrain_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
