file(REMOVE_RECURSE
  "libedgetrain_insitu.a"
)
