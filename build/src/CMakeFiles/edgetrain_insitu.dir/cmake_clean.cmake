file(REMOVE_RECURSE
  "CMakeFiles/edgetrain_insitu.dir/insitu/codec.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/codec.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/harvester.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/harvester.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/node_sim.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/node_sim.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/scene.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/scene.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/student.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/student.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/teacher.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/teacher.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/tracker.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/tracker.cpp.o.d"
  "CMakeFiles/edgetrain_insitu.dir/insitu/vision.cpp.o"
  "CMakeFiles/edgetrain_insitu.dir/insitu/vision.cpp.o.d"
  "libedgetrain_insitu.a"
  "libedgetrain_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgetrain_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
