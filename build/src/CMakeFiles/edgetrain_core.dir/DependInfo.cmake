
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_tradeoff.cpp" "src/CMakeFiles/edgetrain_core.dir/core/batch_tradeoff.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/batch_tradeoff.cpp.o.d"
  "/root/repo/src/core/disk_revolve.cpp" "src/CMakeFiles/edgetrain_core.dir/core/disk_revolve.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/disk_revolve.cpp.o.d"
  "/root/repo/src/core/dynprog.cpp" "src/CMakeFiles/edgetrain_core.dir/core/dynprog.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/dynprog.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/CMakeFiles/edgetrain_core.dir/core/executor.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/executor.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/CMakeFiles/edgetrain_core.dir/core/online.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/online.cpp.o.d"
  "/root/repo/src/core/periodic.cpp" "src/CMakeFiles/edgetrain_core.dir/core/periodic.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/periodic.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/edgetrain_core.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/revolve.cpp" "src/CMakeFiles/edgetrain_core.dir/core/revolve.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/revolve.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/edgetrain_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/sequential.cpp" "src/CMakeFiles/edgetrain_core.dir/core/sequential.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/sequential.cpp.o.d"
  "/root/repo/src/core/slot_store.cpp" "src/CMakeFiles/edgetrain_core.dir/core/slot_store.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/slot_store.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/CMakeFiles/edgetrain_core.dir/core/strategy.cpp.o" "gcc" "src/CMakeFiles/edgetrain_core.dir/core/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgetrain_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
