# Empty dependencies file for edgetrain_core.
# This may be replaced when dependencies are built.
