file(REMOVE_RECURSE
  "libedgetrain_core.a"
)
