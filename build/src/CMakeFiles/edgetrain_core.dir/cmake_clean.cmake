file(REMOVE_RECURSE
  "CMakeFiles/edgetrain_core.dir/core/batch_tradeoff.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/batch_tradeoff.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/disk_revolve.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/disk_revolve.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/dynprog.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/dynprog.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/executor.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/executor.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/online.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/online.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/periodic.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/periodic.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/planner.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/planner.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/revolve.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/revolve.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/schedule.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/sequential.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/sequential.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/slot_store.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/slot_store.cpp.o.d"
  "CMakeFiles/edgetrain_core.dir/core/strategy.cpp.o"
  "CMakeFiles/edgetrain_core.dir/core/strategy.cpp.o.d"
  "libedgetrain_core.a"
  "libedgetrain_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgetrain_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
