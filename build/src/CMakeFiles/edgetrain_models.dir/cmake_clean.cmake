file(REMOVE_RECURSE
  "CMakeFiles/edgetrain_models.dir/models/linear_resnet.cpp.o"
  "CMakeFiles/edgetrain_models.dir/models/linear_resnet.cpp.o.d"
  "CMakeFiles/edgetrain_models.dir/models/memory_model.cpp.o"
  "CMakeFiles/edgetrain_models.dir/models/memory_model.cpp.o.d"
  "CMakeFiles/edgetrain_models.dir/models/resnet.cpp.o"
  "CMakeFiles/edgetrain_models.dir/models/resnet.cpp.o.d"
  "CMakeFiles/edgetrain_models.dir/models/small_nets.cpp.o"
  "CMakeFiles/edgetrain_models.dir/models/small_nets.cpp.o.d"
  "CMakeFiles/edgetrain_models.dir/models/vgg.cpp.o"
  "CMakeFiles/edgetrain_models.dir/models/vgg.cpp.o.d"
  "libedgetrain_models.a"
  "libedgetrain_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgetrain_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
