file(REMOVE_RECURSE
  "libedgetrain_models.a"
)
