# Empty compiler generated dependencies file for edgetrain_models.
# This may be replaced when dependencies are built.
