
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/linear_resnet.cpp" "src/CMakeFiles/edgetrain_models.dir/models/linear_resnet.cpp.o" "gcc" "src/CMakeFiles/edgetrain_models.dir/models/linear_resnet.cpp.o.d"
  "/root/repo/src/models/memory_model.cpp" "src/CMakeFiles/edgetrain_models.dir/models/memory_model.cpp.o" "gcc" "src/CMakeFiles/edgetrain_models.dir/models/memory_model.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/edgetrain_models.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/edgetrain_models.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/small_nets.cpp" "src/CMakeFiles/edgetrain_models.dir/models/small_nets.cpp.o" "gcc" "src/CMakeFiles/edgetrain_models.dir/models/small_nets.cpp.o.d"
  "/root/repo/src/models/vgg.cpp" "src/CMakeFiles/edgetrain_models.dir/models/vgg.cpp.o" "gcc" "src/CMakeFiles/edgetrain_models.dir/models/vgg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgetrain_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
