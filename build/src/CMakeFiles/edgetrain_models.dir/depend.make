# Empty dependencies file for edgetrain_models.
# This may be replaced when dependencies are built.
