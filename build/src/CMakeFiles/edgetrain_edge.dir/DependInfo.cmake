
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/device.cpp" "src/CMakeFiles/edgetrain_edge.dir/edge/device.cpp.o" "gcc" "src/CMakeFiles/edgetrain_edge.dir/edge/device.cpp.o.d"
  "/root/repo/src/edge/power.cpp" "src/CMakeFiles/edgetrain_edge.dir/edge/power.cpp.o" "gcc" "src/CMakeFiles/edgetrain_edge.dir/edge/power.cpp.o.d"
  "/root/repo/src/edge/scheduler.cpp" "src/CMakeFiles/edgetrain_edge.dir/edge/scheduler.cpp.o" "gcc" "src/CMakeFiles/edgetrain_edge.dir/edge/scheduler.cpp.o.d"
  "/root/repo/src/edge/storage.cpp" "src/CMakeFiles/edgetrain_edge.dir/edge/storage.cpp.o" "gcc" "src/CMakeFiles/edgetrain_edge.dir/edge/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgetrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
