file(REMOVE_RECURSE
  "libedgetrain_edge.a"
)
