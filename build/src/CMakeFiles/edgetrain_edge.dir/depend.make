# Empty dependencies file for edgetrain_edge.
# This may be replaced when dependencies are built.
