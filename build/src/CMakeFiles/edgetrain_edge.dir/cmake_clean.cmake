file(REMOVE_RECURSE
  "CMakeFiles/edgetrain_edge.dir/edge/device.cpp.o"
  "CMakeFiles/edgetrain_edge.dir/edge/device.cpp.o.d"
  "CMakeFiles/edgetrain_edge.dir/edge/power.cpp.o"
  "CMakeFiles/edgetrain_edge.dir/edge/power.cpp.o.d"
  "CMakeFiles/edgetrain_edge.dir/edge/scheduler.cpp.o"
  "CMakeFiles/edgetrain_edge.dir/edge/scheduler.cpp.o.d"
  "CMakeFiles/edgetrain_edge.dir/edge/storage.cpp.o"
  "CMakeFiles/edgetrain_edge.dir/edge/storage.cpp.o.d"
  "libedgetrain_edge.a"
  "libedgetrain_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgetrain_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
