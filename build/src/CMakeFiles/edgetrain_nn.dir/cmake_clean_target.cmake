file(REMOVE_RECURSE
  "libedgetrain_nn.a"
)
