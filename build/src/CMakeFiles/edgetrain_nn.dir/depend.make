# Empty dependencies file for edgetrain_nn.
# This may be replaced when dependencies are built.
