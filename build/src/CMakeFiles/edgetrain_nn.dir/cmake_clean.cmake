file(REMOVE_RECURSE
  "CMakeFiles/edgetrain_nn.dir/nn/chain.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/chain.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/chain_runner.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/chain_runner.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/gradcheck.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/gradcheck.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/layers.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/layers.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/microbatch.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/microbatch.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/optim.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/optim.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/edgetrain_nn.dir/nn/trainer.cpp.o"
  "CMakeFiles/edgetrain_nn.dir/nn/trainer.cpp.o.d"
  "libedgetrain_nn.a"
  "libedgetrain_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgetrain_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
