
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/chain.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/chain.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/chain.cpp.o.d"
  "/root/repo/src/nn/chain_runner.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/chain_runner.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/chain_runner.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/gradcheck.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/gradcheck.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/microbatch.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/microbatch.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/microbatch.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/optim.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/edgetrain_nn.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/edgetrain_nn.dir/nn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edgetrain_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edgetrain_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
