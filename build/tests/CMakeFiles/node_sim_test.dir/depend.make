# Empty dependencies file for node_sim_test.
# This may be replaced when dependencies are built.
