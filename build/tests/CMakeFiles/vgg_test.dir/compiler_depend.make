# Empty compiler generated dependencies file for vgg_test.
# This may be replaced when dependencies are built.
