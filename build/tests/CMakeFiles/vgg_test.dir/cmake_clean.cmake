file(REMOVE_RECURSE
  "CMakeFiles/vgg_test.dir/models/vgg_test.cpp.o"
  "CMakeFiles/vgg_test.dir/models/vgg_test.cpp.o.d"
  "vgg_test"
  "vgg_test.pdb"
  "vgg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
