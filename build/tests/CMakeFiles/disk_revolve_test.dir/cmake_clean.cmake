file(REMOVE_RECURSE
  "CMakeFiles/disk_revolve_test.dir/core/disk_revolve_test.cpp.o"
  "CMakeFiles/disk_revolve_test.dir/core/disk_revolve_test.cpp.o.d"
  "disk_revolve_test"
  "disk_revolve_test.pdb"
  "disk_revolve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_revolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
