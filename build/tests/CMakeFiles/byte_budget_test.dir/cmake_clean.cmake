file(REMOVE_RECURSE
  "CMakeFiles/byte_budget_test.dir/core/byte_budget_test.cpp.o"
  "CMakeFiles/byte_budget_test.dir/core/byte_budget_test.cpp.o.d"
  "byte_budget_test"
  "byte_budget_test.pdb"
  "byte_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
