# Empty dependencies file for byte_budget_test.
# This may be replaced when dependencies are built.
