# Empty dependencies file for dynprog_test.
# This may be replaced when dependencies are built.
