file(REMOVE_RECURSE
  "CMakeFiles/dynprog_test.dir/core/dynprog_test.cpp.o"
  "CMakeFiles/dynprog_test.dir/core/dynprog_test.cpp.o.d"
  "dynprog_test"
  "dynprog_test.pdb"
  "dynprog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynprog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
