file(REMOVE_RECURSE
  "CMakeFiles/revolve_test.dir/core/revolve_test.cpp.o"
  "CMakeFiles/revolve_test.dir/core/revolve_test.cpp.o.d"
  "revolve_test"
  "revolve_test.pdb"
  "revolve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
