# Empty compiler generated dependencies file for revolve_test.
# This may be replaced when dependencies are built.
