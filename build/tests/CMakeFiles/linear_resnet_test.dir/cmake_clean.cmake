file(REMOVE_RECURSE
  "CMakeFiles/linear_resnet_test.dir/models/linear_resnet_test.cpp.o"
  "CMakeFiles/linear_resnet_test.dir/models/linear_resnet_test.cpp.o.d"
  "linear_resnet_test"
  "linear_resnet_test.pdb"
  "linear_resnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_resnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
