# Empty compiler generated dependencies file for linear_resnet_test.
# This may be replaced when dependencies are built.
