file(REMOVE_RECURSE
  "CMakeFiles/slot_store_test.dir/core/slot_store_test.cpp.o"
  "CMakeFiles/slot_store_test.dir/core/slot_store_test.cpp.o.d"
  "slot_store_test"
  "slot_store_test.pdb"
  "slot_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
