# Empty dependencies file for slot_store_test.
# This may be replaced when dependencies are built.
