# Empty compiler generated dependencies file for batch_tradeoff_test.
# This may be replaced when dependencies are built.
