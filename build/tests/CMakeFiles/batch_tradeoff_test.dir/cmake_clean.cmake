file(REMOVE_RECURSE
  "CMakeFiles/batch_tradeoff_test.dir/core/batch_tradeoff_test.cpp.o"
  "CMakeFiles/batch_tradeoff_test.dir/core/batch_tradeoff_test.cpp.o.d"
  "batch_tradeoff_test"
  "batch_tradeoff_test.pdb"
  "batch_tradeoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_tradeoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
