file(REMOVE_RECURSE
  "CMakeFiles/microbatch_test.dir/nn/microbatch_test.cpp.o"
  "CMakeFiles/microbatch_test.dir/nn/microbatch_test.cpp.o.d"
  "microbatch_test"
  "microbatch_test.pdb"
  "microbatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
