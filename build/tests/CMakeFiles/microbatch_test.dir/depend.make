# Empty dependencies file for microbatch_test.
# This may be replaced when dependencies are built.
