file(REMOVE_RECURSE
  "CMakeFiles/resnet_spec_test.dir/models/resnet_spec_test.cpp.o"
  "CMakeFiles/resnet_spec_test.dir/models/resnet_spec_test.cpp.o.d"
  "resnet_spec_test"
  "resnet_spec_test.pdb"
  "resnet_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
