# Empty compiler generated dependencies file for resnet_spec_test.
# This may be replaced when dependencies are built.
