file(REMOVE_RECURSE
  "CMakeFiles/viewpoint_adaptation.dir/viewpoint_adaptation.cpp.o"
  "CMakeFiles/viewpoint_adaptation.dir/viewpoint_adaptation.cpp.o.d"
  "viewpoint_adaptation"
  "viewpoint_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewpoint_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
