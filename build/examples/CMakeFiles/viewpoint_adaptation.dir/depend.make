# Empty dependencies file for viewpoint_adaptation.
# This may be replaced when dependencies are built.
