# Empty dependencies file for aot_fleet_sim.
# This may be replaced when dependencies are built.
