# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for aot_fleet_sim.
