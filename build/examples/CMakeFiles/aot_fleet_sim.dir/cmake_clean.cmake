file(REMOVE_RECURSE
  "CMakeFiles/aot_fleet_sim.dir/aot_fleet_sim.cpp.o"
  "CMakeFiles/aot_fleet_sim.dir/aot_fleet_sim.cpp.o.d"
  "aot_fleet_sim"
  "aot_fleet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aot_fleet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
