file(REMOVE_RECURSE
  "CMakeFiles/streaming_training.dir/streaming_training.cpp.o"
  "CMakeFiles/streaming_training.dir/streaming_training.cpp.o.d"
  "streaming_training"
  "streaming_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
