# Empty compiler generated dependencies file for streaming_training.
# This may be replaced when dependencies are built.
