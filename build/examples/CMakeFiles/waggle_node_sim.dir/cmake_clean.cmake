file(REMOVE_RECURSE
  "CMakeFiles/waggle_node_sim.dir/waggle_node_sim.cpp.o"
  "CMakeFiles/waggle_node_sim.dir/waggle_node_sim.cpp.o.d"
  "waggle_node_sim"
  "waggle_node_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waggle_node_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
