# Empty compiler generated dependencies file for waggle_node_sim.
# This may be replaced when dependencies are built.
