file(REMOVE_RECURSE
  "CMakeFiles/edge_memory_planner.dir/edge_memory_planner.cpp.o"
  "CMakeFiles/edge_memory_planner.dir/edge_memory_planner.cpp.o.d"
  "edge_memory_planner"
  "edge_memory_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_memory_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
