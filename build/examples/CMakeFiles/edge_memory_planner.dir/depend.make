# Empty dependencies file for edge_memory_planner.
# This may be replaced when dependencies are built.
